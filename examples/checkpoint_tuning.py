#!/usr/bin/env python
"""Checkpoint-interval tuning: redo-work vs checkpoint cost.

The paper argues (Sect. VI) that the neighbor-level scheme's near-zero
cost lets one crank up the checkpoint frequency to shrink the dominant
redo-work overhead.  This example sweeps the interval with one injected
failure and compares the measured optimum with the Young/Daly estimate
sqrt(2 * C * MTTF) for the (tiny) per-checkpoint cost C.

Run:  python examples/checkpoint_tuning.py
"""

import math

from repro.experiments.ablations import run_checkpoint_interval_sweep
from repro.experiments.report import format_table
from repro.workloads import scaled_spec


def main():
    spec = scaled_spec(workers=16, iterations=400, name="cp-tuning")
    intervals = (10, 25, 50, 100, 200, 400)
    print(f"One failure injected; {spec.n_iterations} iterations at "
          f"{spec.iteration_time:.3f} s; checkpoint "
          f"{spec.checkpoint_bytes_per_worker / 1e6:.1f} MB/rank ...\n")
    outcomes = run_checkpoint_interval_sweep(spec, intervals)
    print(format_table(
        ["interval [iters]", "total runtime [s]", "redo-work [s]",
         "checkpoints taken"],
        [[o.interval, o.runtime, o.redo_work, o.checkpoints_taken]
         for o in outcomes],
    ))

    best = min(outcomes, key=lambda o: o.runtime)
    cp_cost = spec.checkpoint_bytes_per_worker / 5.0e9  # local write
    mttf = spec.baseline_runtime  # one failure per run
    daly = math.sqrt(2 * cp_cost * mttf) / spec.iteration_time
    print(f"\nmeasured best interval: {best.interval} iterations")
    print(f"Young/Daly estimate:    sqrt(2*C*MTTF) ~ {daly:.0f} iterations "
          f"(C = {cp_cost * 1e3:.2f} ms)")
    print("\nBecause neighbor-level checkpoints are nearly free, very "
          "frequent\ncheckpointing wins — exactly the paper's argument for "
          "the scheme.")
    assert best.interval <= intervals[2]  # optimum sits at the frequent end


if __name__ == "__main__":
    main()
