#!/usr/bin/env python
"""Graphene spectrum study: the paper's physics workload, failure-free.

Computes the low-lying eigenvalues of graphene tight-binding Hamiltonians
of growing size with the distributed Lanczos solver, validates them against
SciPy's sparse eigensolver, and shows the effect of Anderson disorder on
the spectrum near E = 0 (clean graphene is gapless; disorder fills in
states around the Dirac point).

Run:  python examples/graphene_spectrum.py
"""

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.gaspi import run_gaspi
from repro.solvers import DistributedLanczos
from repro.spmvm import SpMVMEngine, Team, distribute_matrix
from repro.spmvm.matgen import GrapheneSheet


def distributed_low_eigenvalues(generator, n_ranks, n_steps, k=6):
    """Low eigenvalues via the distributed solver on a simulated cluster."""

    def main(ctx):
        team = Team.trivial(ctx)
        dmat = yield from distribute_matrix(team, generator)
        engine = yield from SpMVMEngine.create(team, dmat)
        solver = DistributedLanczos(team, engine)
        state = yield from solver.run(n_steps)
        return state.eigenvalue_estimates()[:k]

    run = run_gaspi(main, n_ranks=n_ranks)
    return np.asarray(run.result(0))


def scipy_reference(generator, k=6):
    full = generator.full()
    mat = sp.csr_matrix(
        (full.values, full.col_idx, full.row_ptr), shape=full.shape
    )
    return np.sort(spla.eigsh(mat, k=k, which="SA", return_eigenvectors=False))


def distinct(values, tol=1e-6):
    """Collapse (near-)degenerate eigenvalues — Lanczos with one start
    vector only resolves distinct ones."""
    out = []
    for v in np.sort(values):
        if not out or v - out[-1] > tol:
            out.append(float(v))
    return np.array(out)


def main():
    print("=== disordered graphene sheets, distributed Lanczos vs SciPy ===")
    for nx, ny, ranks, disorder in ((4, 4, 2, 1.0), (5, 6, 3, 0.7),
                                    (6, 8, 4, 0.5)):
        gen = GrapheneSheet(nx, ny, disorder=disorder, seed=5)
        ours = distinct(distributed_low_eigenvalues(gen, ranks,
                                                    n_steps=gen.n_rows))[:3]
        ref = distinct(scipy_reference(gen))[:3]
        err = np.abs(ours - ref).max()
        print(f"  {nx}x{ny} cells ({gen.n_rows:4d} sites, {ranks} ranks, "
              f"W={disorder}): lambda_min = {ours[0]:+.6f}  "
              f"(max |err| vs SciPy = {err:.2e})")
        assert err < 1e-6

    print("\n=== Anderson disorder shifts the band edge downwards ===")
    gen_clean = GrapheneSheet(6, 6)
    base = distributed_low_eigenvalues(gen_clean, 4, n_steps=gen_clean.n_rows)[0]
    print(f"  W=0.0: lambda_min = {base:+.6f}")
    for disorder in (0.5, 1.0, 2.0):
        gen = GrapheneSheet(6, 6, disorder=disorder, seed=11)
        lam = distributed_low_eigenvalues(gen, 4, n_steps=gen.n_rows)[0]
        print(f"  W={disorder}: lambda_min = {lam:+.6f}")
        assert lam < base  # disorder broadens the band

    print("\nOK — distributed results match SciPy; disorder trend as expected.")


if __name__ == "__main__":
    main()
