#!/usr/bin/env python
"""Quickstart: a fault-tolerant Lanczos run that survives a killed rank.

Eight worker processes (one per simulated node) compute the low-lying
eigenvalues of a disordered graphene sheet; three spare processes idle and
one acts as the dedicated fault detector.  At t = 2 s we `kill -9` worker
rank 3.  The FD detects the broken channel, designates spare rank 8 as the
rescue, every rank rebuilds the worker group, and the run completes with
eigenvalues identical to the failure-free reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import FaultPlan, MachineSpec
from repro.ft import FTConfig, run_ft_application
from repro.solvers import lanczos_sequential
from repro.solvers.ft_lanczos import FTLanczos
from repro.solvers.tridiag import lanczos_matrix_eigenvalues
from repro.spmvm.matgen import GrapheneSheet


class StepTime:
    """Pace each Lanczos step at ~0.1 s so the failure lands mid-run."""

    def spmv_time(self, nnz, rows):
        return 0.05

    def vector_ops_time(self, n):
        return 0.05


def main():
    matrix = GrapheneSheet(4, 6, disorder=1.0, seed=7)  # 48 sites
    n_steps = 48

    cfg = FTConfig(
        n_workers=8,
        n_spares=4,            # 3 idle rescues + the FD process
        fd_scan_period=1.0,    # paper default is 3 s; shorter for the demo
        comm_timeout=0.5,
        checkpoint_interval=10,
    )
    program = FTLanczos(
        generator=matrix,
        n_steps=n_steps,
        time_model=StepTime(),
    )
    plan = FaultPlan().kill_process(2.0, rank=3)

    print(f"Running {cfg.n_workers} workers + {cfg.n_spares} spares; "
          f"killing rank 3 at t=2.0 s ...")
    result = run_ft_application(
        cfg, program,
        machine_spec=MachineSpec(n_nodes=cfg.n_ranks),
        fault_plan=plan,
    )

    workers = result.worker_results()
    assert result.status == "done", result.status
    stats = result.fd_stats
    detection = stats.detections[0]
    print(f"\nFD detected failure of ranks {detection.failed} at "
          f"t={detection.t_detected:.2f} s; rescues: {detection.rescues}")
    rescue = workers[3]
    recovery_marks = [
        (t, label) for t, label, _ in rescue["timeline"]
        if label in ("recovered", "restore", "restored")
    ]
    print(f"Rescue timeline (logical rank 3): {recovery_marks}")

    got = workers[0]["result"]["eigenvalues"]

    # reference 1: the same distributed run without any failure
    clean = run_ft_application(
        cfg, program, machine_spec=MachineSpec(n_nodes=cfg.n_ranks),
    )
    ref_dist = clean.worker_results()[0]["result"]["eigenvalues"]
    # reference 2: a sequential Lanczos for the converged minimum
    a, b = lanczos_sequential(matrix.full(), n_steps)
    ref_seq_min = lanczos_matrix_eigenvalues(a, b)[0]

    print(f"\nlowest eigenvalues (fault-tolerant run):       "
          f"{np.round(got, 8).tolist()}")
    print(f"lowest eigenvalues (failure-free distributed): "
          f"{np.round(ref_dist, 8).tolist()}")
    # Converged eigenvalues agree to full precision.  (Entire lists need
    # not be bit-identical: the rescue occupies a different physical rank,
    # so reduction order — hence floating-point rounding — changes after
    # recovery, exactly as on real GPI-2; unconverged Lanczos "ghosts" can
    # shift under that rounding.)
    assert abs(got[0] - ref_dist[0]) < 1e-12
    assert abs(got[1] - ref_dist[1]) < 1e-9
    assert abs(got[0] - ref_seq_min) < 1e-9
    print(f"\nOK — recovered run reproduces the converged eigenvalues "
          f"(virtual runtime {result.elapsed:.1f} s vs "
          f"{clean.elapsed:.1f} s failure-free).")


if __name__ == "__main__":
    main()
