#!/usr/bin/env python
"""Anatomy of a recovery: timeline, cost report and capacity planning.

Runs a paper-scale (model-kernel) job with two injected failures, then
uses `repro.analysis` to dissect what happened — the unified event
timeline, the per-epoch recovery cost breakdown — and finally asks the
planner the question the paper leaves open: how many spares should this
job have reserved, and how often should it checkpoint?

Run:  python examples/recovery_anatomy.py
"""

from repro.analysis import (
    collect_timeline,
    plan_job,
    recovery_report,
    render_timeline,
)
from repro.cluster import FaultPlan
from repro.experiments.common import ft_config_for, machine_for
from repro.ft.app import run_ft_application
from repro.workloads import ModelLanczosProgram, scaled_spec


def main():
    spec = scaled_spec(workers=32, iterations=300, name="anatomy")
    cfg = ft_config_for(spec, n_spares=3)
    plan = FaultPlan().kill_process(40.0, 5).kill_process(80.0, 11)

    print(f"Running {spec.n_workers} workers, {spec.n_iterations} iterations "
          f"(~{spec.setup_time + spec.baseline_runtime:.0f} s), "
          f"killing ranks 5 and 11 ...\n")
    result = run_ft_application(
        cfg, ModelLanczosProgram(spec),
        machine_spec=machine_for(cfg),
        fault_plan=plan,
        until=2000.0,
    )
    assert result.status == "done"

    events = collect_timeline(result)
    interesting = [e for e in events
                   if e.source in ("fault", "fd") or e.label in
                   ("recovered", "restored")]
    print("=== event timeline (faults, FD, recovery milestones) ===")
    print(render_timeline(interesting))

    print("\n=== recovery cost report ===")
    print(recovery_report(result))

    # capacity planning: the question the paper declares out of scope
    duration = max(w["t_done"] for w in result.worker_results().values())
    checkpoint_cost = spec.checkpoint_bytes_per_worker / 5.0e9
    print("\n=== planner: spares + checkpoint interval for this job ===")
    for mttf_hours in (2.0, 24.0):
        rec = plan_job(n_workers=spec.n_workers, duration=duration,
                       mttf_node=mttf_hours * 3600.0,
                       checkpoint_cost=checkpoint_cost,
                       recovery_cost=17.0, target_survival=0.99)
        print(f"  node MTTF {mttf_hours:5.1f} h -> reserve "
              f"{rec.n_spares} spare(s) "
              f"(survival {rec.survival_probability:.3f}, "
              f"E[failures] {rec.expected_failures:.2f}), "
              f"checkpoint every {rec.checkpoint_interval:.0f} s "
              f"(~{rec.expected_overhead_fraction * 100:.2f}% overhead)")
    print("\nOK")


if __name__ == "__main__":
    main()
