#!/usr/bin/env python
"""Non-shrinking (GASPI + spare processes) vs shrinking (ULFM) recovery.

The paper's stated future work is a comparison with OpenMPI's ULFM; this
example runs both recovery philosophies against the same failure on the
same simulated cluster and prints the cost breakdown:

* the paper's scheme pays a *scan-latency* detection plus a blocking
  group commit, but keeps the data distribution (data recovery = reading
  a checkpoint);
* the ULFM pattern detects through the failed communication itself
  (faster) and rebuilds with revoke/agree/shrink, but the shrunken
  communicator forces a domain redistribution across all survivors.

Run:  python examples/ulfm_vs_gaspi.py
"""

from repro.experiments.recovery_compare import (
    HEADERS,
    as_rows,
    run_comparison,
)
from repro.experiments.report import format_table
from repro.workloads import scaled_spec


def main():
    sizes = (8, 16, 32, 64, 128)
    print("Measuring one-failure recovery on both schemes "
          f"(sizes {list(sizes)}) ...\n")
    rows = run_comparison(sizes)
    print(format_table(HEADERS, as_rows(rows),
                       title="Recovery cost: non-shrinking vs shrinking"))

    spec = scaled_spec(workers=sizes[-1], iterations=100)
    print(f"""
Interpretation
--------------
* Detection: ULFM notices the failure through the broken collective
  (~transport error timeout); the paper's FD adds up to one scan period
  — but costs the *workers* nothing while nothing fails.
* Reconstruction: both grow linearly in rank count (group commit vs
  revoke+agree+shrink).
* The decisive difference is what comes next: the non-shrinking scheme
  restores from checkpoints (~{spec.checkpoint_bytes_per_worker / 1e6:.1f}
  MB/rank here), while after a shrink every surviving rank owns a
  *different* row block, so the whole pre-processing stage
  (~{spec.setup_time:.0f} s in the paper-scale model) must be redone —
  the paper's core argument for pre-allocated spares.
OK""")


if __name__ == "__main__":
    main()
