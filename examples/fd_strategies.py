#!/usr/bin/env python
"""Failure-detection strategies compared (paper Sect. IV-A b).

Quantifies why the paper chose a dedicated FD process over the two
alternatives it investigated: all-to-all pings burn quadratically many
messages and add failure-free overhead; the neighbor ring is cheap but
still puts detection work (and the consensus problem) on the compute
processes.  The dedicated FD's worker-side check is a local memory read.

Run:  python examples/fd_strategies.py
"""

from repro.experiments.ablations import run_fd_strategy_comparison
from repro.experiments.report import format_table


def main():
    print("Comparing detection strategies on 32 ranks "
          "(60 iterations x 0.414 s, health check every 3 s) ...\n")
    outcomes = run_fd_strategy_comparison(
        n_ranks=32, n_iters=60, iteration_time=0.414, check_period=3.0
    )
    rows = [
        [o.strategy, o.runtime, o.overhead_pct, o.pings_total,
         "n/a" if o.detection_latency is None else round(o.detection_latency, 3)]
        for o in outcomes
    ]
    print(format_table(
        ["strategy", "failure-free runtime [s]", "overhead [%]",
         "pings sent", "detection latency [s]"],
        rows,
    ))
    dedicated, all2all, ring = outcomes
    assert dedicated.pings_total == 0
    assert all2all.pings_total > ring.pings_total
    assert all2all.overhead_pct > dedicated.overhead_pct
    print("\nThe dedicated FD sends no worker-side pings at all: its check "
          "is a\nlocal flag read, which is why the paper measures zero "
          "failure-free overhead.")


if __name__ == "__main__":
    main()
