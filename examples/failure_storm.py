#!/usr/bin/env python
"""Failure storm: MTTF-driven random node crashes against the spare pool.

Simulates the exascale scenario that motivates the paper: node failures
arrive as independent exponential clocks while a paper-scale (model-kernel)
Lanczos job runs.  The job survives as long as rescues remain; the example
prints the full event timeline — injections, detections, recoveries — and
the final overhead accounting.

Run:  python examples/failure_storm.py [seed]
"""

import sys

from repro.cluster import FaultPlan, exponential_node_failures
from repro.experiments.common import ft_config_for, machine_for
from repro.ft.app import run_ft_application
from repro.sim import RngStreams
from repro.workloads import ModelLanczosProgram, scaled_spec


def main(seed: int = 3):
    spec = scaled_spec(workers=32, iterations=600, name="storm")
    n_spares = 5
    cfg = ft_config_for(spec, n_spares=n_spares)

    rng = RngStreams(seed).stream("storm")
    horizon = spec.setup_time + spec.baseline_runtime
    plan = exponential_node_failures(
        rng, n_nodes=cfg.n_workers, mttf_node=horizon * 8,
        horizon=horizon, max_failures=n_spares - 1,
    )
    print(f"Workload: {spec.n_workers} workers, {spec.n_iterations} "
          f"iterations (~{horizon:.0f} s), {n_spares - 1} idle rescues")
    print(f"Injected failures (MTTF-driven, seed={seed}):")
    for event in plan.sorted_events():
        print(f"  {event.describe()}")

    result = run_ft_application(
        cfg, ModelLanczosProgram(spec),
        machine_spec=machine_for(cfg),
        fault_plan=plan,
        until=horizon * 5 + 600,
    )

    print(f"\nOutcome: {result.status}")
    stats = result.fd_stats
    if stats:
        for det in stats.detections:
            print(f"  detection epoch {det.epoch}: failed {det.failed} at "
                  f"t={det.t_detected:.1f} s -> rescues {det.rescues} "
                  f"(ack after {det.t_acknowledged - det.t_detected:.3f} s)")
    workers = result.worker_results()
    if workers and result.status == "done":
        total = max(w["t_done"] for w in workers.values())
        ideal = spec.setup_time + spec.baseline_runtime
        redo = max(
            w["counters"].get("iterations", 0) for w in workers.values()
        ) - spec.n_iterations
        print(f"\nruntime {total:.1f} s vs failure-free {ideal:.1f} s "
              f"(+{100 * (total - ideal) / ideal:.1f}%), "
              f"{len(plan)} failures recovered, "
              f"{redo:.0f} iterations of redo-work")
    print("OK")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
