"""Tests for Event/WaitEvent semantics and process lifecycle (kill/join)."""

import pytest

from repro.sim import Event, Simulator, Sleep, WaitEvent, SimError, SimDeadlock
from repro.sim.process import ProcessState


def test_event_fires_once_with_value():
    ev = Event("e")
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    ev.succeed(7)
    assert seen == [7]
    with pytest.raises(SimError):
        ev.succeed(8)


def test_callback_added_after_fire_runs_immediately():
    ev = Event()
    ev.succeed("x")
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_wait_event_resumes_with_value():
    sim = Simulator()
    ev = Event()

    def waiter():
        ok, val = yield WaitEvent(ev)
        return (ok, val)

    def firer():
        yield Sleep(2.0)
        ev.succeed("hello")

    p = sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert p.result == (True, "hello")
    assert sim.now == 2.0


def test_wait_event_timeout_returns_not_ok():
    sim = Simulator()
    ev = Event()

    def waiter():
        ok, val = yield WaitEvent(ev, timeout=1.5)
        return (ok, val, sim.now)

    p = sim.spawn(waiter())
    sim.run()
    assert p.result == (False, None, 1.5)


def test_wait_on_already_fired_event_resumes_immediately():
    sim = Simulator()
    ev = Event()
    ev.succeed(3)

    def waiter():
        ok, val = yield WaitEvent(ev, timeout=10.0)
        return (ok, val, sim.now)

    p = sim.spawn(waiter())
    sim.run()
    assert p.result == (True, 3, 0.0)


def test_timeout_does_not_fire_after_event_won():
    sim = Simulator()
    ev = Event()
    resumed = []

    def waiter():
        ok, _ = yield WaitEvent(ev, timeout=5.0)
        resumed.append((sim.now, ok))
        yield Sleep(10.0)  # stay alive past the timeout instant

    sim.spawn(waiter())
    sim.schedule(1.0, lambda: ev.succeed(None))
    sim.run()
    assert resumed == [(1.0, True)]


def test_event_after_timeout_does_not_resume_waiter():
    sim = Simulator()
    ev = Event()
    results = []

    def waiter():
        ok, _ = yield WaitEvent(ev, timeout=1.0)
        results.append((sim.now, ok))

    sim.spawn(waiter())
    sim.schedule(2.0, lambda: ev.succeed("late"))
    sim.run()
    assert results == [(1.0, False)]


def test_negative_timeout_rejected():
    ev = Event()
    with pytest.raises(SimError):
        WaitEvent(ev, timeout=-1.0)


def test_kill_while_sleeping_never_resumes():
    sim = Simulator()
    stages = []

    def victim():
        stages.append("start")
        yield Sleep(10.0)
        stages.append("unreachable")

    p = sim.spawn(victim())

    def killer():
        yield Sleep(1.0)
        p.kill()

    sim.spawn(killer())
    sim.run()
    assert stages == ["start"]
    assert p.state is ProcessState.KILLED
    assert not p.alive


def test_kill_while_waiting_on_event_deregisters():
    sim = Simulator()
    ev = Event()

    def victim():
        yield WaitEvent(ev)

    p = sim.spawn(victim())
    sim.schedule(1.0, p.kill)
    sim.schedule(2.0, lambda: ev.succeed(None))
    sim.run()
    assert p.state is ProcessState.KILLED


def test_kill_is_idempotent():
    sim = Simulator()

    def victim():
        yield Sleep(5.0)

    p = sim.spawn(victim())
    sim.schedule(1.0, p.kill)
    sim.schedule(2.0, p.kill)
    sim.run()
    assert p.state is ProcessState.KILLED


def test_join_returns_result():
    sim = Simulator()

    def worker():
        yield Sleep(3.0)
        return "done"

    w = sim.spawn(worker())

    def joiner():
        ok, res = yield from w.join()
        return (ok, res, sim.now)

    j = sim.spawn(joiner())
    sim.run()
    assert j.result == (True, "done", 3.0)


def test_join_timeout():
    sim = Simulator()

    def worker():
        yield Sleep(100.0)

    w = sim.spawn(worker())

    def joiner():
        ok, res = yield from w.join(timeout=1.0)
        return (ok, res)

    j = sim.spawn(joiner())
    sim.run()
    assert j.result == (False, None)


def test_join_killed_process():
    sim = Simulator()

    def worker():
        yield Sleep(100.0)

    w = sim.spawn(worker())

    def joiner():
        ok, res = yield from w.join()
        return (ok, res, sim.now)

    j = sim.spawn(joiner())
    sim.schedule(2.0, w.kill)
    sim.run()
    assert j.result == (True, None, 2.0)


def test_deadlock_detection():
    sim = Simulator()
    ev = Event()

    def stuck():
        yield WaitEvent(ev)

    sim.spawn(stuck(), name="stuck-proc")
    with pytest.raises(SimDeadlock, match="stuck-proc"):
        sim.run(check_deadlock=True)


def test_no_deadlock_when_all_done():
    sim = Simulator()

    def fine():
        yield Sleep(1.0)

    sim.spawn(fine())
    sim.run(check_deadlock=True)  # must not raise
