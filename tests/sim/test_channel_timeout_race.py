"""Channel.get timeout-withdrawal invariant under same-tick races.

A ``put`` and a get-timeout landing on the same simulated tick race on
the kernel's FIFO seq order.  Whatever the order, the invariant is: an
item is never lost to an abandoned getter — either the getter receives
it, or the withdrawal leaves it queued for the next taker.
"""

from repro.sim import Channel, Simulator, Sleep


def test_timeout_fires_first_item_survives_in_channel():
    """Getter spawned first: its timeout timer outranks the putter's.

    The timeout withdraws the reservation; the same-tick put then finds no
    waiters and must queue the item — not hand it to the dead reservation.
    """
    sim = Simulator()
    chan = Channel("race")
    log = []

    def getter():
        ok, item = yield from chan.get(timeout=1.0)
        log.append(("get", ok, item))

    def putter():
        yield Sleep(1.0)
        chan.put("payload")

    sim.spawn(getter())
    sim.spawn(putter())
    sim.run()

    assert log == [("get", False, None)]  # the getter really timed out
    assert len(chan) == 1                 # ...but the item was not lost
    assert chan.try_get() == (True, "payload")


def test_put_fires_first_timeout_is_cancelled():
    """Putter spawned first: the item wins the race.

    The getter must resume exactly once with the item, and the cancelled
    timeout must not produce a second (spurious) resumption.
    """
    sim = Simulator()
    chan = Channel("race")
    log = []

    def putter():
        yield Sleep(1.0)
        chan.put("payload")

    def getter():
        ok, item = yield from chan.get(timeout=1.0)
        log.append(("get", ok, item))
        # park well past the timeout tick: a spurious timeout resumption
        # would throw inside the generator machinery before this returns
        yield Sleep(5.0)
        log.append(("done",))

    sim.spawn(putter())
    sim.spawn(getter())
    sim.run()

    assert log == [("get", True, "payload"), ("done",)]
    assert len(chan) == 0


def test_withdrawn_item_reaches_next_getter():
    """The queued-after-withdrawal item is delivered to a later get."""
    sim = Simulator()
    chan = Channel("race")
    log = []

    def getter():
        ok, item = yield from chan.get(timeout=1.0)
        log.append((sim.now, ok, item))
        if not ok:  # timed out: try again, the put landed meanwhile
            ok, item = yield from chan.get(timeout=1.0)
            log.append((sim.now, ok, item))

    def putter():
        yield Sleep(1.0)
        chan.put("late")

    sim.spawn(getter())
    sim.spawn(putter())
    sim.run()

    assert log == [(1.0, False, None), (1.0, True, "late")]
    assert len(chan) == 0
