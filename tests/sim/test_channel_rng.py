"""Tests for Channel FIFO semantics and RngStreams reproducibility."""

from repro.sim import Channel, RngStreams, Simulator, Sleep


def test_channel_put_then_get_nonblocking():
    sim = Simulator()
    ch = Channel("c")
    ch.put(1)
    ch.put(2)

    def getter():
        ok1, a = yield from ch.get()
        ok2, b = yield from ch.get()
        return (ok1, a, ok2, b)

    p = sim.spawn(getter())
    sim.run()
    assert p.result == (True, 1, True, 2)


def test_channel_get_blocks_until_put():
    sim = Simulator()
    ch = Channel()

    def getter():
        ok, item = yield from ch.get()
        return (ok, item, sim.now)

    p = sim.spawn(getter())
    sim.schedule(4.0, lambda: ch.put("msg"))
    sim.run()
    assert p.result == (True, "msg", 4.0)


def test_channel_get_timeout():
    sim = Simulator()
    ch = Channel()

    def getter():
        ok, item = yield from ch.get(timeout=2.0)
        return (ok, item, sim.now)

    p = sim.spawn(getter())
    sim.run()
    assert p.result == (False, None, 2.0)


def test_channel_item_not_lost_after_getter_timeout():
    sim = Simulator()
    ch = Channel()
    results = {}

    def impatient():
        ok, item = yield from ch.get(timeout=1.0)
        results["impatient"] = (ok, item)

    def patient():
        yield Sleep(2.0)
        ok, item = yield from ch.get()
        results["patient"] = (ok, item)

    sim.spawn(impatient())
    sim.spawn(patient())
    sim.schedule(3.0, lambda: ch.put("survivor"))
    sim.run()
    assert results["impatient"] == (False, None)
    assert results["patient"] == (True, "survivor")


def test_channel_fifo_order_multiple_getters():
    sim = Simulator()
    ch = Channel()
    got = []

    def getter(name):
        ok, item = yield from ch.get()
        got.append((name, item))

    sim.spawn(getter("g0"))
    sim.spawn(getter("g1"))
    sim.schedule(1.0, lambda: ch.put("a"))
    sim.schedule(2.0, lambda: ch.put("b"))
    sim.run()
    assert got == [("g0", "a"), ("g1", "b")]


def test_channel_try_get():
    ch = Channel()
    assert ch.try_get() == (False, None)
    ch.put(9)
    assert len(ch) == 1
    assert ch.try_get() == (True, 9)
    assert len(ch) == 0


def test_rng_same_seed_same_draws():
    a = RngStreams(42).stream("faults").random(5)
    b = RngStreams(42).stream("faults").random(5)
    assert (a == b).all()


def test_rng_streams_independent_by_name():
    streams = RngStreams(42)
    a = streams.stream("faults").random(5)
    b = streams.stream("network").random(5)
    assert not (a == b).all()


def test_rng_adding_stream_does_not_perturb_existing():
    s1 = RngStreams(7)
    first = s1.stream("x").random(3)

    s2 = RngStreams(7)
    s2.stream("y")  # extra consumer created first
    second = s2.stream("x").random(3)
    assert (first == second).all()


def test_rng_stream_cached():
    streams = RngStreams(0)
    assert streams.stream("a") is streams.stream("a")


def test_rng_fork_differs_from_parent_but_reproducible():
    parent = RngStreams(1)
    child1 = parent.fork("rep0")
    child2 = RngStreams(1).fork("rep0")
    other = RngStreams(1).fork("rep1")
    a = child1.stream("s").random(4)
    assert (a == child2.stream("s").random(4)).all()
    assert not (a == other.stream("s").random(4)).all()
    assert not (a == parent.stream("s").random(4)).all()
