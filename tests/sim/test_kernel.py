"""Unit tests for the DES kernel: clock, ordering, scheduling, run bounds."""

import pytest

from repro.sim import Simulator, Sleep, SimError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_callback_at_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.schedule(-1.0, lambda: None)


def test_simultaneous_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(1.0, lambda: order.append("b"))
    sim.schedule(0.5, lambda: order.append("first"))
    sim.run()
    assert order == ["first", "a", "b"]


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(1))
    sim.schedule(10.0, lambda: seen.append(10))
    t = sim.run(until=5.0)
    assert seen == [1]
    assert t == 5.0
    # the remaining event still fires on a later run
    sim.run()
    assert seen == [1, 10]
    assert sim.now == 10.0


def test_run_until_advances_clock_even_with_empty_heap():
    sim = Simulator()
    assert sim.run(until=7.0) == 7.0


def test_timer_cancel_prevents_callback():
    sim = Simulator()
    seen = []
    timer = sim.schedule(1.0, lambda: seen.append(1))
    sim.cancel(timer)
    sim.run()
    assert seen == []


def test_timer_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.cancel(timer)
    sim.cancel(timer)
    sim.run()


def test_nested_scheduling_from_callback():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(2.0, lambda: seen.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run()
    assert seen == [("outer", 1.0), ("inner", 3.0)]


def test_step_events_runs_bounded_number():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(float(i), lambda i=i: seen.append(i))
    ran = sim.step_events(3)
    assert ran == 3
    assert seen == [0, 1, 2]


def test_process_sleep_advances_time():
    sim = Simulator()

    def proc():
        yield Sleep(1.5)
        yield Sleep(2.5)
        return sim.now

    p = sim.spawn(proc())
    sim.run()
    assert p.result == 4.0


def test_process_return_value_captured():
    sim = Simulator()

    def proc():
        yield Sleep(0.0)
        return 42

    p = sim.spawn(proc())
    sim.run()
    assert p.result == 42


def test_spawn_at_delays_start():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield Sleep(1.0)

    sim.spawn_at(5.0, proc())
    sim.run()
    assert times == [5.0]


def test_yield_garbage_raises_helpful_error():
    sim = Simulator()

    def proc():
        yield "not a request"

    sim.spawn(proc(), name="bad")
    with pytest.raises(SimError, match="yield from"):
        sim.run()


def test_negative_sleep_rejected():
    with pytest.raises(SimError):
        Sleep(-0.1)


def test_determinism_same_program_same_trace():
    def build():
        sim = Simulator()
        sim.enable_trace()

        def worker(i):
            for _ in range(3):
                yield Sleep(0.5 * (i + 1))

        for i in range(4):
            sim.spawn(worker(i), name=f"w{i}")
        sim.run()
        return sim.trace

    assert build() == build()
