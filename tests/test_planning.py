"""Tests for the spare-count / checkpoint-interval planner.

Includes a Monte-Carlo validation of the survival model against the
simulator's own MTTF-driven fault injection.
"""

import math

import numpy as np
import pytest

from repro.analysis import (
    daly_interval,
    expected_failures,
    expected_overhead_fraction,
    plan_job,
    required_spares,
    survival_probability,
)
from repro.analysis.planning import poisson_cdf


class TestPoissonMachinery:
    def test_poisson_cdf_known_values(self):
        assert poisson_cdf(0, 1.0) == pytest.approx(math.exp(-1))
        assert poisson_cdf(1, 1.0) == pytest.approx(2 * math.exp(-1))
        assert poisson_cdf(-1, 1.0) == 0.0
        assert poisson_cdf(100, 1.0) == pytest.approx(1.0)

    def test_cdf_monotone_in_k(self):
        vals = [poisson_cdf(k, 3.0) for k in range(10)]
        assert vals == sorted(vals)

    def test_expected_failures(self):
        assert expected_failures(100, 3600.0, 360000.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            expected_failures(10, 1.0, 0.0)


class TestSurvival:
    def test_more_spares_more_survival(self):
        probs = [survival_probability(256, s, 86400.0, 4e6)
                 for s in range(1, 6)]
        assert probs == sorted(probs)

    def test_required_spares_meets_target(self):
        n = required_spares(256, 86400.0, 4e6, target_survival=0.999)
        assert survival_probability(256, n, 86400.0, 4e6) >= 0.999
        if n > 1:
            assert survival_probability(256, n - 1, 86400.0, 4e6) < 0.999

    def test_longer_job_needs_more_spares(self):
        short = required_spares(256, 3600.0, 4e6)
        long = required_spares(256, 10 * 86400.0, 4e6)
        assert long > short

    def test_target_validation(self):
        with pytest.raises(ValueError):
            required_spares(10, 1.0, 1e6, target_survival=1.5)

    def test_survival_matches_monte_carlo(self):
        """The closed form vs the simulator's own exponential fault model."""
        from repro.cluster import exponential_node_failures

        n_nodes, duration, mttf, budget = 40, 50.0, 400.0, 5
        rng = np.random.default_rng(0)
        trials = 400
        survived = 0
        for _ in range(trials):
            plan = exponential_node_failures(
                rng, n_nodes=n_nodes, mttf_node=mttf, horizon=duration
            )
            if len(plan) <= budget:
                survived += 1
        from repro.analysis.planning import binomial_cdf

        p_fail = 1 - math.exp(-duration / mttf)
        predicted = binomial_cdf(budget, n_nodes, p_fail)
        assert survived / trials == pytest.approx(predicted, abs=0.06)
        # the Poisson limit is close but not exact at this failure density
        assert poisson_cdf(budget, n_nodes * duration / mttf) < predicted


class TestDaly:
    def test_interval_formula(self):
        assert daly_interval(10.0, 2000.0) == pytest.approx(200.0)
        with pytest.raises(ValueError):
            daly_interval(1.0, 0.0)

    def test_overhead_minimised_near_daly_point(self):
        C, M = 5.0, 5000.0
        opt = daly_interval(C, M)
        here = expected_overhead_fraction(opt, C, M)
        assert expected_overhead_fraction(opt / 4, C, M) > here
        assert expected_overhead_fraction(opt * 4, C, M) > here

    def test_overhead_includes_recovery_cost(self):
        base = expected_overhead_fraction(100.0, 5.0, 5000.0, recovery_cost=0.0)
        with_rec = expected_overhead_fraction(100.0, 5.0, 5000.0,
                                              recovery_cost=17.0)
        assert with_rec > base


class TestPlanner:
    def test_plan_for_paper_like_job(self):
        # 256 workers, 30-minute job, node MTTF ~2 months
        plan = plan_job(n_workers=256, duration=1800.0, mttf_node=5e6,
                        checkpoint_cost=0.03, recovery_cost=17.0)
        assert plan.n_spares >= 1
        assert plan.survival_probability >= 0.99
        assert plan.checkpoint_interval > 0
        assert 0 < plan.expected_overhead_fraction < 0.2

    def test_plan_scales_with_risk(self):
        safe = plan_job(64, 3600.0, 1e7, 0.03)
        risky = plan_job(64, 3600.0, 1e5, 0.03)
        assert risky.n_spares >= safe.n_spares
        assert risky.expected_failures > safe.expected_failures
        # higher failure rate => checkpoint more often
        assert risky.checkpoint_interval < safe.checkpoint_interval
