"""Shared pytest plumbing.

The ``sanitize`` marker attaches the runtime protocol sanitizer
(``repro.gaspi.sanitize``) to every GASPI world a test builds, exactly
as ``REPRO_SANITIZE=1`` does for a whole run::

    @pytest.mark.sanitize
    def test_spmv_round_trip():
        ...

CI runs the gaspi/ft test subset under ``REPRO_SANITIZE=1`` as well, so
the invariants hold both where explicitly requested and across the
whole protocol surface.
"""

import pytest

from repro.gaspi.sanitize import ENV_FLAG


@pytest.fixture(autouse=True)
def _sanitize_marker(request, monkeypatch):
    if request.node.get_closest_marker("sanitize") is not None:
        monkeypatch.setenv(ENV_FLAG, "1")
