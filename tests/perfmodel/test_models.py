"""Tests for the machine/roofline/calibration models and workload specs."""


import pytest

from repro.perfmodel import (
    LIMA,
    PAPER_ITERATION_TIME,
    CalibratedTimeModel,
    RooflineModel,
    paper_time_model,
)
from repro.perfmodel.calibration import (
    PAPER_MATRIX_NNZ,
    PAPER_MATRIX_ROWS,
    PAPER_WORKERS,
)
from repro.workloads import PAPER_GRAPHENE, scaled_spec


class TestRoofline:
    def test_times_positive_and_monotonic(self):
        model = RooflineModel()
        t1 = model.spmv_time(10**6, 10**5)
        t2 = model.spmv_time(2 * 10**6, 10**5)
        assert 0 < t1 < t2

    def test_efficiency_scales_inverse(self):
        fast = RooflineModel(efficiency=1.0)
        slow = RooflineModel(efficiency=0.5)
        assert slow.spmv_time(10**6, 10**5) == pytest.approx(
            2 * fast.spmv_time(10**6, 10**5)
        )

    def test_ranks_per_node_share_bandwidth(self):
        one = RooflineModel(ranks_per_node=1)
        two = RooflineModel(ranks_per_node=2)
        assert two.iteration_time(10**6, 10**5) == pytest.approx(
            2 * one.iteration_time(10**6, 10**5)
        )

    def test_lima_description(self):
        assert LIMA.cores == 12
        assert LIMA.clock_hz == pytest.approx(2.66e9)


class TestCalibration:
    def test_fit_reproduces_anchor_exactly(self):
        model = CalibratedTimeModel.fit(10**6, 10**5, target_iteration_time=0.25)
        assert model.iteration_time(10**6, 10**5) == pytest.approx(0.25)

    def test_paper_model_hits_paper_iteration_time(self):
        model = paper_time_model()
        rows = PAPER_MATRIX_ROWS // PAPER_WORKERS
        nnz = PAPER_MATRIX_NNZ // PAPER_WORKERS
        assert model.iteration_time(nnz, rows) == pytest.approx(
            PAPER_ITERATION_TIME
        )

    def test_paper_iteration_time_near_0_414(self):
        assert PAPER_ITERATION_TIME == pytest.approx(0.414, abs=0.001)


class TestWorkloadSpec:
    def test_paper_spec_dimensions(self):
        spec = PAPER_GRAPHENE
        assert spec.n_rows == 120_000_000
        assert spec.nnz == 1_500_000_000
        assert spec.n_workers == 256
        assert spec.n_iterations == 3500
        assert spec.checkpoint_interval == 500
        assert spec.checkpoint_bytes_per_worker == pytest.approx(7.42e6, rel=0.01)
        assert spec.baseline_runtime == pytest.approx(1450.0, rel=0.01)

    def test_scaled_spec_preserves_per_worker_shape(self):
        spec = scaled_spec(workers=64, iterations=700)
        assert spec.rows_per_worker == PAPER_GRAPHENE.rows_per_worker
        assert spec.nnz_per_worker == PAPER_GRAPHENE.nnz_per_worker
        assert spec.checkpoint_bytes_per_worker == \
            PAPER_GRAPHENE.checkpoint_bytes_per_worker
        assert spec.iteration_time == PAPER_GRAPHENE.iteration_time
        # checkpoint count preserved: 700/100 == 3500/500
        assert spec.n_iterations / spec.checkpoint_interval == pytest.approx(
            PAPER_GRAPHENE.n_iterations / PAPER_GRAPHENE.checkpoint_interval
        )

    def test_iteration_time_roundtrip(self):
        spec = PAPER_GRAPHENE
        assert spec.iteration_of_time(spec.time_of_iteration(700)) == 700
