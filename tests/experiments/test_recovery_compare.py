"""recovery_compare's three-way baseline: the checkpoint-restore phase
comes from the world manager's round-plane totals, not from summing
per-rank stats dicts."""

import pytest

from repro.experiments import recovery_compare as rc


@pytest.fixture(scope="module")
def rows8():
    return rc.run_comparison(sizes=(8,))


def test_restore_phase_reported_from_manager_totals(rows8):
    row = rows8[0]
    # one failure -> the rescue read a checkpoint: bytes and virtual
    # seconds of the restore phase must both be accounted
    assert row.gaspi_restore_bytes > 0
    assert row.gaspi_restore_s > 0
    # the restore happens inside reconstruction, never exceeds it
    assert row.gaspi_restore_s <= row.gaspi_reconstruction


def test_ulfm_rows_have_no_restore_phase(rows8):
    # shrinking recovery redistributes the domain instead of reading
    # checkpoints; the comparison keeps those columns zero by construction
    rendered = rc.as_rows(rows8)
    assert len(rendered[0]) == len(rc.HEADERS)
    assert rows8[0].ulfm_total == (rows8[0].ulfm_detection
                                   + rows8[0].ulfm_reconstruction)
