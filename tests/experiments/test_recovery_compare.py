"""recovery_compare's three-way baseline: the checkpoint-restore phase
comes from the world manager's round-plane totals, not from summing
per-rank stats dicts."""

import pytest

from repro.experiments import recovery_compare as rc


@pytest.fixture(scope="module")
def rows8():
    return rc.run_comparison(sizes=(8,))


def test_restore_phase_reported_from_manager_totals(rows8):
    row = rows8[0]
    # one failure -> the rescue read a checkpoint: bytes and virtual
    # seconds of the restore phase must both be accounted
    assert row.gaspi_restore_bytes > 0
    assert row.gaspi_restore_s > 0
    # the restore happens inside reconstruction, never exceeds it
    assert row.gaspi_restore_s <= row.gaspi_reconstruction


def test_ulfm_rows_have_no_restore_phase(rows8):
    # shrinking recovery redistributes the domain instead of reading
    # checkpoints; the comparison keeps those columns zero by construction
    rendered = rc.as_rows(rows8)
    assert len(rendered[0]) == len(rc.HEADERS)
    assert rows8[0].ulfm_total == (rows8[0].ulfm_detection
                                   + rows8[0].ulfm_reconstruction)


@pytest.fixture(scope="module")
def backend_rows8():
    return rc.run_backend_comparison(sizes=(8,))


def test_backend_table_covers_all_three_backends(backend_rows8):
    assert [row.backend for row in backend_rows8] == list(rc.BACKENDS)
    for row in backend_rows8:
        assert row.n_ranks == 8
        # at 8 ranks every backend completes a checkpoint before the
        # kill, so every restore phase actually ran
        assert row.restore_ops > 0
        assert row.restore_bytes > 0
        assert row.restore_s > 0
        assert row.total == row.detection + row.reconstruction


def test_replicated_restore_beats_pfs(backend_rows8):
    by_backend = {row.backend: row for row in backend_rows8}
    # in-memory parallel share fetch vs the contended shared PFS pipe
    assert by_backend["replicated"].restore_s < by_backend["pfs"].restore_s


def test_restore_columns_dash_when_restore_never_ran():
    # the dash fix: restore_ops == 0 (failure-free run, or a kill before
    # the first checkpoint lands) must render "—", never a numeric 0
    row = rc.BackendRow(n_ranks=8, backend="replicated", detection=0.0,
                        reconstruction=0.0, restore_ops=0,
                        restore_bytes=0.0, restore_s=0.0)
    rendered = rc.backend_as_rows([row])[0]
    assert len(rendered) == len(rc.BACKEND_HEADERS)
    assert rendered[4] is None and rendered[5] is None


def test_failure_free_run_reports_no_restore_phase():
    detection, reinit, restore_ops, restore_bytes, restore_s = (
        rc.measure_backend(8, "neighbor", failure_free=True))
    assert restore_ops == 0
    assert restore_bytes == 0
    assert restore_s == 0
