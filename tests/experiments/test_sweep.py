"""Tests for the parallel scenario-sweep engine and its seed hygiene."""

import pytest

from repro.experiments.sweep import (
    SweepTask,
    resolve_jobs,
    run_sweep,
    scenario_seed,
)


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------
def test_scenario_seed_pinned_values():
    """The derivation rule is part of the experiments' reproducibility
    contract — changing it silently changes every published number."""
    assert scenario_seed("exp", "scn") == 7206158516263425080
    assert scenario_seed("figure4", "1 fail recovery", 1) == 7744828309004896934
    from repro.experiments.table1 import detection_seed
    assert detection_seed(8, 0) == 6610276730427786884


def test_scenario_seed_is_identity_derived():
    a = scenario_seed("exp", "scn", 3)
    assert a == scenario_seed("exp", "scn", 3)  # pure function of the key
    assert a != scenario_seed("exp", "scn", 4)
    assert a != scenario_seed("exp", "other", 3)
    assert a != scenario_seed("other", "scn", 3)
    assert 0 <= a < 2**63  # fits every integer seed consumer


def test_sweep_task_key_and_seed():
    task = SweepTask("exp", "scn", len, ("abc",), k=2)
    assert task.key == ("exp", "scn", 2)
    assert task.seed == scenario_seed("exp", "scn", 2)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _boom():
    raise RuntimeError("scenario exploded")


def _tasks(n):
    return [SweepTask("t", f"s{i}", _square, (i,)) for i in range(n)]


def test_resolve_jobs():
    import os
    cores = max(1, os.cpu_count() or 1)
    assert resolve_jobs(None) == cores
    assert resolve_jobs(0) == cores
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(-2) == 1


def test_serial_results_in_task_order():
    assert run_sweep(_tasks(6), jobs=1) == [0, 1, 4, 9, 16, 25]


def test_parallel_matches_serial():
    tasks = _tasks(8)
    assert run_sweep(tasks, jobs=2) == run_sweep(tasks, jobs=1)


def test_empty_sweep():
    assert run_sweep([], jobs=4) == []


def test_duplicate_keys_rejected():
    dup = [SweepTask("t", "same", _square, (1,)),
           SweepTask("t", "same", _square, (2,))]
    with pytest.raises(ValueError, match="duplicate"):
        run_sweep(dup)
    # distinct k disambiguates intentionally repeated scenarios
    ok = [SweepTask("t", "same", _square, (1,), k=0),
          SweepTask("t", "same", _square, (2,), k=1)]
    assert run_sweep(ok) == [1, 4]


def test_worker_exception_propagates():
    tasks = [SweepTask("t", "ok", _square, (2,)),
             SweepTask("t", "bad", _boom)]
    with pytest.raises(RuntimeError, match="exploded"):
        run_sweep(tasks, jobs=1)
    with pytest.raises(RuntimeError, match="exploded"):
        run_sweep(tasks, jobs=2)


# ----------------------------------------------------------------------
# serial/parallel equivalence of the real drivers
# ----------------------------------------------------------------------
def test_figure4_parallel_rows_byte_identical_to_serial():
    from repro.experiments.figure4 import as_rows, default_spec, run_figure4

    spec = default_spec("tiny")
    serial = as_rows(run_figure4(spec, jobs=1))
    parallel = as_rows(run_figure4(spec, jobs=2))
    assert repr(serial) == repr(parallel)
    assert len(serial) == 7


def test_table1_parallel_rows_byte_identical_to_serial():
    from repro.experiments.table1 import as_rows, run_table1

    serial = as_rows(run_table1(nodes=[4], n_runs=2, jobs=1))
    parallel = as_rows(run_table1(nodes=[4], n_runs=2, jobs=2))
    assert repr(serial) == repr(parallel)
