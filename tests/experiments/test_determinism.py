"""End-to-end determinism regression for the kernel run-queue change.

The simulator's contract is a total order on ``(time, seq)``: two
identically-configured runs must replay the exact same event sequence.
The same-timestamp FIFO run-queue added for performance bypasses the heap
for zero-delay events, so this test pins the contract at full-stack
scale: two identically-seeded Figure-4 runs (FT Lanczos, fault injection,
recovery) must produce byte-identical step traces and virtual end times.
"""

from repro.cluster import FaultPlan
from repro.experiments.common import ft_config_for, machine_for
from repro.experiments.figure4 import default_spec, kill_schedule
from repro.ft.app import ft_main
from repro.gaspi import run_gaspi
from repro.sim import Simulator
from repro.workloads.kernels import ModelLanczosProgram


def _traced_run(spec):
    """One '1 fail recovery' Figure-4 scenario with step tracing on."""
    cfg = ft_config_for(spec)
    plan = FaultPlan()
    for t, rank in kill_schedule(spec, 1):
        plan.kill_process(t, rank)
    sim = Simulator()
    sim.enable_trace()
    run = run_gaspi(
        ft_main(cfg, ModelLanczosProgram(spec)),
        machine_spec=machine_for(cfg),
        fault_plan=plan,
        until=(spec.setup_time + spec.baseline_runtime) * 4 + 600,
        sim=sim,
    )
    workers = {r: p.result for r, p in run.procs.items()
               if isinstance(p.result, dict) and "logical_rank" in p.result}
    assert workers and all(w["status"] == "done" for w in workers.values())
    return list(sim.trace), sim.now


def test_identically_seeded_runs_are_byte_identical():
    spec = default_spec("small")
    trace_a, now_a = _traced_run(spec)
    trace_b, now_b = _traced_run(spec)
    assert now_a == now_b            # virtual end times identical
    assert len(trace_a) == len(trace_b) > 0
    assert trace_a == trace_b        # same (time, process, kind) sequence
    assert repr(trace_a) == repr(trace_b)  # byte-identical serialisation
