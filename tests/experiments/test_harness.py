"""Tests for the experiment harness: the paper's shape claims must hold."""

import pytest

from repro.experiments import figure4
from repro.experiments.figure4 import (
    as_rows,
    curve_shape,
    default_spec,
    kill_schedule,
    run_bare,
    run_curve,
    run_figure4,
)
from repro.experiments.common import run_ft_scenario
from repro.experiments.report import format_table
from repro.experiments.table1 import measure_detection, measure_scan_time
from repro.workloads import scaled_spec


@pytest.fixture(scope="module")
def tiny_figure4():
    return run_figure4(default_spec("tiny"))


class TestFigure4Shapes:
    """The paper's Figure 4 claims, asserted on the tiny preset."""

    def test_all_seven_scenarios_present(self, tiny_figure4):
        names = [o.name for o in tiny_figure4]
        assert names == [
            "w/o HC, w/o CP", "w/o HC, with CP", "with HC, with CP",
            "1 fail recovery", "2 fail recovery", "3 fail recovery",
            "3 sim. fail recovery",
        ]

    def test_checkpointing_overhead_negligible(self, tiny_figure4):
        base, with_cp = tiny_figure4[0], tiny_figure4[1]
        assert with_cp.total_runtime <= base.total_runtime * 1.001

    def test_health_check_adds_no_overhead(self, tiny_figure4):
        with_cp, with_hc = tiny_figure4[1], tiny_figure4[2]
        assert with_hc.total_runtime <= with_cp.total_runtime * 1.005

    def test_each_failure_adds_roughly_constant_overhead(self, tiny_figure4):
        base = tiny_figure4[2].total_runtime
        o1 = tiny_figure4[3].total_runtime - base
        o2 = tiny_figure4[4].total_runtime - base
        o3 = tiny_figure4[5].total_runtime - base
        assert o1 > 0
        assert o2 == pytest.approx(2 * o1, rel=0.35)
        assert o3 == pytest.approx(3 * o1, rel=0.35)

    def test_simultaneous_failures_cost_one_detection(self, tiny_figure4):
        one = tiny_figure4[3]
        sim3 = tiny_figure4[6]
        # three simultaneous failures recovered at ~the cost of one failure
        assert sim3.total_runtime <= one.total_runtime * 1.1
        assert sim3.n_recoveries == 1

    def test_recovery_decomposition_components_positive(self, tiny_figure4):
        one = tiny_figure4[3]
        assert one.detection_time > 0
        assert one.reinit_time > 0
        assert one.redo_work_time > 0
        # detection dominated by scan period (3 s) + error timeout (3.5 s)
        assert 3.5 <= one.detection_time <= 8.5

    def test_components_sum_to_total(self, tiny_figure4):
        for o in tiny_figure4:
            total = sum(o.components().values())
            assert total == pytest.approx(o.total_runtime, rel=1e-6)


class TestTable1Shapes:
    def test_scan_time_linear_in_processes(self):
        t8 = measure_scan_time(8)
        t16 = measure_scan_time(16)
        t32 = measure_scan_time(32)
        # ~1 ms per pinged process + small setup
        assert t8 == pytest.approx(0.002 + 0.001 * 7, rel=0.15)
        assert (t32 - t16) == pytest.approx(2 * (t16 - t8), rel=0.2)

    def test_detection_latency_flat_in_nodes(self):
        d8 = measure_detection(8, seed=1)
        d32 = measure_detection(32, seed=2)
        assert 3.5 <= d8 <= 8.0
        assert 3.5 <= d32 <= 8.0

    def test_detection_varies_with_seed(self):
        samples = {round(measure_detection(8, seed=s), 6) for s in range(4)}
        assert len(samples) > 1  # random kill instants → random scan phase


class TestFigure4Curve:
    """The --curve shape gate against the digitized reference points."""

    def test_shape_gate_passes_on_subset(self):
        nodes = [8, 16, 32]
        measured = run_curve(nodes)
        rows, worst = curve_shape(nodes, measured)
        assert [r[0] for r in rows] == nodes
        assert worst <= figure4.CURVE_TOL

    def test_shape_distance_catches_a_distorted_curve(self):
        # a flat (non-linear) 8-node point breaks the normalized shape
        _, worst = curve_shape([8, 256], [0.120, 0.258])
        assert worst > figure4.CURVE_TOL

    def test_curve_needs_two_points(self):
        with pytest.raises(ValueError, match="at least two"):
            curve_shape([256], [0.258])

    def test_curve_cli_prints_gate_verdict(self, capsys):
        figure4.main(["--curve", "--nodes", "8", "16", "32"])
        out = capsys.readouterr().out
        assert "shape gate" in out and "PASS" in out

    def test_curve_cli_rejects_unknown_node_count(self, capsys):
        with pytest.raises(SystemExit):
            figure4.main(["--curve", "--nodes", "8", "48"])
        assert "no digitized reference" in capsys.readouterr().err


class TestHarnessPlumbing:
    def test_bare_run_matches_spec_prediction(self):
        spec = scaled_spec(workers=8, iterations=30, name="plumbing")
        total = run_bare(spec, checkpoints=False)
        predicted = spec.setup_time + spec.baseline_runtime
        assert total == pytest.approx(predicted, rel=0.02)

    def test_kill_schedule_targets_are_workers(self):
        spec = default_spec("tiny")
        for t, rank in kill_schedule(spec, 3):
            assert 0 < rank < spec.n_workers
            assert t > spec.setup_time

    def test_scenario_raises_if_not_completed(self):
        spec = scaled_spec(workers=4, iterations=30, name="fail-case")
        # 2 kills, 1 spare (the FD joins for the first, nothing remains)
        with pytest.raises(RuntimeError, match="did not complete"):
            run_ft_scenario(
                "impossible", spec,
                kill_times=[(25.0, 1), (40.0, 2)],
                n_spares=1, until=300.0,
            )

    def test_format_table_renders(self, tiny_figure4):
        from repro.experiments.figure4 import HEADERS
        text = format_table(HEADERS, as_rows(tiny_figure4), title="t")
        assert "w/o HC, w/o CP" in text
        assert text.count("\n") >= 9
