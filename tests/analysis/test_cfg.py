"""Edge cases of the ftlint CFG builder and dataflow engine.

The flow rules are only as good as the graph: these tests pin the
constructs the protocol code actually uses — ``while``/``else`` with
``break``, abrupt exits routed through nested ``finally`` bodies,
generator ``yield from`` positions, and ``contextlib.suppress`` escape
edges.
"""

import ast
import textwrap

from repro.analysis.ftlint.cfg import build_cfg
from repro.analysis.ftlint.dataflow import Fact, facts_at_exit, run_forward


def cfg_of(source, **kwargs):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0], **kwargs)


def blocks_matching(cfg, needle):
    """Blocks whose element's source contains ``needle``."""
    out = []
    for block in cfg.blocks:
        if block.stmt is None:
            continue
        try:
            text = ast.unparse(block.stmt)
        except (ValueError, AttributeError):
            text = ast.dump(block.stmt)
        if needle in text:
            out.append(block)
    return out


def the_block(cfg, needle):
    matches = blocks_matching(cfg, needle)
    assert len(matches) == 1, f"{needle!r}: {len(matches)} matches"
    return matches[0]


def break_block(cfg):
    (block,) = [b for b in cfg.blocks if isinstance(b.stmt, ast.Break)]
    return block


class TestWhileElse:
    def test_normal_exit_runs_else(self):
        cfg = cfg_of("""
            def f(ctx):
                while ctx.more():
                    ctx.step()
                else:
                    ctx.cleanup()
                ctx.done()
        """)
        head = the_block(cfg, "ctx.more()")
        cleanup = the_block(cfg, "ctx.cleanup()")
        done = the_block(cfg, "ctx.done()")
        assert head.idx in cleanup.preds
        assert done.idx in cfg.reachable_from(cleanup.idx)
        # body loops back to the test
        assert head.idx in the_block(cfg, "ctx.step()").succs

    def test_break_skips_the_else_clause(self):
        cfg = cfg_of("""
            def f(ctx):
                while ctx.more():
                    if ctx.bad():
                        break
                    ctx.step()
                else:
                    ctx.cleanup()
                ctx.done()
        """)
        brk = break_block(cfg)
        reachable = cfg.reachable_from(brk.idx)
        assert the_block(cfg, "ctx.done()").idx in reachable
        assert the_block(cfg, "ctx.cleanup()").idx not in reachable

    def test_while_true_without_break_has_no_exit(self):
        cfg = cfg_of("""
            def f(ctx):
                while True:
                    ctx.step()
                ctx.done()
        """)
        assert blocks_matching(cfg, "ctx.done()") == []  # unreachable
        assert cfg.exit.preds == set()
        assert cfg.in_cycle(the_block(cfg, "ctx.step()").idx)

    def test_while_true_with_break_exits(self):
        cfg = cfg_of("""
            def f(ctx):
                while True:
                    if ctx.stop():
                        break
                    ctx.step()
                ctx.done()
        """)
        done = the_block(cfg, "ctx.done()")
        assert done.idx in cfg.reachable_from(break_block(cfg).idx)


class TestFinallyRouting:
    def test_break_runs_nested_finallies_innermost_first(self):
        cfg = cfg_of("""
            def f(ctx, items):
                for x in items:
                    try:
                        try:
                            if ctx.stop(x):
                                break
                            ctx.work(x)
                        finally:
                            ctx.inner()
                    finally:
                        ctx.outer()
                ctx.done()
        """)
        # the classic duplication scheme: one copy of each finally on the
        # normal path, one fresh copy per abrupt exit
        assert len(blocks_matching(cfg, "ctx.inner()")) >= 2
        assert len(blocks_matching(cfg, "ctx.outer()")) >= 2
        brk = break_block(cfg)
        # the break's first successor is an inner() copy, not the target
        succ_texts = {ast.unparse(cfg.blocks[idx].stmt)
                      for idx in brk.succs if cfg.blocks[idx].stmt is not None}
        assert "ctx.inner()" in succ_texts
        reachable = cfg.reachable_from(brk.idx)
        assert the_block(cfg, "ctx.done()").idx in reachable
        assert the_block(cfg, "ctx.work(x)").idx not in reachable

    def test_return_routes_through_finally_to_exit(self):
        cfg = cfg_of("""
            def f(ctx):
                try:
                    return ctx.value()
                finally:
                    ctx.cleanup()
        """)
        ret = next(b for b in cfg.blocks if isinstance(b.stmt, ast.Return))
        cleanup = the_block(cfg, "ctx.cleanup()")
        assert cleanup.idx in ret.succs
        assert cfg.exit.idx in cleanup.succs

    def test_try_body_raises_into_every_handler(self):
        cfg = cfg_of("""
            def f(ctx):
                try:
                    ctx.a()
                    ctx.b()
                except ValueError:
                    ctx.h1()
                except KeyError:
                    ctx.h2()
                ctx.done()
        """)
        handlers = [b for b in cfg.blocks
                    if isinstance(b.stmt, ast.ExceptHandler)]
        assert len(handlers) == 2
        for needle in ("ctx.a()", "ctx.b()"):
            succs = the_block(cfg, needle).succs
            for handler in handlers:
                assert handler.idx in succs


class TestYield:
    SRC = """
        def f(ctx, q):
            ret = yield from ctx.wait(q)
            return ret
    """

    def test_yield_from_recorded_on_block(self):
        cfg = cfg_of(self.SRC)
        (block,) = cfg.yield_blocks
        assert block.has_yield
        assert "ctx.wait" in ast.unparse(block.stmt)
        # by default a resumed generator continues: no edge to exit
        assert cfg.exit.idx not in block.succs

    def test_abandon_edges_wire_yields_to_exit(self):
        cfg = cfg_of(self.SRC, abandon_edges=True)
        (block,) = cfg.yield_blocks
        assert cfg.exit.idx in block.succs


class TestWithSuppress:
    def test_suppress_adds_escape_edges(self):
        cfg = cfg_of("""
            def f(risky):
                with contextlib.suppress(ValueError):
                    risky.a()
                    risky.b()
                risky.after()
        """)
        a = the_block(cfg, "risky.a()")
        b = the_block(cfg, "risky.b()")
        after = the_block(cfg, "risky.after()")
        # a() may raise: the join point (and so after()) is reachable
        # without executing b()
        escape = a.succs - {b.idx}
        assert escape, "no escape edge from the suppressed body"
        assert all(after.idx in cfg.reachable_from(idx) | {idx}
                   for idx in escape)

    def test_plain_with_has_no_escape_edges(self):
        cfg = cfg_of("""
            def f(risky):
                with risky.lock():
                    risky.a()
                    risky.b()
                risky.after()
        """)
        a = the_block(cfg, "risky.a()")
        assert a.succs == {the_block(cfg, "risky.b()").idx}


class TestDataflow:
    @staticmethod
    def _transfer(cfg, post_needle, clear_needle=None):
        def transfer(idx, state):
            stmt = cfg.blocks[idx].stmt
            if stmt is None:
                return state
            text = ast.unparse(stmt)
            if clear_needle is not None and clear_needle in text:
                return frozenset()
            if post_needle in text:
                return state | {Fact("obligation", "k", idx)}
            return state
        return transfer

    def test_union_join_keeps_branch_fact_live_at_exit(self):
        cfg = cfg_of("""
            def f(ctx, flag):
                if flag:
                    ctx.post()
                ctx.end()
        """)
        in_states = run_forward(cfg, self._transfer(cfg, "ctx.post()"))
        (fact,) = facts_at_exit(cfg, in_states)
        assert fact.kind == "obligation"
        assert cfg.blocks[fact.origin].stmt is the_block(cfg, "ctx.post()").stmt

    def test_discharge_on_every_path_clears_exit(self):
        cfg = cfg_of("""
            def f(ctx, flag):
                if flag:
                    ctx.post()
                ctx.wait()
                ctx.end()
        """)
        in_states = run_forward(
            cfg, self._transfer(cfg, "ctx.post()", "ctx.wait()"))
        assert facts_at_exit(cfg, in_states) == frozenset()

    def test_loop_fixpoint_terminates_and_propagates(self):
        cfg = cfg_of("""
            def f(ctx, n):
                for i in range(n):
                    ctx.post()
                ctx.end()
        """)
        in_states = run_forward(cfg, self._transfer(cfg, "ctx.post()"))
        assert {f.kind for f in facts_at_exit(cfg, in_states)} == {"obligation"}
