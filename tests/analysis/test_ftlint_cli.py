"""CLI behaviour: formats, exit codes, baseline lifecycle, entry points."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.ftlint import cli

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATION = textwrap.dedent("""
    def step(ctx, q):
        ret = yield from ctx.wait(q)
        return ret
""")

CLEAN = textwrap.dedent("""
    def step(ctx, guard, q):
        guard.assert_healthy()
        ret = yield from ctx.wait(q)
        return ret
""")


@pytest.fixture
def project(tmp_path, monkeypatch):
    """A tiny repo-shaped tree with one FT001 violation; cwd moved into it."""
    target = tmp_path / "src" / "repro" / "ft"
    target.mkdir(parents=True)
    (target / "fixture.py").write_text(VIOLATION, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def run(args):
    return cli.main(args)


class TestExitCodes:
    def test_violation_fails(self, project, capsys):
        assert run(["src", "--select", "FT001"]) == 1
        assert "FT001" in capsys.readouterr().out

    def test_clean_tree_passes(self, project, capsys):
        (project / "src/repro/ft/fixture.py").write_text(CLEAN,
                                                         encoding="utf-8")
        assert run(["src", "--select", "FT001"]) == 0

    def test_no_paths_is_usage_error(self, project, capsys):
        assert run([]) == 2

    def test_missing_path_is_usage_error(self, project, capsys):
        assert run(["no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, project, capsys):
        assert run(["src", "--select", "FT999"]) == 2

    def test_ignore_drops_rule(self, project):
        assert run(["src", "--ignore", "FT001,FT006"]) == 0

    def test_parse_error_always_fails(self, project, capsys):
        (project / "src/repro/ft/broken.py").write_text("def broken(:\n",
                                                        encoding="utf-8")
        assert run(["src", "--select", "FT001", "--write-baseline"]) == 1
        assert run(["src", "--select", "FT001"]) == 1
        assert "PARSE" in capsys.readouterr().out

    def test_list_rules(self, project, capsys):
        assert run(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("FT001", "FT002", "FT003", "FT004", "FT005", "FT006"):
            assert rule_id in out


class TestJsonFormat:
    def test_document_shape(self, project, capsys):
        assert run(["src", "--select", "FT001", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "ftlint"
        assert doc["files_checked"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "FT001"
        assert finding["status"] == "new"
        assert finding["path"] == "src/repro/ft/fixture.py"
        assert finding["line"] >= 1
        assert len(finding["fingerprint"]) == 16
        assert doc["summary"]["new"] == 1

    def test_human_format_mentions_location(self, project, capsys):
        run(["src", "--select", "FT001"])
        out = capsys.readouterr().out
        assert "src/repro/ft/fixture.py:" in out


class TestBaselineLifecycle:
    def test_write_then_pass_then_fail_on_any(self, project, capsys):
        assert run(["src", "--select", "FT001", "--write-baseline"]) == 0
        assert (project / cli.DEFAULT_BASELINE).exists()
        capsys.readouterr()

        # grandfathered: default --fail-on new passes
        assert run(["src", "--select", "FT001"]) == 0
        capsys.readouterr()
        run(["src", "--select", "FT001", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["baselined"] == 1
        assert doc["findings"][0]["status"] == "baselined"

        # strict mode still sees it
        assert run(["src", "--select", "FT001", "--fail-on", "any"]) == 1
        # and --no-baseline pretends the file is absent
        assert run(["src", "--select", "FT001", "--no-baseline"]) == 1

    def test_new_violation_on_top_of_baseline_fails(self, project, capsys):
        run(["src", "--select", "FT001", "--write-baseline"])
        extra = VIOLATION + textwrap.dedent("""
            def second(ctx, q):
                ret = yield from ctx.barrier(q)
                return ret
        """)
        (project / "src/repro/ft/fixture.py").write_text(extra,
                                                         encoding="utf-8")
        capsys.readouterr()
        assert run(["src", "--select", "FT001"]) == 1
        out = capsys.readouterr().out
        assert "barrier" in out

    def test_fixed_violation_reports_stale_entry(self, project, capsys):
        run(["src", "--select", "FT001", "--write-baseline"])
        (project / "src/repro/ft/fixture.py").write_text(CLEAN,
                                                         encoding="utf-8")
        capsys.readouterr()
        assert run(["src", "--select", "FT001", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["new"] == 0
        assert len(doc["stale_baseline_entries"]) == 1

    def test_explicit_baseline_path(self, project, capsys):
        alt = "custom-baseline.json"
        assert run(["src", "--select", "FT001", "--baseline", alt,
                    "--write-baseline"]) == 0
        assert (project / alt).exists()
        assert run(["src", "--select", "FT001", "--baseline", alt]) == 0

    def test_corrupt_baseline_is_an_error(self, project, capsys):
        (project / cli.DEFAULT_BASELINE).write_text("{\"version\": 99}",
                                                    encoding="utf-8")
        assert run(["src", "--select", "FT001"]) == 2
        assert "baseline" in capsys.readouterr().err


class TestEntryPoints:
    """The two documented launchers resolve and run."""

    def test_tools_script(self):
        proc = subprocess.run(
            [sys.executable, "tools/ftlint.py", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "FT001" in proc.stdout

    def test_module_launcher(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "FT006" in proc.stdout


class TestSarifFormat:
    def _sarif(self, capsys, args):
        code = run(args)
        return code, json.loads(capsys.readouterr().out)

    def test_document_shape(self, project, capsys):
        code, doc = self._sarif(
            capsys, ["src", "--select", "FT001", "--format", "sarif"])
        assert code == 1
        assert doc["version"] == "2.1.0"
        (sarif_run,) = doc["runs"]
        driver = sarif_run["tool"]["driver"]
        assert driver["name"] == "ftlint"
        assert any(rule["id"] == "FT001" for rule in driver["rules"])
        (result,) = sarif_run["results"]
        assert result["ruleId"] == "FT001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == \
            "src/repro/ft/fixture.py"
        assert location["region"]["startLine"] >= 1
        assert "ftlintFingerprint/v1" in result["partialFingerprints"]

    def test_rule_index_is_consistent(self, project, capsys):
        _, doc = self._sarif(
            capsys, ["src", "--select", "FT001", "--format", "sarif"])
        (sarif_run,) = doc["runs"]
        rules = sarif_run["tool"]["driver"]["rules"]
        (result,) = sarif_run["results"]
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_baselined_finding_carried_as_unchanged(self, project, capsys):
        run(["src", "--select", "FT001", "--write-baseline"])
        capsys.readouterr()
        code, doc = self._sarif(
            capsys, ["src", "--select", "FT001", "--format", "sarif"])
        assert code == 0  # grandfathered under --fail-on new
        (result,) = doc["runs"][0]["results"]
        assert result["level"] == "note"
        assert result["baselineState"] == "unchanged"
        assert result["suppressions"][0]["kind"] == "external"

    def test_fingerprint_matches_local_baseline_format(self, project, capsys):
        _, sarif_doc = self._sarif(
            capsys, ["src", "--select", "FT001", "--format", "sarif"])
        run(["src", "--select", "FT001", "--format", "json"])
        json_doc = json.loads(capsys.readouterr().out)
        sarif_fp = sarif_doc["runs"][0]["results"][0][
            "partialFingerprints"]["ftlintFingerprint/v1"]
        assert sarif_fp == json_doc["findings"][0]["fingerprint"]


MINI_CONTEXT = textwrap.dedent("""
    class GaspiContext:
        def write(self, segment_id, offset, size, dst_rank,
                  remote_segment, remote_offset, queue_id=0):
            return None
""")

MINI_USER = textwrap.dedent("""
    def push(ctx, peer):
        ctx.write(0, 0, 8, peer, 0, 0)
""")


class TestManifestCli:
    @pytest.fixture
    def mini_repo(self, tmp_path):
        (tmp_path / "src/repro/gaspi").mkdir(parents=True)
        (tmp_path / "src/repro/ft").mkdir(parents=True)
        (tmp_path / "src/repro/gaspi/context.py").write_text(
            MINI_CONTEXT, encoding="utf-8")
        (tmp_path / "src/repro/ft/user.py").write_text(
            MINI_USER, encoding="utf-8")
        return tmp_path

    def test_write_then_check_roundtrip(self, mini_repo, capsys):
        assert run(["--write-manifest", "--root", str(mini_repo)]) == 0
        assert (mini_repo / "capability_manifest.json").exists()
        assert run(["--check-manifest", "--root", str(mini_repo)]) == 0
        assert "current" in capsys.readouterr().out

    def test_drift_fails_the_gate(self, mini_repo, capsys):
        run(["--write-manifest", "--root", str(mini_repo)])
        (mini_repo / "src/repro/ft/user.py").write_text(
            MINI_USER + "\ndef ping(ctx):\n    return ctx.proc_ping(1)\n",
            encoding="utf-8")
        assert run(["--check-manifest", "--root", str(mini_repo)]) == 1
        err = capsys.readouterr().err
        assert "proc_ping" in err
        assert "--write-manifest" in err

    def test_missing_manifest_fails_the_gate(self, mini_repo, capsys):
        assert run(["--check-manifest", "--root", str(mini_repo)]) == 1
        assert "missing" in capsys.readouterr().err
