"""CLI behaviour: formats, exit codes, baseline lifecycle, entry points."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.ftlint import cli

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATION = textwrap.dedent("""
    def step(ctx, q):
        ret = yield from ctx.wait(q)
        return ret
""")

CLEAN = textwrap.dedent("""
    def step(ctx, guard, q):
        guard.assert_healthy()
        ret = yield from ctx.wait(q)
        return ret
""")


@pytest.fixture
def project(tmp_path, monkeypatch):
    """A tiny repo-shaped tree with one FT001 violation; cwd moved into it."""
    target = tmp_path / "src" / "repro" / "ft"
    target.mkdir(parents=True)
    (target / "fixture.py").write_text(VIOLATION, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def run(args):
    return cli.main(args)


class TestExitCodes:
    def test_violation_fails(self, project, capsys):
        assert run(["src", "--select", "FT001"]) == 1
        assert "FT001" in capsys.readouterr().out

    def test_clean_tree_passes(self, project, capsys):
        (project / "src/repro/ft/fixture.py").write_text(CLEAN,
                                                         encoding="utf-8")
        assert run(["src", "--select", "FT001"]) == 0

    def test_no_paths_is_usage_error(self, project, capsys):
        assert run([]) == 2

    def test_missing_path_is_usage_error(self, project, capsys):
        assert run(["no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, project, capsys):
        assert run(["src", "--select", "FT999"]) == 2

    def test_ignore_drops_rule(self, project):
        assert run(["src", "--ignore", "FT001,FT006"]) == 0

    def test_parse_error_always_fails(self, project, capsys):
        (project / "src/repro/ft/broken.py").write_text("def broken(:\n",
                                                        encoding="utf-8")
        assert run(["src", "--select", "FT001", "--write-baseline"]) == 1
        assert run(["src", "--select", "FT001"]) == 1
        assert "PARSE" in capsys.readouterr().out

    def test_list_rules(self, project, capsys):
        assert run(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("FT001", "FT002", "FT003", "FT004", "FT005", "FT006"):
            assert rule_id in out


class TestJsonFormat:
    def test_document_shape(self, project, capsys):
        assert run(["src", "--select", "FT001", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "ftlint"
        assert doc["files_checked"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "FT001"
        assert finding["status"] == "new"
        assert finding["path"] == "src/repro/ft/fixture.py"
        assert finding["line"] >= 1
        assert len(finding["fingerprint"]) == 16
        assert doc["summary"]["new"] == 1

    def test_human_format_mentions_location(self, project, capsys):
        run(["src", "--select", "FT001"])
        out = capsys.readouterr().out
        assert "src/repro/ft/fixture.py:" in out


class TestBaselineLifecycle:
    def test_write_then_pass_then_fail_on_any(self, project, capsys):
        assert run(["src", "--select", "FT001", "--write-baseline"]) == 0
        assert (project / cli.DEFAULT_BASELINE).exists()
        capsys.readouterr()

        # grandfathered: default --fail-on new passes
        assert run(["src", "--select", "FT001"]) == 0
        capsys.readouterr()
        run(["src", "--select", "FT001", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["baselined"] == 1
        assert doc["findings"][0]["status"] == "baselined"

        # strict mode still sees it
        assert run(["src", "--select", "FT001", "--fail-on", "any"]) == 1
        # and --no-baseline pretends the file is absent
        assert run(["src", "--select", "FT001", "--no-baseline"]) == 1

    def test_new_violation_on_top_of_baseline_fails(self, project, capsys):
        run(["src", "--select", "FT001", "--write-baseline"])
        extra = VIOLATION + textwrap.dedent("""
            def second(ctx, q):
                ret = yield from ctx.barrier(q)
                return ret
        """)
        (project / "src/repro/ft/fixture.py").write_text(extra,
                                                         encoding="utf-8")
        capsys.readouterr()
        assert run(["src", "--select", "FT001"]) == 1
        out = capsys.readouterr().out
        assert "barrier" in out

    def test_fixed_violation_reports_stale_entry(self, project, capsys):
        run(["src", "--select", "FT001", "--write-baseline"])
        (project / "src/repro/ft/fixture.py").write_text(CLEAN,
                                                         encoding="utf-8")
        capsys.readouterr()
        assert run(["src", "--select", "FT001", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["new"] == 0
        assert len(doc["stale_baseline_entries"]) == 1

    def test_explicit_baseline_path(self, project, capsys):
        alt = "custom-baseline.json"
        assert run(["src", "--select", "FT001", "--baseline", alt,
                    "--write-baseline"]) == 0
        assert (project / alt).exists()
        assert run(["src", "--select", "FT001", "--baseline", alt]) == 0

    def test_corrupt_baseline_is_an_error(self, project, capsys):
        (project / cli.DEFAULT_BASELINE).write_text("{\"version\": 99}",
                                                    encoding="utf-8")
        assert run(["src", "--select", "FT001"]) == 2
        assert "baseline" in capsys.readouterr().err


class TestEntryPoints:
    """The two documented launchers resolve and run."""

    def test_tools_script(self):
        proc = subprocess.run(
            [sys.executable, "tools/ftlint.py", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "FT001" in proc.stdout

    def test_module_launcher(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "FT006" in proc.stdout
