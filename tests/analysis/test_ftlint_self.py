"""Self-check: the repo's own tree is ftlint-clean modulo the committed
baseline, and the baseline carries no dead weight."""

import json
from pathlib import Path

import pytest

from repro.analysis.ftlint import cli

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def repo_cwd(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)


def test_src_and_tests_clean_modulo_baseline(repo_cwd, capsys):
    rc = cli.main(["src", "tests"])
    out = capsys.readouterr().out
    assert rc == 0, f"ftlint found new findings:\n{out}"


def test_committed_baseline_has_no_stale_entries(repo_cwd, capsys):
    rc = cli.main(["src", "tests", "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    stale = doc["stale_baseline_entries"]
    assert stale == [], (
        "baseline entries whose finding no longer exists — regenerate with "
        f"--write-baseline: {[e.get('fingerprint') for e in stale]}"
    )


def test_strict_packages_carry_no_baselined_debt(repo_cwd, capsys):
    """sim/, gaspi/ and obs/ are the mypy-strict packages: they must be
    clean outright, not via grandfathering."""
    rc = cli.main(["src/repro/sim", "src/repro/gaspi", "src/repro/obs",
                   "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 0, f"strict packages regressed:\n{out}"
