"""Four-way fixtures and targeted semantics for the flow rules FT007–FT010.

Each rule gets the violation / guarded / suppressed / baselined
treatment, then the discriminations that make the rules usable on real
code: same-call-site loop reposts are not double posts, tag supersession
is legal, escaped handles transfer the obligation, helper-named flushes
discharge.  The final class seeds a mutant into *real tree code*
(``repro.ft.recovery``) and checks the static rule catches it — the
runtime sanitizer's half of that pairing lives in
``tests/gaspi/test_sanitizer.py``.
"""

import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis.ftlint import (
    Baseline,
    all_rules,
    analyze_file,
    fingerprint,
    split_by_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint(tmp_path, source, display_path, rule_id):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = [r for r in all_rules() if r.id == rule_id]
    assert rules, f"unknown rule {rule_id}"
    return analyze_file(path, rules=rules, display_path=display_path)


# ----------------------------------------------------------------------
# the four-way table: (rule, path, positive, negative, suppressed)
# ----------------------------------------------------------------------
CASES = [
    (
        "FT007", "src/repro/spmvm/fixture.py",
        """
        def exchange(ctx, peer):
            ctx.write_notify(0, 0, 8, peer, 0, 0, 7)
        """,
        """
        def exchange(ctx, peer):
            ctx.write_notify(0, 0, 8, peer, 0, 0, 7)
            ret = yield from ctx.wait(0)
            return ret
        """,
        """
        def exchange(ctx, peer):
            ctx.write_notify(0, 0, 8, peer, 0, 0, 7)  # ftlint: disable=FT007 -- test fixture
        """,
    ),
    (
        "FT008", "src/repro/checkpoint/fixture.py",
        """
        def retire(ctx):
            ctx.segment_delete(3)
            ctx.segment(3)
        """,
        """
        def retire(ctx):
            ctx.segment_delete(3)
            ctx.segment_create(3, 1024)
            ctx.segment(3)
        """,
        """
        def retire(ctx):
            ctx.segment_delete(3)
            ctx.segment(3)  # ftlint: disable=FT008 -- test fixture
        """,
    ),
    (
        "FT009", "src/repro/ft/fixture.py",
        """
        def build(ctx, ranks):
            group = ctx.group_create(tag=1)
            for r in ranks:
                group.add(r)
        """,
        """
        def build(ctx, ranks):
            group = ctx.group_create(tag=1)
            for r in ranks:
                group.add(r)
            ret = yield from ctx.group_commit(group, 5.0)
            return ret
        """,
        """
        def build(ctx, ranks):
            group = ctx.group_create(tag=1)  # ftlint: disable=FT009 -- test fixture
            for r in ranks:
                group.add(r)
        """,
    ),
    (
        "FT010", "src/repro/solvers/fixture.py",
        """
        def pump(ctx, peer, n):
            for i in range(n):
                ctx.write(0, 0, 8, peer, 0, 0)
        """,
        """
        def pump(ctx, peer, n):
            for i in range(n):
                ctx.write(0, 0, 8, peer, 0, 0)
            ret = yield from ctx.wait(0)
            return ret
        """,
        """
        def pump(ctx, peer, n):
            for i in range(n):
                ctx.write(0, 0, 8, peer, 0, 0)  # ftlint: disable=FT010 -- test fixture
        """,
    ),
]

IDS = [case[0] for case in CASES]


@pytest.mark.parametrize("rule,path,positive,negative,suppressed",
                         CASES, ids=IDS)
class TestFourWay:
    def test_positive_flags(self, tmp_path, rule, path, positive,
                            negative, suppressed):
        findings = lint(tmp_path, positive, path, rule)
        assert [f.rule for f in findings] == [rule]
        assert findings[0].path == path
        assert findings[0].message

    def test_negative_clean(self, tmp_path, rule, path, positive,
                            negative, suppressed):
        assert lint(tmp_path, negative, path, rule) == []

    def test_suppression_mutes(self, tmp_path, rule, path, positive,
                               negative, suppressed):
        assert lint(tmp_path, suppressed, path, rule) == []

    def test_baselined_not_new(self, tmp_path, rule, path, positive,
                               negative, suppressed):
        findings = lint(tmp_path, positive, path, rule)
        baseline = Baseline(counts=Counter(fingerprint(f) for f in findings))
        new, baselined, stale = split_by_baseline(findings, baseline)
        assert new == []
        assert baselined == findings
        assert stale == []

    def test_out_of_scope_path_ignored(self, tmp_path, rule, path, positive,
                                       negative, suppressed):
        assert lint(tmp_path, positive, "src/repro/gaspi/fixture.py",
                    rule) == []


# ----------------------------------------------------------------------
# FT007: double-post discrimination
# ----------------------------------------------------------------------
class TestFT007Semantics:
    PATH = "src/repro/spmvm/fixture.py"

    def test_two_sites_same_value_is_a_double_post(self, tmp_path):
        src = """
        def exchange(ctx, peer):
            ctx.notify(peer, 0, 5, 1)
            ctx.notify(peer, 0, 5, 1)
            yield from ctx.wait(0)
        """
        findings = lint(tmp_path, src, self.PATH, "FT007")
        assert len(findings) == 1
        assert "re-posted" in findings[0].message

    def test_same_site_loop_repost_is_not_a_double_post(self, tmp_path):
        # the spMVM posts the same halo tag every iteration from one call
        # site; only a second *textual* site while live is suspicious
        src = """
        def pump(ctx, peer, n):
            for i in range(n):
                ctx.notify(peer, 0, 5, 1)
            yield from ctx.wait(0)
        """
        assert lint(tmp_path, src, self.PATH, "FT007") == []

    def test_supersession_with_new_value_is_legal(self, tmp_path):
        src = """
        def retag(ctx, peer):
            ctx.notify(peer, 0, 5, 1)
            ctx.notify(peer, 0, 5, 2)
            yield from ctx.wait(0)
        """
        assert lint(tmp_path, src, self.PATH, "FT007") == []

    def test_returned_return_code_escapes_obligation(self, tmp_path):
        # fire-and-forget helper: the caller owns the wait
        src = """
        def post(ctx, peer):
            return ctx.notify(peer, 0, 5, 1)
        """
        assert lint(tmp_path, src, self.PATH, "FT007") == []

    def test_branch_that_skips_the_wait_leaks(self, tmp_path):
        src = """
        def exchange(ctx, peer, eager):
            ctx.notify(peer, 0, 5, 1)
            if eager:
                return None
            yield from ctx.wait(0)
        """
        findings = lint(tmp_path, src, self.PATH, "FT007")
        assert len(findings) == 1
        assert "exit" in findings[0].message

    def test_helper_named_flush_discharges(self, tmp_path):
        src = """
        def exchange(self, ctx, peer):
            ctx.notify(peer, 0, 5, 1)
            self._flush_halo_queue()
        """
        assert lint(tmp_path, src, self.PATH, "FT007") == []


# ----------------------------------------------------------------------
# FT008: epoch discipline
# ----------------------------------------------------------------------
class TestFT008Semantics:
    PATH = "src/repro/checkpoint/fixture.py"

    def test_delete_on_one_branch_poisons_the_join(self, tmp_path):
        src = """
        def partial(ctx, flag):
            if flag:
                ctx.segment_delete(3)
            ctx.segment(3)
        """
        findings = lint(tmp_path, src, self.PATH, "FT008")
        assert len(findings) == 1
        assert "segment_delete" in findings[0].message

    def test_rebind_on_the_same_branch_is_clean(self, tmp_path):
        src = """
        def partial(ctx, flag):
            if flag:
                ctx.segment_delete(3)
                ctx.segment_create(3, 1024)
            ctx.segment(3)
        """
        assert lint(tmp_path, src, self.PATH, "FT008") == []

    def test_different_segment_id_untouched(self, tmp_path):
        src = """
        def retire(ctx):
            ctx.segment_delete(3)
            ctx.segment(4)
        """
        assert lint(tmp_path, src, self.PATH, "FT008") == []

    def test_posting_op_segment_argument_is_a_use(self, tmp_path):
        src = """
        def push(ctx, peer):
            ctx.segment_delete(3)
            ctx.write(3, 0, 8, peer, 0, 0)
        """
        findings = lint(tmp_path, src, self.PATH, "FT008")
        assert len(findings) == 1
        assert "'write'" in findings[0].message


# ----------------------------------------------------------------------
# FT009: balance and escape
# ----------------------------------------------------------------------
class TestFT009Semantics:
    PATH = "src/repro/ft/fixture.py"

    def test_early_return_path_leaks_the_group(self, tmp_path):
        src = """
        def build(ctx, flag):
            group = ctx.group_create(tag=1)
            if flag:
                return None
            ret = yield from ctx.group_commit(group, 5.0)
            return ret
        """
        findings = lint(tmp_path, src, self.PATH, "FT009")
        assert len(findings) == 1
        assert "group_commit" in findings[0].message

    def test_rebind_while_uncommitted_flags(self, tmp_path):
        src = """
        def rebuild(ctx):
            group = ctx.group_create(tag=1)
            group = ctx.group_create(tag=2)
            ret = yield from ctx.group_commit(group, 5.0)
            return ret
        """
        findings = lint(tmp_path, src, self.PATH, "FT009")
        assert len(findings) == 1
        assert "rebound" in findings[0].message

    def test_group_delete_discharges(self, tmp_path):
        src = """
        def abandon(ctx, flag):
            group = ctx.group_create(tag=1)
            if flag:
                ctx.group_delete(group)
                return None
            ret = yield from ctx.group_commit(group, 5.0)
            return ret
        """
        assert lint(tmp_path, src, self.PATH, "FT009") == []

    def test_returned_handle_escapes(self, tmp_path):
        src = """
        def make(ctx):
            group = ctx.group_create(tag=1)
            return group
        """
        assert lint(tmp_path, src, self.PATH, "FT009") == []

    def test_stored_handle_escapes(self, tmp_path):
        src = """
        def adopt(self, ctx):
            group = ctx.group_create(tag=1)
            self.group = group
        """
        assert lint(tmp_path, src, self.PATH, "FT009") == []

    def test_mutators_do_not_discharge(self, tmp_path):
        src = """
        def build(ctx, ks, ranks):
            group = ctx.group_create(tag=1)
            ks.group_fill(group, ranks)
        """
        findings = lint(tmp_path, src, self.PATH, "FT009")
        assert len(findings) == 1

    def test_nested_def_is_opaque_to_the_outer_function(self, tmp_path):
        # the inner function's commit must not balance the outer create,
        # and the outer create must not leak into the inner CFG
        src = """
        def outer(ctx):
            def inner(ctx):
                group = ctx.group_create(tag=2)
                ret = yield from ctx.group_commit(group, 5.0)
                return ret
            group = ctx.group_create(tag=1)
            ret = yield from ctx.group_commit(group, 5.0)
            return ret, inner
        """
        assert lint(tmp_path, src, self.PATH, "FT009") == []


# ----------------------------------------------------------------------
# FT010: reachability of the drain
# ----------------------------------------------------------------------
class TestFT010Semantics:
    PATH = "src/repro/solvers/fixture.py"

    def test_wait_inside_the_loop_body_is_reachable(self, tmp_path):
        src = """
        def pump(ctx, peer, n):
            for i in range(n):
                ctx.write(0, 0, 8, peer, 0, 0)
                ret = yield from ctx.wait(0)
        """
        assert lint(tmp_path, src, self.PATH, "FT010") == []

    def test_helper_named_drain_is_reachable(self, tmp_path):
        src = """
        def pump(self, ctx, peer, n):
            for i in range(n):
                ctx.write(0, 0, 8, peer, 0, 0)
                self.drain_if_needed()
        """
        assert lint(tmp_path, src, self.PATH, "FT010") == []

    def test_post_outside_any_loop_is_ft007s_business_not_ft010s(
            self, tmp_path):
        src = """
        def once(ctx, peer):
            ctx.write(0, 0, 8, peer, 0, 0)
        """
        assert lint(tmp_path, src, self.PATH, "FT010") == []

    def test_while_true_posting_without_drain_flags(self, tmp_path):
        src = """
        def forever(ctx, peer):
            while True:
                ctx.notify(peer, 0, 5, 1)
        """
        findings = lint(tmp_path, src, self.PATH, "FT010")
        assert len(findings) == 1
        assert "queue" in findings[0].message


# ----------------------------------------------------------------------
# seeded mutant of real tree code (static half of the pairing; the
# runtime half is tests/gaspi/test_sanitizer.py)
# ----------------------------------------------------------------------
class TestSeededMutant:
    DISPLAY = "src/repro/ft/recovery.py"

    def _recovery_source(self):
        return (REPO_ROOT / "src/repro/ft/recovery.py").read_text(
            encoding="utf-8")

    def test_real_recovery_module_is_clean(self, tmp_path):
        findings = lint(tmp_path, self._recovery_source(), self.DISPLAY,
                        "FT009")
        assert findings == []

    def test_dropping_the_superseded_group_delete_is_caught(self, tmp_path):
        # re-introduce the protocol bug this rule was built to prevent:
        # perform_recovery abandoning the half-built group when a newer
        # failure notice supersedes the one it was recovering from
        source = self._recovery_source()
        assert "ctx.group_delete(group)" in source
        mutant = source.replace("ctx.group_delete(group)", "pass")
        findings = lint(tmp_path, mutant, self.DISPLAY, "FT009")
        assert any(f.rule == "FT009" for f in findings)
        assert any("group" in f.message for f in findings)
