"""Capability manifest: extraction, determinism, drift, and rule FT011."""

import json
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis.ftlint import (
    Baseline,
    all_rules,
    analyze_file,
    fingerprint,
    split_by_baseline,
)
from repro.analysis.ftlint.manifest import (
    MANIFEST_NAME,
    build_manifest,
    check_manifest,
    extract_context_api,
    render_manifest,
    write_manifest,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

CONTEXT_SRC = textwrap.dedent("""
    class GaspiContext:
        def write(self, segment_id, offset, size, dst_rank,
                  remote_segment, remote_offset, queue_id=0):
            return None

        def wait(self, queue_id=0, timeout=None):
            yield
            return None

        def _queue(self, queue_id):
            return None
""")

USER_SRC = textwrap.dedent("""
    def push(ctx, peer):
        ctx.write(0, 0, 8, peer, 0, 0)
""")


@pytest.fixture
def project(tmp_path):
    """A miniature repo with one context and one consumer."""
    gaspi = tmp_path / "src" / "repro" / "gaspi"
    ft = tmp_path / "src" / "repro" / "ft"
    gaspi.mkdir(parents=True)
    ft.mkdir(parents=True)
    (gaspi / "context.py").write_text(CONTEXT_SRC, encoding="utf-8")
    (ft / "user.py").write_text(USER_SRC, encoding="utf-8")
    return tmp_path


class TestExtraction:
    def test_api_typing(self):
        api = extract_context_api(CONTEXT_SRC)
        assert api["write"]["kind"] == "plain"
        assert api["write"]["category"] == "posting"
        assert api["wait"]["kind"] == "generator"
        assert api["wait"]["category"] == "queue"
        assert api["write"]["params"][0] == "segment_id"
        assert "_queue" not in api  # private surface excluded

    def test_build_records_usage(self, project):
        manifest = build_manifest(project)
        assert manifest["schema"] == 1
        assert list(manifest["operations"]) == ["write"]
        assert manifest["operations"]["write"]["used_by"] == ["repro.ft"]


class TestDeterminism:
    def test_rebuild_is_identical(self, project):
        assert build_manifest(project) == build_manifest(project)
        assert render_manifest(build_manifest(project)) == \
            render_manifest(build_manifest(project))

    def test_render_is_sorted_json_with_trailing_newline(self, project):
        text = render_manifest(build_manifest(project))
        assert text.endswith("\n")
        doc = json.loads(text)
        assert text == json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def test_repo_manifest_is_current(self):
        # the committed manifest regenerates to itself — the same gate
        # CI runs via `ftlint --check-manifest`
        assert check_manifest(REPO_ROOT) == []


class TestDrift:
    def test_fresh_manifest_is_current(self, project):
        write_manifest(project)
        assert check_manifest(project) == []

    def test_missing_manifest_reported(self, project):
        (drift,) = check_manifest(project)
        assert "missing" in drift

    def test_new_usage_is_drift(self, project):
        write_manifest(project)
        user = project / "src/repro/ft/user.py"
        user.write_text(USER_SRC + textwrap.dedent("""
            def flush(ctx):
                ret = yield from ctx.wait(0)
                return ret
        """), encoding="utf-8")
        drift = check_manifest(project)
        assert any("'wait' is used but missing" in line for line in drift)

    def test_dropped_usage_is_drift(self, project):
        write_manifest(project)
        (project / "src/repro/ft/user.py").write_text(
            "def idle():\n    return None\n", encoding="utf-8")
        drift = check_manifest(project)
        assert any("'write' is in the manifest but no longer used" in line
                   for line in drift)

    def test_unreadable_manifest_reported(self, project):
        (project / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        (drift,) = check_manifest(project)
        assert "unreadable" in drift


# ----------------------------------------------------------------------
# FT011, four ways (the manifest lives in an ancestor of the linted file)
# ----------------------------------------------------------------------
MINI_MANIFEST = {
    "schema": 1,
    "context": "repro.gaspi.context.GaspiContext",
    "operations": {
        "write": {"kind": "plain", "category": "posting",
                  "params": [], "used_by": ["repro.ft"]},
    },
}


def lint11(tmp_path, source, display_path):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = [r for r in all_rules() if r.id == "FT011"]
    return analyze_file(path, rules=rules, display_path=display_path)


class TestFT011FourWay:
    PATH = "src/repro/ft/fixture.py"
    VIOLATION = """
        def go(ctx, peer):
            ctx.frobnicate(peer)
    """

    @pytest.fixture(autouse=True)
    def manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps(MINI_MANIFEST), encoding="utf-8")

    def test_unmanifested_op_flags(self, tmp_path):
        findings = lint11(tmp_path, self.VIOLATION, self.PATH)
        assert [f.rule for f in findings] == ["FT011"]
        assert "frobnicate" in findings[0].message

    def test_manifested_and_attributed_is_clean(self, tmp_path):
        src = """
        def go(ctx, peer):
            ctx.write(0, 0, 8, peer, 0, 0)
        """
        assert lint11(tmp_path, src, self.PATH) == []

    def test_unattributed_package_flags(self, tmp_path):
        # 'write' is manifested, but only for repro.ft — a spmvm adoption
        # is an attribution drift
        src = """
        def go(ctx, peer):
            ctx.write(0, 0, 8, peer, 0, 0)
        """
        findings = lint11(tmp_path, src, "src/repro/spmvm/fixture.py")
        assert len(findings) == 1
        assert "not attributed" in findings[0].message

    def test_suppression_mutes(self, tmp_path):
        src = """
        def go(ctx, peer):
            ctx.frobnicate(peer)  # ftlint: disable=FT011 -- test fixture
        """
        assert lint11(tmp_path, src, self.PATH) == []

    def test_baselined_not_new(self, tmp_path):
        findings = lint11(tmp_path, self.VIOLATION, self.PATH)
        baseline = Baseline(counts=Counter(fingerprint(f) for f in findings))
        new, baselined, stale = split_by_baseline(findings, baseline)
        assert new == []
        assert baselined == findings

    def test_non_consumer_path_out_of_scope(self, tmp_path):
        assert lint11(tmp_path, self.VIOLATION,
                      "src/repro/gaspi/fixture.py") == []


def test_ft011_quiet_without_a_manifest(tmp_path):
    findings = lint11(tmp_path, """
        def go(ctx, peer):
            ctx.frobnicate(peer)
    """, "src/repro/ft/fixture.py")
    assert findings == []
