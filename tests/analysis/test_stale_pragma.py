"""Stale-suppression detection: a pragma that mutes nothing is itself a
finding, so burned-down baselines cannot leave dead ``# ftlint:
disable=`` comments behind."""

import textwrap

from repro.analysis.ftlint import all_rules, analyze_file


def lint(tmp_path, source, display_path="src/repro/ft/fixture.py",
         select=None):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = all_rules()
    if select is not None:
        rules = [r for r in rules if r.id in select]
    return analyze_file(path, rules=rules, display_path=display_path)


def pragma_findings(findings):
    return [f for f in findings if f.rule == "PRAGMA"]


class TestStalePragma:
    def test_unused_pragma_is_reported(self, tmp_path):
        findings = lint(tmp_path, """
            def api(x: int) -> int:
                return x  # ftlint: disable=FT006 -- long since fixed
        """)
        (finding,) = pragma_findings(findings)
        assert finding.rule == "PRAGMA"
        assert "mutes nothing" in finding.message
        assert "FT006" in finding.message

    def test_used_pragma_is_not_stale(self, tmp_path):
        findings = lint(tmp_path, """
            def api(x):  # ftlint: disable=FT006 -- deliberate
                return x
        """)
        assert pragma_findings(findings) == []
        assert [f for f in findings if f.rule == "FT006"] == []

    def test_docstring_pragma_text_is_not_a_pragma(self, tmp_path):
        # ftlint documentation quotes pragma examples inside docstrings;
        # only real COMMENT tokens count
        findings = lint(tmp_path, '''
            def api(x: int) -> int:
                """Examples write `# ftlint: disable=FT006 -- why` inline."""
                return x
        ''')
        assert pragma_findings(findings) == []

    def test_pragma_for_unrun_rule_is_not_judged(self, tmp_path):
        # under --select FT006 an FT001 pragma gets no verdict: the rule
        # it mutes simply did not run
        findings = lint(tmp_path, """
            def step(ctx, q):
                ret = yield from ctx.wait(q)  # ftlint: disable=FT001 -- ok
                return ret
        """, select={"FT006"})
        assert pragma_findings(findings) == []

    def test_pragma_judged_stale_when_its_rule_runs(self, tmp_path):
        findings = lint(tmp_path, """
            def step(ctx, guard, q):
                guard.assert_healthy()
                ret = yield from ctx.wait(q)  # ftlint: disable=FT001 -- ok
                return ret
        """, select={"FT001"})
        assert len(pragma_findings(findings)) == 1

    def test_disable_all_judged_only_by_full_registry_run(self, tmp_path):
        src = """
            def api(x: int) -> int:
                return x  # ftlint: disable=all -- kitchen sink
        """
        assert pragma_findings(lint(tmp_path, src, select={"FT006"})) == []
        (finding,) = pragma_findings(lint(tmp_path, src))
        assert "all" in finding.message

    def test_disable_all_that_mutes_something_is_used(self, tmp_path):
        findings = lint(tmp_path, """
            def api(x):  # ftlint: disable=all -- prototype
                return x
        """)
        assert pragma_findings(findings) == []

    def test_tree_has_no_stale_pragmas(self):
        # the satellite's delete step, kept honest: PRAGMA findings on
        # the real tree would surface in the baseline-free count of
        # test_ftlint_self.py, but assert the property directly too
        from pathlib import Path

        from repro.analysis.ftlint import analyze_paths

        repo = Path(__file__).resolve().parents[2]
        result = analyze_paths([str(repo / "src"), str(repo / "tests")])
        assert [f for f in result.findings if f.rule == "PRAGMA"] == []
