"""Per-rule fixtures for ftlint: positive, negative, suppressed, baselined.

Every rule gets the same four-way treatment via the CASES table; the
targeted classes below pin down the trickier semantics (FT001's decision
table, FT004's yield-gap analysis, multi-line suppression spans).
"""

import textwrap
from collections import Counter

import pytest

from repro.analysis.ftlint import (
    Baseline,
    all_rules,
    analyze_file,
    fingerprint,
    split_by_baseline,
)


def lint(tmp_path, source, display_path, rule_id):
    """Run one rule over ``source`` pretending it lives at ``display_path``."""
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = [r for r in all_rules() if r.id == rule_id]
    assert rules, f"unknown rule {rule_id}"
    return analyze_file(path, rules=rules, display_path=display_path)


# ----------------------------------------------------------------------
# the four-way table: (rule, path, positive, negative, suppressed)
# ----------------------------------------------------------------------
CASES = [
    (
        "FT001", "src/repro/ft/fixture.py",
        """
        def step(ctx, q):
            ret = yield from ctx.wait(q)
            return ret
        """,
        """
        def step(ctx, guard, q):
            while True:
                guard.assert_healthy()
                ret = yield from ctx.wait(q, 5.0)
                if ret is None:
                    return
        """,
        """
        def step(ctx, q):
            ret = yield from ctx.wait(q)  # ftlint: disable=FT001 -- test fixture
            return ret
        """,
    ),
    (
        "FT002", "src/repro/sim/fixture.py",
        """
        import time

        def stamp():
            return time.time()
        """,
        """
        def draw(sim):
            return sim.rng.stream("jitter").normal()
        """,
        """
        import time

        def stamp():
            return time.time()  # ftlint: disable=FT002 -- test fixture
        """,
    ),
    (
        "FT003", "src/repro/ft/fixture.py",
        """
        def note(tracer, t):
            tracer.emit(t, 0, "ping")
        """,
        """
        def note(tracer, t):
            if tracer.enabled:
                tracer.emit(t, 0, "ping")
        """,
        """
        def note(tracer, t):
            tracer.emit(t, 0, "ping")  # ftlint: disable=FT003 -- test fixture
        """,
    ),
    (
        "FT004", "src/repro/ft/fixture.py",
        """
        def post(ctx):
            ctx.write(0, 0, 8, 1, 0, 0)
        """,
        """
        def post(ctx, full):
            ret = ctx.write(0, 0, 8, 1, 0, 0)
            if ret is full:
                return False
            return True
        """,
        """
        def post(ctx):
            ctx.write(0, 0, 8, 1, 0, 0)  # ftlint: disable=FT004 -- test fixture
        """,
    ),
    (
        "FT005", "src/repro/ft/fixture.py",
        """
        def recover(risky):
            try:
                risky()
            except Exception:
                pass
        """,
        """
        def recover(risky):
            try:
                risky()
            except ValueError:
                pass
        """,
        """
        def recover(risky):
            try:
                risky()
            except Exception:  # ftlint: disable=FT005 -- test fixture
                pass
        """,
    ),
    (
        "FT006", "src/repro/fixture.py",
        """
        def api(x):
            return x
        """,
        """
        def api(x: int) -> int:
            return x
        """,
        """
        def api(x):  # ftlint: disable=FT006 -- test fixture
            return x
        """,
    ),
]

IDS = [case[0] for case in CASES]


@pytest.mark.parametrize("rule,path,positive,negative,suppressed",
                         CASES, ids=IDS)
class TestFourWay:
    def test_positive_flags(self, tmp_path, rule, path, positive,
                            negative, suppressed):
        findings = lint(tmp_path, positive, path, rule)
        assert [f.rule for f in findings] == [rule]
        assert findings[0].path == path
        assert findings[0].message

    def test_negative_clean(self, tmp_path, rule, path, positive,
                            negative, suppressed):
        assert lint(tmp_path, negative, path, rule) == []

    def test_suppression_mutes(self, tmp_path, rule, path, positive,
                               negative, suppressed):
        assert lint(tmp_path, suppressed, path, rule) == []

    def test_baselined_not_new(self, tmp_path, rule, path, positive,
                               negative, suppressed):
        findings = lint(tmp_path, positive, path, rule)
        baseline = Baseline(counts=Counter(fingerprint(f) for f in findings))
        new, baselined, stale = split_by_baseline(findings, baseline)
        assert new == []
        assert baselined == findings
        assert stale == []

    def test_out_of_scope_path_ignored(self, tmp_path, rule, path, positive,
                                       negative, suppressed):
        assert lint(tmp_path, positive, "scripts/fixture.py", rule) == []


# ----------------------------------------------------------------------
# FT001: the decision table
# ----------------------------------------------------------------------
class TestFT001Semantics:
    PATH = "src/repro/solvers/fixture.py"

    def test_finite_timeout_outside_loop_passes(self, tmp_path):
        src = """
        def step(ctx, q):
            ret = yield from ctx.wait(q, 5.0)
            return ret
        """
        assert lint(tmp_path, src, self.PATH, "FT001") == []

    def test_gaspi_block_timeout_still_flags(self, tmp_path):
        src = """
        def step(ctx, q):
            ret = yield from ctx.wait(q, GASPI_BLOCK)
            return ret
        """
        assert len(lint(tmp_path, src, self.PATH, "FT001")) == 1

    def test_while_retry_with_timeout_but_no_check_flags(self, tmp_path):
        # a timeout bounds one attempt; the loop spins past a failure
        src = """
        def step(ctx, q):
            while True:
                ret = yield from ctx.wait(q, 5.0)
                if ret is None:
                    return
        """
        findings = lint(tmp_path, src, self.PATH, "FT001")
        assert len(findings) == 1
        assert "retry loop" in findings[0].message

    def test_health_check_earlier_in_function_passes(self, tmp_path):
        src = """
        def step(ctx, guard, q):
            guard.assert_healthy()
            ret = yield from ctx.wait(q)
            return ret
        """
        assert lint(tmp_path, src, self.PATH, "FT001") == []

    def test_yielded_waitevent_flags_and_timeout_passes(self, tmp_path):
        flagged = """
        def step(done):
            ok, _ = yield WaitEvent(done)
        """
        timed = """
        def step(done):
            ok, _ = yield WaitEvent(done, 2.0)
        """
        assert len(lint(tmp_path, flagged, self.PATH, "FT001")) == 1
        assert lint(tmp_path, timed, self.PATH, "FT001") == []

    def test_plain_dict_get_not_confused_with_channel_get(self, tmp_path):
        # 'get' is blocking only as a yield-from generator, never as a
        # plain call
        src = """
        def lookup(d):
            return d.get("key", 1)
        """
        assert lint(tmp_path, src, self.PATH, "FT001") == []

    def test_detector_module_exempt(self, tmp_path):
        src = """
        def probe(ctx, rank):
            ret = yield from ctx.wait(0)
            return ret
        """
        assert lint(tmp_path, src, "src/repro/ft/detector.py", "FT001") == []

    def test_check_inside_for_loop_body_passes(self, tmp_path):
        src = """
        def fanout(ctx, guard, queues):
            for q in queues:
                guard.assert_healthy()
                ret = yield from ctx.wait(q)
        """
        assert lint(tmp_path, src, self.PATH, "FT001") == []


# ----------------------------------------------------------------------
# FT002: randomness sources
# ----------------------------------------------------------------------
class TestFT002Semantics:
    PATH = "src/repro/gaspi/fixture.py"

    def test_numpy_global_rng_flags(self, tmp_path):
        src = """
        import numpy as np

        def draw():
            return np.random.rand(3)
        """
        assert len(lint(tmp_path, src, self.PATH, "FT002")) == 1

    def test_unseeded_default_rng_flags_seeded_passes(self, tmp_path):
        unseeded = """
        import numpy as np

        def make():
            return np.random.default_rng()
        """
        seeded = """
        import numpy as np

        def make():
            return np.random.default_rng(1234)
        """
        findings = lint(tmp_path, unseeded, self.PATH, "FT002")
        assert len(findings) == 1 and "seed" in findings[0].message
        assert lint(tmp_path, seeded, self.PATH, "FT002") == []

    def test_stdlib_random_alias_flags(self, tmp_path):
        src = """
        import random as rnd

        def draw():
            return rnd.random()
        """
        assert len(lint(tmp_path, src, self.PATH, "FT002")) == 1

    def test_datetime_now_flags(self, tmp_path):
        src = """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """
        assert len(lint(tmp_path, src, self.PATH, "FT002")) == 1


# ----------------------------------------------------------------------
# FT003 / FT004 / FT005 specifics
# ----------------------------------------------------------------------
class TestFT003Semantics:
    def test_obs_package_exempt(self, tmp_path):
        src = """
        def note(tracer, t):
            tracer.emit(t, 0, "ping")
        """
        assert lint(tmp_path, src, "src/repro/obs/export.py", "FT003") == []

    def test_non_tracer_emit_ignored(self, tmp_path):
        src = """
        def pulse(beacon, t):
            beacon.emit(t)
        """
        assert lint(tmp_path, src, "src/repro/ft/fixture.py", "FT003") == []


class TestFT004Semantics:
    PATH = "src/repro/ft/fixture.py"

    def test_yield_before_check_flags(self, tmp_path):
        src = """
        def post(ctx, full):
            ret = ctx.write(0, 0, 8, 1, 0, 0)
            yield Sleep(1.0)
            return ret is full
        """
        findings = lint(tmp_path, src, self.PATH, "FT004")
        assert len(findings) == 1
        assert "stale" in findings[0].message

    def test_result_never_checked_flags(self, tmp_path):
        src = """
        def post(ctx):
            ret = ctx.write(0, 0, 8, 1, 0, 0)
            return None
        """
        findings = lint(tmp_path, src, self.PATH, "FT004")
        assert len(findings) == 1
        assert "never checked" in findings[0].message

    def test_file_write_receiver_not_flagged(self, tmp_path):
        src = """
        def save(fh, data):
            fh.write(data)
        """
        assert lint(tmp_path, src, self.PATH, "FT004") == []


class TestFT005Semantics:
    PATH = "src/repro/ft/fixture.py"

    def test_bare_except_flags(self, tmp_path):
        src = """
        def recover(risky):
            try:
                risky()
            except:
                pass
        """
        assert len(lint(tmp_path, src, self.PATH, "FT005")) == 1

    def test_broad_member_of_tuple_flags(self, tmp_path):
        src = """
        def recover(risky):
            try:
                risky()
            except (ValueError, Exception):
                pass
        """
        assert len(lint(tmp_path, src, self.PATH, "FT005")) == 1

    def test_reraise_passes(self, tmp_path):
        src = """
        def recover(risky, cleanup):
            try:
                risky()
            except Exception:
                cleanup()
                raise
        """
        assert lint(tmp_path, src, self.PATH, "FT005") == []


class TestFT006Semantics:
    PATH = "src/repro/fixture.py"

    def test_private_and_nested_functions_exempt(self, tmp_path):
        src = """
        def _helper(x):
            return x

        def outer() -> int:
            def closure(y):
                return y
            return closure(1)
        """
        assert lint(tmp_path, src, self.PATH, "FT006") == []

    def test_init_needs_params_not_return(self, tmp_path):
        ok = """
        class Thing:
            def __init__(self, x: int):
                self.x = x
        """
        bad = """
        class Thing:
            def __init__(self, x):
                self.x = x
        """
        assert lint(tmp_path, ok, self.PATH, "FT006") == []
        findings = lint(tmp_path, bad, self.PATH, "FT006")
        assert len(findings) == 1 and "x" in findings[0].message

    def test_private_class_exempt(self, tmp_path):
        src = """
        class _Internal:
            def method(self, x):
                return x
        """
        assert lint(tmp_path, src, self.PATH, "FT006") == []


# ----------------------------------------------------------------------
# suppression mechanics and baseline identity
# ----------------------------------------------------------------------
class TestSuppressionMechanics:
    PATH = "src/repro/ft/fixture.py"

    def test_pragma_on_any_line_of_multiline_statement(self, tmp_path):
        src = """
        def step(ctx, q):
            ret = yield from ctx.wait(
                q,
            )  # ftlint: disable=FT001 -- pragma on the closing line
            return ret
        """
        assert lint(tmp_path, src, self.PATH, "FT001") == []

    def test_disable_file_scope(self, tmp_path):
        src = """
        # ftlint: disable-file=FT001 -- whole fixture exempt

        def a(ctx, q):
            ret = yield from ctx.wait(q)

        def b(ctx, q):
            ret = yield from ctx.wait(q)
        """
        assert lint(tmp_path, src, self.PATH, "FT001") == []

    def test_disable_all_keyword(self, tmp_path):
        src = """
        def step(ctx, q):
            ret = yield from ctx.wait(q)  # ftlint: disable=all -- fixture
        """
        assert lint(tmp_path, src, self.PATH, "FT001") == []

    def test_unrelated_rule_pragma_does_not_mute(self, tmp_path):
        src = """
        def step(ctx, q):
            ret = yield from ctx.wait(q)  # ftlint: disable=FT006 -- wrong rule
        """
        assert len(lint(tmp_path, src, self.PATH, "FT001")) == 1


class TestBaselineIdentity:
    PATH = "src/repro/ft/fixture.py"
    SRC = """
    def step(ctx, q):
        ret = yield from ctx.wait(q)
        return ret
    """

    def test_fingerprint_survives_line_shift(self, tmp_path):
        first = lint(tmp_path, self.SRC, self.PATH, "FT001")
        shifted = lint(tmp_path, "\n\n\n# padding\n" + textwrap.dedent(self.SRC),
                       self.PATH, "FT001")
        assert len(first) == len(shifted) == 1
        assert first[0].line != shifted[0].line
        assert fingerprint(first[0]) == fingerprint(shifted[0])

    def test_stale_entries_reported(self, tmp_path):
        findings = lint(tmp_path, self.SRC, self.PATH, "FT001")
        baseline = Baseline(counts=Counter(
            [fingerprint(findings[0]), "feedfacedeadbeef"]))
        new, baselined, stale = split_by_baseline(findings, baseline)
        assert new == []
        assert len(baselined) == 1
        assert [e["fingerprint"] for e in stale] == ["feedfacedeadbeef"]

    def test_duplicate_findings_match_as_multiset(self, tmp_path):
        src = """
        def step(ctx, q):
            ret = yield from ctx.wait(q)
            ret = yield from ctx.wait(q)
            return ret
        """
        findings = lint(tmp_path, src, self.PATH, "FT001")
        assert len(findings) == 2
        # baseline holds only one occurrence: the second is new
        baseline = Baseline(counts=Counter([fingerprint(findings[0])]))
        new, baselined, _ = split_by_baseline(findings, baseline)
        assert len(baselined) == 1 and len(new) == 1
