"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import pack_checkpoint, unpack_checkpoint
from repro.ft import ActiveRankMap
from repro.sim import Simulator, Sleep, RngStreams
from repro.solvers import ql_eigenvalues
from repro.spmvm import CSRMatrix


# ----------------------------------------------------------------------
# checkpoint container
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    n_arrays=st.integers(0, 5),
    seed=st.integers(0, 2**31),
    dtype=st.sampled_from(["f8", "f4", "i8", "i4", "u1"]),
)
def test_checkpoint_roundtrip_property(n_arrays, seed, dtype):
    rng = np.random.default_rng(seed)
    payload = {}
    for i in range(n_arrays):
        shape = tuple(rng.integers(0, 6, size=rng.integers(1, 3)))
        payload[f"arr{i}"] = (rng.random(shape) * 100).astype(dtype)
    out = unpack_checkpoint(pack_checkpoint(payload))
    assert set(out) == set(payload)
    for key, arr in payload.items():
        assert out[key].dtype == arr.dtype
        assert out[key].shape == arr.shape
        assert np.array_equal(out[key], arr)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31), flip=st.integers(0, 10**6))
def test_checkpoint_corruption_always_detected(seed, flip):
    from repro.checkpoint import CheckpointCorrupt

    rng = np.random.default_rng(seed)
    blob = bytearray(pack_checkpoint({"x": rng.random(64)}))
    pos = flip % len(blob)
    bit = 1 << (flip % 8)
    blob[pos] ^= bit
    with pytest.raises(CheckpointCorrupt):
        unpack_checkpoint(bytes(blob))


# ----------------------------------------------------------------------
# rank map under arbitrary recovery sequences
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    n_workers=st.integers(1, 10),
    n_spares=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)
def test_rank_map_recovery_sequence_invariants(n_workers, n_spares, seed):
    rng = np.random.default_rng(seed)
    mapping = ActiveRankMap.initial(n_workers)
    spares = list(range(n_workers, n_workers + n_spares))
    for _ in range(n_spares):
        if not spares:
            break
        k = int(rng.integers(1, min(len(spares), n_workers) + 1))
        failed = list(rng.choice(mapping.physical_ranks(), size=k,
                                 replace=False))
        rescues, spares = spares[:k], spares[k:]
        new = mapping.apply_recovery(failed, rescues)
        # invariants: logical ranks preserved, physicals unique,
        # failed gone, rescues present
        assert sorted(new.logical_to_physical) == list(range(n_workers))
        phys = new.physical_ranks()
        assert len(set(phys)) == n_workers
        assert not set(failed) & set(phys)
        assert set(rescues) <= set(phys)
        # undo really inverts
        assert new.undo_recovery(failed, rescues).logical_to_physical == \
            mapping.logical_to_physical
        mapping = new


# ----------------------------------------------------------------------
# QL vs LAPACK on adversarial tridiagonals
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 30),
    seed=st.integers(0, 2**31),
    zero_every=st.integers(0, 5),
)
def test_ql_with_zero_couplings(n, seed, zero_every):
    """Deflated (block-diagonal) tridiagonals must still be exact."""
    import scipy.linalg as sla

    rng = np.random.default_rng(seed)
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    if zero_every:
        e[::zero_every] = 0.0  # split into independent blocks
    ours = ql_eigenvalues(d, e)
    ref = np.sort(sla.eigh_tridiagonal(d, e, eigvals_only=True))
    assert np.allclose(ours, ref, atol=1e-9)


# ----------------------------------------------------------------------
# CSR algebraic properties
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 15), seed=st.integers(0, 2**31))
def test_csr_spmv_linearity(n, seed):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.4)
    a = CSRMatrix.from_dense(dense)
    x, y = rng.standard_normal(n), rng.standard_normal(n)
    alpha = float(rng.standard_normal())
    lhs = a.spmv(alpha * x + y)
    rhs = alpha * a.spmv(x) + a.spmv(y)
    assert np.allclose(lhs, rhs, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 12), seed=st.integers(0, 2**31))
def test_csr_row_block_partition_reconstructs_spmv(n, seed):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.5)
    a = CSRMatrix.from_dense(dense)
    x = rng.standard_normal(n)
    cut = int(rng.integers(0, n + 1))
    stacked = np.concatenate([
        a.row_block(0, cut).spmv(x), a.row_block(cut, n).spmv(x)
    ])
    assert np.allclose(stacked, a.spmv(x))


# ----------------------------------------------------------------------
# DES determinism over random programs
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31), n_procs=st.integers(1, 8))
def test_simulator_determinism_property(seed, n_procs):
    def build():
        sim = Simulator()
        sim.enable_trace()
        streams = RngStreams(seed)

        def worker(i):
            rng = streams.stream(f"w{i}")
            for _ in range(10):
                yield Sleep(float(rng.random()))

        for i in range(n_procs):
            sim.spawn(worker(i), name=f"w{i}")
        sim.run()
        return sim.trace, sim.now

    t1, now1 = build()
    t2, now2 = build()
    assert t1 == t2
    assert now1 == now2
