"""Smoke tests: every example script must run to completion.

The examples double as end-to-end acceptance tests — each one asserts its
own correctness claims internally; here we just execute their mains.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name, marker", [
    ("quickstart", "OK"),
    ("failure_storm", "OK"),
    ("fd_strategies", "local flag read"),
    ("checkpoint_tuning", "measured best interval"),
    ("ulfm_vs_gaspi", "OK"),
    ("recovery_anatomy", "recovery cost report"),
])
def test_example_runs(name, marker, capsys):
    load_example(name).main()
    out = capsys.readouterr().out
    assert marker in out


def test_graphene_spectrum_example(capsys):
    load_example("graphene_spectrum").main()
    out = capsys.readouterr().out
    assert "match SciPy" in out
