"""Tests for the QL tridiagonal eigensolver (vs LAPACK reference)."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import ql_eigenvalues, lanczos_matrix_eigenvalues


def reference(diag, off):
    return np.sort(sla.eigh_tridiagonal(diag, off, eigvals_only=True))


def test_single_element():
    assert np.array_equal(ql_eigenvalues(np.array([3.5]), np.array([])), [3.5])


def test_empty():
    assert ql_eigenvalues(np.array([]), np.array([])).size == 0


def test_two_by_two_exact():
    # [[a, b], [b, c]] has eigenvalues (a+c)/2 +- sqrt(((a-c)/2)^2 + b^2)
    d = np.array([1.0, 3.0])
    e = np.array([2.0])
    expected = np.array([2.0 - np.sqrt(5.0), 2.0 + np.sqrt(5.0)])
    assert np.allclose(ql_eigenvalues(d, e), expected)


def test_diagonal_matrix_returns_sorted_diagonal():
    d = np.array([5.0, -1.0, 3.0])
    e = np.zeros(2)
    assert np.allclose(ql_eigenvalues(d, e), [-1.0, 3.0, 5.0])


def test_classic_laplacian_eigenvalues():
    n = 20
    d = np.full(n, 2.0)
    e = np.full(n - 1, -1.0)
    expected = 2.0 - 2.0 * np.cos(np.arange(1, n + 1) * np.pi / (n + 1))
    assert np.allclose(ql_eigenvalues(d, e), np.sort(expected), atol=1e-12)


def test_matches_lapack_random():
    rng = np.random.default_rng(0)
    for _ in range(20):
        n = rng.integers(2, 60)
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        assert np.allclose(ql_eigenvalues(d, e), reference(d, e),
                           atol=1e-10), f"n={n}"


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 40),
    seed=st.integers(0, 2**31),
    scale=st.floats(1e-3, 1e3),
)
def test_property_matches_lapack(n, seed, scale):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal(n) * scale
    e = rng.standard_normal(max(n - 1, 0)) * scale
    ours = ql_eigenvalues(d, e)
    ref = reference(d, e) if n > 1 else np.array([d[0]])
    assert np.allclose(ours, ref, rtol=1e-9, atol=1e-9 * scale)


def test_eigenvalue_sum_equals_trace():
    rng = np.random.default_rng(1)
    d = rng.standard_normal(30)
    e = rng.standard_normal(29)
    assert ql_eigenvalues(d, e).sum() == pytest.approx(d.sum(), rel=1e-10)


def test_offdiag_length_validation():
    with pytest.raises(ValueError):
        ql_eigenvalues(np.zeros(4), np.zeros(5))


def test_offdiag_may_include_trailing_recurrence_entry():
    # lanczos convention: beta has one trailing entry (beta_{j+1})
    d = np.array([2.0, 2.0, 2.0])
    beta = np.array([-1.0, -1.0, 0.7])  # trailing entry must be ignored
    out = lanczos_matrix_eigenvalues(d, beta)
    assert np.allclose(out, reference(d, beta[:2]))


def test_tight_cluster_resolved():
    d = np.array([1.0, 1.0 + 1e-10, 1.0 + 2e-10])
    e = np.full(2, 1e-12)
    out = ql_eigenvalues(d, e)
    assert np.allclose(out, reference(d, e), atol=1e-14)
