"""Tests for sequential and distributed Lanczos, power iteration and CG."""

import numpy as np
import pytest

from repro.checkpoint import pack_checkpoint, unpack_checkpoint
from repro.gaspi import run_gaspi
from repro.solvers import (
    DistributedLanczos,
    LanczosState,
    distributed_cg,
    distributed_power_iteration,
    lanczos_sequential,
)
from repro.solvers.lanczos import starting_vector
from repro.solvers.tridiag import lanczos_matrix_eigenvalues
from repro.spmvm import SpMVMEngine, Team, distribute_matrix
from repro.spmvm.matgen import GrapheneSheet, Laplacian2D, RandomSparse
from repro.spmvm.partition import RowPartition


class TestSequentialLanczos:
    def test_min_eigenvalue_converges_laplacian(self):
        gen = Laplacian2D(6, 6)
        alphas, betas = lanczos_sequential(gen.full(), 36)
        est = lanczos_matrix_eigenvalues(alphas, betas)
        exact = gen.exact_eigenvalues()
        assert est[0] == pytest.approx(exact[0], abs=1e-8)

    def test_min_eigenvalue_converges_graphene(self):
        gen = GrapheneSheet(4, 4, disorder=0.5, seed=3)
        full = gen.full()
        alphas, betas = lanczos_sequential(full, full.n_rows)
        est = lanczos_matrix_eigenvalues(alphas, betas)
        exact = np.linalg.eigvalsh(full.to_dense())
        assert est[0] == pytest.approx(exact[0], abs=1e-7)

    def test_breakdown_on_exact_invariant_subspace(self):
        # identity: Krylov space is 1-dimensional -> immediate breakdown
        from repro.spmvm import CSRMatrix
        eye = CSRMatrix.from_dense(np.eye(8))
        alphas, betas = lanczos_sequential(eye, 10)
        assert len(alphas) == 1
        assert alphas[0] == pytest.approx(1.0)
        assert betas[0] == pytest.approx(0.0, abs=1e-12)

    def test_starting_vector_decomposition_independent(self):
        whole = starting_vector(10)
        parts = np.concatenate([starting_vector(4, 0), starting_vector(6, 4)])
        assert np.array_equal(whole, parts)


def run_distributed_lanczos(gen, n_ranks, n_steps, **run_kwargs):
    def main(ctx):
        team = Team.trivial(ctx)
        dmat = yield from distribute_matrix(team, gen)
        engine = yield from SpMVMEngine.create(team, dmat)
        solver = DistributedLanczos(team, engine)
        state = yield from solver.run(n_steps, **run_kwargs)
        return state

    run = run_gaspi(main, n_ranks=n_ranks)
    return [run.result(r) for r in range(n_ranks)]


class TestDistributedLanczos:
    def test_matches_sequential_coefficients(self):
        gen = Laplacian2D(5, 4)
        n_steps = 12
        states = run_distributed_lanczos(gen, 4, n_steps)
        a_seq, b_seq = lanczos_sequential(gen.full(), n_steps)
        for state in states:
            assert np.allclose(state.alpha, a_seq, atol=1e-10)
            assert np.allclose(state.beta, b_seq, atol=1e-10)

    def test_min_eigenvalue_matches_dense(self):
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        states = run_distributed_lanczos(gen, 3, gen.n_rows)
        exact = np.linalg.eigvalsh(gen.full().to_dense())
        assert states[0].min_eigenvalue() == pytest.approx(exact[0], abs=1e-7)

    def test_early_stop_on_stagnation(self):
        gen = Laplacian2D(5, 5)
        states = run_distributed_lanczos(
            gen, 2, n_steps=100, eig_check_interval=5, tol=1e-12
        )
        assert states[0].step < 100  # converged before the cap

    def test_all_ranks_agree_on_coefficients(self):
        gen = RandomSparse(24, nnz_per_row=4, seed=8, diagonal=6.0)
        sym = gen.symmetrized_full()

        class FullGen:
            n_rows = sym.n_rows
            def generate_rows(self, r0, r1):
                return sym.row_block(r0, r1)

        states = run_distributed_lanczos(FullGen(), 4, 10)
        for state in states[1:]:
            assert np.allclose(state.alpha, states[0].alpha)
            assert np.allclose(state.beta, states[0].beta)


class TestLanczosState:
    def test_payload_roundtrip_through_checkpoint(self):
        state = LanczosState(
            v_prev=np.arange(4.0),
            v_cur=np.arange(4.0) + 10,
            alpha=[1.0, 2.0],
            beta=[0.5, 0.25],
        )
        restored = LanczosState.from_payload(
            unpack_checkpoint(pack_checkpoint(state.to_payload()))
        )
        assert np.array_equal(restored.v_prev, state.v_prev)
        assert np.array_equal(restored.v_cur, state.v_cur)
        assert restored.alpha == state.alpha
        assert restored.beta == state.beta
        assert restored.step == 2

    def test_resume_from_state_continues_exactly(self):
        """Restart mid-run from a payload and get identical coefficients."""
        # asymmetric grid: no eigenvalue degeneracy, so no breakdown within
        # the first 10 steps (a 4x4 grid breaks down at ~step 9)
        gen = Laplacian2D(4, 5)

        def main(ctx):
            team = Team.trivial(ctx)
            dmat = yield from distribute_matrix(team, gen)
            engine = yield from SpMVMEngine.create(team, dmat)
            solver = DistributedLanczos(team, engine)
            for _ in range(5):
                yield from solver.step()
            payload = solver.state.to_payload()
            # restore into a fresh solver (as a rescue process would)
            restored = LanczosState.from_payload(
                unpack_checkpoint(pack_checkpoint(payload))
            )
            solver2 = DistributedLanczos(team, engine, state=restored)
            for _ in range(5):
                yield from solver2.step()
            return solver2.state

        run = run_gaspi(main, n_ranks=2)
        a_seq, b_seq = lanczos_sequential(gen.full(), 10)
        assert np.allclose(run.result(0).alpha, a_seq, atol=1e-10)
        assert np.allclose(run.result(0).beta, b_seq, atol=1e-10)

    def test_min_eigenvalue_nan_before_first_step(self):
        state = LanczosState(v_prev=np.zeros(2), v_cur=np.ones(2))
        assert np.isnan(state.min_eigenvalue())


class TestPowerIteration:
    def test_dominant_eigenvalue_laplacian(self):
        gen = Laplacian2D(4, 4)

        def main(ctx):
            team = Team.trivial(ctx)
            dmat = yield from distribute_matrix(team, gen)
            engine = yield from SpMVMEngine.create(team, dmat)
            lam, steps = yield from distributed_power_iteration(
                team, engine, n_steps=500, tol=1e-12
            )
            return (lam, steps)

        run = run_gaspi(main, n_ranks=2)
        lam, steps = run.result(0)
        exact = gen.exact_eigenvalues()[-1]
        assert lam == pytest.approx(exact, abs=1e-6)
        assert steps < 500


class TestCG:
    def test_solves_spd_system(self):
        gen = Laplacian2D(5, 5)
        full = gen.full()
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(full.n_rows)
        b = full.spmv(x_true)

        def main(ctx):
            team = Team.trivial(ctx)
            dmat = yield from distribute_matrix(team, gen)
            engine = yield from SpMVMEngine.create(team, dmat)
            partition = RowPartition(gen.n_rows, team.n_workers)
            r0, r1 = partition.range_of(ctx.rank)
            x_local, res, steps = yield from distributed_cg(
                team, engine, b[r0:r1], n_steps=300, tol=1e-12
            )
            return x_local

        run = run_gaspi(main, n_ranks=3)
        x = np.concatenate([run.result(r) for r in range(3)])
        assert np.allclose(x, x_true, atol=1e-8)

    def test_zero_rhs_returns_zero(self):
        gen = Laplacian2D(3, 3)

        def main(ctx):
            team = Team.trivial(ctx)
            dmat = yield from distribute_matrix(team, gen)
            engine = yield from SpMVMEngine.create(team, dmat)
            x_local, res, steps = yield from distributed_cg(
                team, engine, np.zeros(engine.n_local)
            )
            return (float(np.abs(x_local).max()), res, steps)

        run = run_gaspi(main, n_ranks=1)
        assert run.result(0) == (0.0, 0.0, 0)
