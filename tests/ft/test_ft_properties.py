"""End-to-end property test: random failure schedules always recover.

For any failure schedule within the spare budget — random victims, random
times, process or node kills — the fault-tolerant Lanczos run must
complete with the correct minimum eigenvalue.  This is the system-level
completeness property of the paper's design.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import FaultPlan, MachineSpec, TransportParams
from repro.ft import FTConfig, run_ft_application
from repro.solvers import lanczos_sequential
from repro.solvers.ft_lanczos import FTLanczos
from repro.solvers.tridiag import lanczos_matrix_eigenvalues
from repro.spmvm.matgen import GrapheneSheet

GEN = GrapheneSheet(3, 3, disorder=1.0, seed=2)  # 18 sites
N_STEPS = 18
N_WORKERS = 3
N_SPARES = 3  # 2 idle rescues + FD


class StepTime:
    def spmv_time(self, nnz, rows):
        return 0.05

    def vector_ops_time(self, n):
        return 0.05


@pytest.fixture(scope="module")
def reference_min():
    a, b = lanczos_sequential(GEN.full(), N_STEPS)
    return float(lanczos_matrix_eigenvalues(a, b)[0])


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    schedule=st.lists(
        st.tuples(
            st.floats(0.3, 4.0),            # injection time
            st.integers(0, N_WORKERS - 1),  # victim worker
            st.booleans(),                  # node kill instead of process
        ),
        min_size=1, max_size=2,             # within the 2-rescue budget
    ),
)
def test_any_failure_schedule_recovers(schedule, reference_min):
    # distinct victims only (a rank can only die once)
    victims = {rank for _, rank, _ in schedule}
    plan = FaultPlan()
    used = set()
    for t, rank, node_kill in schedule:
        if rank in used:
            continue
        used.add(rank)
        if node_kill:
            plan.kill_node(t, rank)  # 1 rank per node
        else:
            plan.kill_process(t, rank)

    cfg = FTConfig(n_workers=N_WORKERS, n_spares=N_SPARES,
                   fd_scan_period=0.7, comm_timeout=0.4, idle_poll=0.05,
                   checkpoint_interval=5)
    program = FTLanczos(GEN, n_steps=N_STEPS, checkpoint_interval=5,
                        time_model=StepTime())
    result = run_ft_application(
        cfg, program,
        machine_spec=MachineSpec(
            n_nodes=cfg.n_ranks,
            transport_params=TransportParams(error_timeout=0.8),
        ),
        fault_plan=plan,
        until=900.0,
    )
    workers = result.worker_results()
    assert result.status == "done", f"schedule={schedule}"
    assert sorted(workers) == list(range(N_WORKERS))
    for w in workers.values():
        assert w["result"]["min_eigenvalue"] == pytest.approx(
            reference_min, abs=1e-8), f"schedule={schedule}"
    for _, rank, _ in schedule:
        assert not result.run.machine.alive(rank)
