"""Focused tests for detector scanning and recovery helpers."""

import pytest

from repro.cluster import FaultPlan, MachineSpec, TransportParams
from repro.gaspi import run_gaspi
from repro.ft.detector import scan_once
from repro.ft.recovery import restore_sources
from repro.ft.control import FailureNotice
from repro.sim import Sleep


def machine_spec(n, error_timeout=1.0):
    return MachineSpec(n_nodes=n,
                       transport_params=TransportParams(error_timeout=error_timeout))


class TestScanOnce:
    def test_all_healthy_scan_time_linear(self):
        def main(ctx):
            if ctx.rank != 0:
                yield Sleep(60.0)
                return None
            t0 = ctx.now
            failed = yield from scan_once(ctx, list(range(1, 8)))
            return (failed, ctx.now - t0)

        run = run_gaspi(main, machine_spec=machine_spec(8), until=120.0)
        failed, dt = run.result(0)
        assert failed == []
        # 7 serial pings at ~1 ms each
        assert dt == pytest.approx(7 * 0.001, rel=0.1)

    def test_threaded_scan_overlaps_error_timeouts(self):
        """k dead targets cost ~one error timeout with fd_threads >= k."""

        def main(ctx, threads):
            if ctx.rank != 0:
                yield Sleep(60.0)
                return None
            yield Sleep(1.0)  # let the kills land
            t0 = ctx.now
            failed = yield from scan_once(ctx, list(range(1, 8)), threads)
            return (sorted(failed), ctx.now - t0)

        plan = FaultPlan().kill_process(0.1, 2).kill_process(0.1, 3) \
                          .kill_process(0.1, 4)

        serial = run_gaspi(lambda ctx: main(ctx, 1),
                           machine_spec=machine_spec(8), fault_plan=plan,
                           until=120.0)
        threaded = run_gaspi(lambda ctx: main(ctx, 8),
                             machine_spec=machine_spec(8), fault_plan=plan,
                             until=120.0)
        f_serial, t_serial = serial.result(0)
        f_threaded, t_threaded = threaded.result(0)
        assert f_serial == f_threaded == [2, 3, 4]
        # serial pays 3 error timeouts, threaded ~1
        assert t_serial == pytest.approx(3 * 1.0, rel=0.15)
        assert t_threaded == pytest.approx(1.0, rel=0.15)

    def test_empty_target_list(self):
        def main(ctx):
            failed = yield from scan_once(ctx, [])
            return failed

        run = run_gaspi(main, n_ranks=1)
        assert run.result(0) == []


class TestRestoreSources:
    def make_notice(self, failed, rescues, rank_map):
        return FailureNotice(epoch=1, failed=tuple(failed),
                             rescues=tuple(rescues), status=(),
                             rank_map=rank_map)

    def test_rescue_gets_failed_node_and_old_neighbor(self):
        def main(ctx):
            if False:
                yield
            # rank 4 rescued failed rank 1; old workers were 0..3
            notice = self.make_notice([1], [4], {0: 0, 1: 4, 2: 2, 3: 3})
            return restore_sources(ctx, notice)

        run = run_gaspi(main, machine_spec=machine_spec(5))
        # node of failed rank 1, node of its old checkpoint neighbor (2)
        assert run.result(4) == [1, 2]

    def test_survivor_gets_no_extra_nodes(self):
        def main(ctx):
            if False:
                yield
            notice = self.make_notice([1], [4], {0: 0, 1: 4, 2: 2, 3: 3})
            return restore_sources(ctx, notice)

        run = run_gaspi(main, machine_spec=machine_spec(5))
        assert run.result(0) == []
        assert run.result(2) == []


class TestIdleOnlyFailures:
    def test_dead_idle_does_not_trigger_recovery(self):
        """A failed spare shrinks the pool but never interrupts workers."""
        from repro.experiments.common import run_ft_scenario
        from repro.workloads import scaled_spec

        spec = scaled_spec(workers=4, iterations=60, name="idle-death")
        # rank 4 and 5 are idles (n_spares=3 -> idles 4,5; FD 6)
        outcome = run_ft_scenario(
            "idle-death", spec, kill_times=[(30.0, 4)], n_spares=3,
        )
        assert outcome.n_recoveries == 0
        assert outcome.detection_time == 0.0
        # and the pool still rescues a later worker failure
        outcome2 = run_ft_scenario(
            "idle-death-then-worker", spec,
            kill_times=[(20.0, 4), (40.0, 1)], n_spares=3,
        )
        assert outcome2.n_recoveries == 1
        stats = outcome2.result.fd_stats
        assert stats.detections[0].rescues == (5,)  # 4 is dead, 5 steps in
