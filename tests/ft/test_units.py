"""Unit tests for FT building blocks: config, rank map, spares, control block."""

import numpy as np
import pytest

from repro.gaspi import run_gaspi
from repro.ft import ActiveRankMap, ControlBlock, FTConfig, Role, SparePool


class TestFTConfig:
    def test_role_layout(self):
        cfg = FTConfig(n_workers=4, n_spares=3)
        assert cfg.n_ranks == 7
        assert cfg.fd_rank == 6
        assert list(cfg.idle_ranks) == [4, 5]
        assert cfg.role_of(0) is Role.WORKING
        assert cfg.role_of(4) is Role.IDLE
        assert cfg.role_of(6) is Role.FD
        assert cfg.max_recoverable_failures == 3

    def test_single_spare_means_fd_only(self):
        cfg = FTConfig(n_workers=2, n_spares=1)
        assert list(cfg.idle_ranks) == []
        assert cfg.fd_rank == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FTConfig(n_workers=0)
        with pytest.raises(ValueError):
            FTConfig(n_spares=0)
        with pytest.raises(ValueError):
            FTConfig(fd_threads=0)
        with pytest.raises(ValueError):
            FTConfig().role_of(99)


class TestActiveRankMap:
    def test_initial_identity(self):
        m = ActiveRankMap.initial(3)
        assert m.physical(2) == 2
        assert m.logical_of(1) == 1
        assert m.physical_ranks() == [0, 1, 2]

    def test_apply_recovery_replaces_failed(self):
        m = ActiveRankMap.initial(4)
        m2 = m.apply_recovery(failed=[1, 3], rescues=[5, 6])
        assert m2.logical_to_physical == {0: 0, 1: 5, 2: 2, 3: 6}
        # original untouched
        assert m.logical_to_physical == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_undo_recovery_is_inverse(self):
        m = ActiveRankMap.initial(4)
        m2 = m.apply_recovery([1, 3], [5, 6])
        assert m2.undo_recovery([1, 3], [5, 6]).logical_to_physical == \
            m.logical_to_physical

    def test_chained_recoveries(self):
        m = ActiveRankMap.initial(3)
        m = m.apply_recovery([0], [3])
        m = m.apply_recovery([3], [4])  # the rescue itself fails later
        assert m.logical_to_physical == {0: 4, 1: 1, 2: 2}

    def test_not_enough_rescues_rejected(self):
        with pytest.raises(ValueError):
            ActiveRankMap.initial(2).apply_recovery([0, 1], [2])

    def test_logical_of_unknown_physical(self):
        assert ActiveRankMap.initial(2).logical_of(9) is None


class TestSparePool:
    def make_statuses(self, cfg):
        return np.array([int(cfg.role_of(r)) for r in range(cfg.n_ranks)],
                        dtype=np.int64)

    def test_assign_uses_lowest_idles_first(self):
        cfg = FTConfig(n_workers=4, n_spares=3)  # idles 4,5; fd 6
        statuses = self.make_statuses(cfg)
        pool = SparePool(statuses, cfg.fd_rank)
        a = pool.assign([2])
        assert a.rescues == [4]
        assert a.recoverable and not a.fd_joined
        assert statuses[2] == Role.FAILED
        assert statuses[4] == Role.WORKING

    def test_fd_joins_when_pool_dry(self):
        cfg = FTConfig(n_workers=3, n_spares=2)  # one idle (3), fd 4
        statuses = self.make_statuses(cfg)
        pool = SparePool(statuses, cfg.fd_rank)
        a1 = pool.assign([0])
        assert a1.rescues == [3]
        a2 = pool.assign([1])
        assert a2.rescues == [4] and a2.fd_joined
        assert statuses[4] == Role.WORKING

    def test_unrecoverable_shortfall(self):
        cfg = FTConfig(n_workers=3, n_spares=1)  # no idles, fd only
        statuses = self.make_statuses(cfg)
        pool = SparePool(statuses, cfg.fd_rank)
        a = pool.assign([0, 1])
        assert a.fd_joined and not a.recoverable
        assert a.shortfall == 1


class TestControlBlock:
    def run_single(self, fn, cfg=None):
        cfg = cfg or FTConfig(n_workers=2, n_spares=2)

        def main(ctx):
            block = ControlBlock(ctx, cfg)
            block.init_local()
            if False:
                yield
            return fn(ctx, block, cfg)

        return run_gaspi(main, n_ranks=cfg.n_ranks).result(0)

    def test_initial_state(self):
        def check(ctx, block, cfg):
            return (block.epoch, block.ack, block.done,
                    block.rank_map(), [int(s) for s in block.statuses()])

        epoch, ack, done, rank_map, statuses = self.run_single(check)
        assert epoch == 0 and not ack and not done
        assert rank_map == {0: 0, 1: 1}
        assert statuses == [0, 0, 1, 2]  # W W I FD

    def test_compose_and_read_notice(self):
        def check(ctx, block, cfg):
            statuses = block.statuses().copy()
            statuses[1] = int(Role.FAILED)
            statuses[2] = int(Role.WORKING)
            block.compose_notice(3, [1], [2], statuses, {0: 0, 1: 2})
            notice = block.check_failure(seen_epoch=0)
            return notice

        notice = self.run_single(check)
        assert notice.epoch == 3
        assert notice.failed == (1,)
        assert notice.rescues == (2,)
        assert notice.rank_map == {0: 0, 1: 2}
        assert notice.recoverable

    def test_check_failure_respects_seen_epoch(self):
        def check(ctx, block, cfg):
            statuses = block.statuses().copy()
            block.compose_notice(1, [1], [2], statuses, {0: 0, 1: 2})
            return (block.check_failure(1), block.check_failure(0) is not None)

        none_result, fresh = self.run_single(check)
        assert none_result is None
        assert fresh

    def test_unrecoverable_notice(self):
        def check(ctx, block, cfg):
            statuses = block.statuses().copy()
            block.compose_notice(1, [0, 1], [2], statuses, {0: 2, 1: 1})
            return block.read_notice().recoverable

        assert self.run_single(check) is False

    def test_too_many_failures_rejected(self):
        def check(ctx, block, cfg):
            statuses = block.statuses().copy()
            try:
                # capacity is n_ranks (= 4 here); 5 entries cannot fit
                block.compose_notice(1, [0, 1, 2, 3, 4], [], statuses, {})
            except ValueError:
                return "rejected"

        assert self.run_single(check) == "rejected"

    def test_broadcast_lands_in_remote_blocks(self):
        cfg = FTConfig(n_workers=2, n_spares=2)

        def main(ctx):
            block = ControlBlock(ctx, cfg)
            block.init_local()
            yield from ctx.barrier()
            if ctx.rank == cfg.fd_rank:
                statuses = block.statuses().copy()
                statuses[1] = int(Role.FAILED)
                statuses[2] = int(Role.WORKING)
                block.compose_notice(1, [1], [2], statuses, {0: 0, 1: 2})
                yield from block.broadcast([0, 2], timeout=5.0)
                return None
            yield from ctx.barrier(timeout=30.0)  # wait for delivery window
            notice = block.check_failure(0)
            return None if notice is None else (notice.epoch, notice.failed)

        run = run_gaspi(main, n_ranks=cfg.n_ranks)
        assert run.result(0) == (1, (1,))
        assert run.result(2) == (1, (1,))
        assert run.result(1) is None  # not targeted
