"""Tests for the fault-tolerant CG application."""

import numpy as np
import pytest

from repro.cluster import FaultPlan, MachineSpec, TransportParams
from repro.ft import FTConfig, run_ft_application
from repro.solvers.ft_cg import FTConjugateGradient
from repro.spmvm.matgen import Laplacian2D

GEN = Laplacian2D(6, 6)


class StepTime:
    def spmv_time(self, nnz, rows):
        return 0.02

    def vector_ops_time(self, n):
        return 0.02


@pytest.fixture(scope="module")
def system():
    full = GEN.full()
    rng = np.random.default_rng(3)
    x_true = rng.standard_normal(full.n_rows)
    return full, x_true, full.spmv(x_true)


def run_case(system, plan=None, n_workers=4):
    full, x_true, b = system
    cfg = FTConfig(n_workers=n_workers, n_spares=2, fd_scan_period=1.0,
                   comm_timeout=0.5, idle_poll=0.05, checkpoint_interval=15)
    program = FTConjugateGradient(GEN, b, n_steps=400, tol=1e-12,
                                  checkpoint_interval=15,
                                  time_model=StepTime())
    result = run_ft_application(
        cfg, program,
        machine_spec=MachineSpec(
            n_nodes=cfg.n_ranks,
            transport_params=TransportParams(error_timeout=1.0),
        ),
        fault_plan=plan,
        until=900.0,
    )
    assert result.status == "done"
    workers = result.worker_results()
    x = np.concatenate([
        workers[l]["result"]["x"] for l in sorted(workers)
    ])
    return result, x


def test_failure_free_solves_system(system):
    _, x_true, _ = system
    result, x = run_case(system)
    assert np.allclose(x, x_true, atol=1e-8)


def test_recovers_from_mid_solve_kill(system):
    _, x_true, _ = system
    # CG converges in ~19 steps (~0.8 s at this pacing): strike mid-solve
    plan = FaultPlan().kill_process(0.35, 1)
    result, x = run_case(system, plan)
    assert np.allclose(x, x_true, atol=1e-8)
    assert len(result.fd_stats.detections) == 1
    assert not result.run.machine.alive(1)


def test_rhs_dimension_validated():
    with pytest.raises(ValueError):
        FTConjugateGradient(GEN, np.zeros(5))
