"""End-to-end tests: fault-tolerant Lanczos surviving injected failures.

These are the behavioural claims of the paper, verified on small numeric
workloads: failures are detected, rescues adopt failed identities, the
worker group is rebuilt, state is restored from neighbor-level checkpoints
and the final eigenvalues are *identical* to the failure-free run.
"""

import pytest

from repro.cluster import FaultPlan, MachineSpec, TransportParams
from repro.ft import FTConfig, run_ft_application
from repro.solvers.ft_lanczos import FTLanczos
from repro.spmvm.matgen import GrapheneSheet


class StepTime:
    """Paces iterations so failures land mid-run (0.1 s per step)."""

    def spmv_time(self, nnz, rows):
        return 0.05

    def vector_ops_time(self, n):
        return 0.05


def make_program(n_steps=40, checkpoint_interval=10, gen=None):
    return FTLanczos(
        generator=gen or GrapheneSheet(3, 4, disorder=1.0, seed=1),
        n_steps=n_steps,
        checkpoint_interval=checkpoint_interval,
        time_model=StepTime(),
    )


def machine(cfg, error_timeout=1.0):
    return MachineSpec(
        n_nodes=cfg.n_ranks,
        transport_params=TransportParams(error_timeout=error_timeout),
    )


def run_case(cfg, program, plan=None, until=600.0):
    return run_ft_application(
        cfg, program,
        machine_spec=machine(cfg),
        fault_plan=plan,
        until=until,
    )


def reference_eigs(gen, n_steps):
    from repro.solvers import lanczos_sequential
    from repro.solvers.tridiag import lanczos_matrix_eigenvalues
    a, b = lanczos_sequential(gen.full(), n_steps)
    return lanczos_matrix_eigenvalues(a, b)


@pytest.fixture
def cfg():
    return FTConfig(n_workers=4, n_spares=3, fd_scan_period=1.0,
                    comm_timeout=0.5, idle_poll=0.05, checkpoint_interval=10)


class TestFailureFree:
    def test_completes_with_correct_eigenvalues(self, cfg):
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        result = run_case(cfg, make_program(gen=gen))
        workers = result.worker_results()
        assert result.status == "done"
        assert sorted(workers) == [0, 1, 2, 3]
        ref = reference_eigs(gen, 40)
        for w in workers.values():
            assert w["result"]["min_eigenvalue"] == pytest.approx(ref[0], abs=1e-9)

    def test_fd_reports_scans_and_no_detections(self, cfg):
        result = run_case(cfg, make_program())
        stats = result.fd_stats
        assert stats is not None
        assert stats.outcome == "stopped"
        assert len(stats.scan_times) >= 1
        assert stats.detections == []

    def test_idles_exit_cleanly(self, cfg):
        result = run_case(cfg, make_program())
        for rank in cfg.idle_ranks:
            assert result.rank_result(rank) == {"status": "idle-exit"}


class TestSingleFailure:
    def test_process_kill_recovered(self, cfg):
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        plan = FaultPlan().kill_process(2.05, 1)
        result = run_case(cfg, make_program(gen=gen), plan)
        workers = result.worker_results()
        assert result.status == "done"
        # all four logical ranks completed, logical 1 now on a rescue rank
        assert sorted(workers) == [0, 1, 2, 3]
        ref = reference_eigs(gen, 40)
        for w in workers.values():
            assert w["result"]["min_eigenvalue"] == pytest.approx(ref[0], abs=1e-9)
        stats = result.fd_stats
        assert len(stats.detections) == 1
        assert stats.detections[0].failed == (1,)
        assert stats.detections[0].rescues == (4,)

    def test_detection_latency_within_model_bounds(self, cfg):
        plan = FaultPlan().kill_process(2.05, 1)
        result = run_case(cfg, make_program(), plan)
        det = result.fd_stats.detections[0]
        # scan period 1 s + error timeout 1 s (+ slack)
        assert 0.9 <= det.t_detected - 2.05 <= 3.0
        assert det.t_acknowledged >= det.t_detected

    def test_node_kill_restores_from_neighbor(self, cfg):
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        plan = FaultPlan().kill_node(2.05, 2)  # node 2 hosts rank 2
        result = run_case(cfg, make_program(gen=gen), plan)
        workers = result.worker_results()
        assert result.status == "done"
        assert sorted(workers) == [0, 1, 2, 3]
        ref = reference_eigs(gen, 40)
        assert workers[2]["result"]["min_eigenvalue"] == pytest.approx(ref[0], abs=1e-9)

    def test_rescue_timeline_shows_restore(self, cfg):
        plan = FaultPlan().kill_process(2.05, 1)
        result = run_case(cfg, make_program(), plan)
        rescue = result.worker_results()[1]
        labels = [label for _, label, _ in rescue["timeline"]]
        assert "recovered" in labels
        assert "restore" in labels

    def test_failure_before_first_checkpoint_restarts_from_scratch(self, cfg):
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        # checkpoint every 30 steps; kill at step ~20 (t=2.05)
        program = make_program(n_steps=40, checkpoint_interval=30, gen=gen)
        plan = FaultPlan().kill_process(2.05, 0)
        result = run_case(cfg, program, plan)
        workers = result.worker_results()
        assert result.status == "done"
        ref = reference_eigs(gen, 40)
        for w in workers.values():
            assert w["result"]["min_eigenvalue"] == pytest.approx(ref[0], abs=1e-9)


class TestMultipleFailures:
    def test_two_sequential_failures(self, cfg):
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        plan = FaultPlan().kill_process(1.55, 1).kill_process(3.55, 2)
        result = run_case(cfg, make_program(gen=gen), plan)
        workers = result.worker_results()
        assert result.status == "done"
        assert sorted(workers) == [0, 1, 2, 3]
        stats = result.fd_stats
        assert len(stats.detections) == 2
        ref = reference_eigs(gen, 40)
        for w in workers.values():
            assert w["result"]["min_eigenvalue"] == pytest.approx(ref[0], abs=1e-9)

    def test_rescue_rank_failing_is_rescued_again(self, cfg):
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        # rank 1 dies; rank 4 rescues it; then rank 4 dies too
        plan = FaultPlan().kill_process(1.55, 1).kill_process(8.0, 4)
        result = run_case(cfg, make_program(n_steps=120, gen=gen), plan)
        workers = result.worker_results()
        assert result.status == "done"
        assert sorted(workers) == [0, 1, 2, 3]

    def test_simultaneous_failures_detected_in_one_scan(self):
        cfg = FTConfig(n_workers=4, n_spares=4, fd_scan_period=1.0,
                       comm_timeout=0.5, idle_poll=0.05,
                       checkpoint_interval=10, fd_threads=8)
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        plan = (FaultPlan()
                .kill_process(2.05, 0)
                .kill_process(2.05, 1)
                .kill_process(2.05, 2))
        result = run_case(cfg, make_program(gen=gen), plan)
        workers = result.worker_results()
        assert result.status == "done"
        assert sorted(workers) == [0, 1, 2, 3]
        stats = result.fd_stats
        assert len(stats.detections) == 1  # one scan caught all three
        assert stats.detections[0].failed == (0, 1, 2)

    def test_spares_exhausted_fd_joins(self):
        cfg = FTConfig(n_workers=3, n_spares=2, fd_scan_period=1.0,
                       comm_timeout=0.5, idle_poll=0.05, checkpoint_interval=10)
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        plan = FaultPlan().kill_process(1.55, 0).kill_process(5.05, 1)
        result = run_case(cfg, make_program(gen=gen), plan)
        workers = result.worker_results()
        assert result.status == "done"
        assert sorted(workers) == [0, 1, 2]
        # second detection must have used the FD itself as rescue
        stats = None
        for w in workers.values():
            if "fd_stats" in w:
                stats = w["fd_stats"]
        assert stats is not None
        assert stats.detections[-1].fd_joined

    def test_unrecoverable_when_too_many_simultaneous(self):
        cfg = FTConfig(n_workers=4, n_spares=1, fd_scan_period=1.0,
                       comm_timeout=0.5, idle_poll=0.05, checkpoint_interval=10)
        plan = FaultPlan().kill_process(2.05, 0).kill_process(2.05, 1)
        result = run_case(cfg, make_program(), plan, until=100.0)
        workers = result.worker_results()
        statuses = {w["status"] for w in workers.values()}
        assert statuses == {"unrecoverable"}


class TestNetworkAndFDFailures:
    def test_false_positive_link_failure_handled_by_kill(self, cfg):
        """A healthy-but-unreachable process is force-killed and replaced."""
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        # cut worker 1 off from the FD's node only: the FD sees it failed
        # although it is alive (accuracy violated, paper Sect. IV-A a)
        plan = FaultPlan().break_link(2.05, 1, cfg.fd_rank)
        result = run_case(cfg, make_program(gen=gen), plan)
        workers = result.worker_results()
        assert result.status == "done"
        assert sorted(workers) == [0, 1, 2, 3]
        # the false positive was really killed by the survivors
        assert not result.run.machine.alive(1)
        ref = reference_eigs(gen, 40)
        for w in workers.values():
            assert w["result"]["min_eigenvalue"] == pytest.approx(ref[0], abs=1e-9)

    def test_fd_death_without_redundancy_app_still_finishes(self, cfg):
        plan = FaultPlan().kill_process(2.05, cfg.fd_rank)
        result = run_case(cfg, make_program(), plan)
        workers = result.worker_results()
        # no failures among workers: the run completes, FT capability gone
        assert {w["status"] for w in workers.values()} == {"done"}

    def test_fd_watchdog_takes_over_and_recovers_later_failure(self):
        cfg = FTConfig(n_workers=4, n_spares=3, fd_scan_period=1.0,
                       comm_timeout=0.5, idle_poll=0.05,
                       checkpoint_interval=10, fd_redundancy=True)
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        plan = (FaultPlan()
                .kill_process(1.55, cfg.fd_rank)   # kill the FD first
                .kill_process(4.55, 1))            # then a worker
        result = run_case(cfg, make_program(n_steps=120, gen=gen), plan)
        workers = result.worker_results()
        assert result.status == "done"
        assert sorted(workers) == [0, 1, 2, 3]
        # the watchdog (rank 5) must have detected the worker failure
        stats = result.fd_stats
        assert stats is not None
        assert any(d.failed == (1,) for d in stats.detections)
