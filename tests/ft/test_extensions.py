"""Tests for extensions: second FT application, multi-rank nodes, PFS tier."""

import pytest

from repro.cluster import FaultPlan, MachineSpec, TransportParams
from repro.checkpoint.pfs import ParallelFileSystem
from repro.ft import FTConfig, run_ft_application
from repro.solvers.ft_power import FTPowerIteration
from repro.solvers.ft_lanczos import FTLanczos
from repro.spmvm.matgen import GrapheneSheet, Laplacian2D


class StepTime:
    def spmv_time(self, nnz, rows):
        return 0.05

    def vector_ops_time(self, n):
        return 0.05


def machine(cfg, procs_per_node=1):
    assert cfg.n_ranks % procs_per_node == 0
    return MachineSpec(
        n_nodes=cfg.n_ranks // procs_per_node,
        procs_per_node=procs_per_node,
        transport_params=TransportParams(error_timeout=1.0),
    )


class TestFTPowerIteration:
    GEN = Laplacian2D(5, 5)

    def reference(self):
        return self.GEN.exact_eigenvalues()[-1]

    def test_failure_free(self):
        cfg = FTConfig(n_workers=4, n_spares=2, fd_scan_period=1.0,
                       comm_timeout=0.5, checkpoint_interval=20)
        program = FTPowerIteration(self.GEN, n_steps=400, tol=1e-12,
                                   time_model=StepTime())
        result = run_ft_application(cfg, program, machine_spec=machine(cfg))
        assert result.status == "done"
        lam = result.worker_results()[0]["result"]["eigenvalue"]
        assert lam == pytest.approx(self.reference(), abs=1e-6)

    def test_recovers_from_kill(self):
        cfg = FTConfig(n_workers=4, n_spares=2, fd_scan_period=1.0,
                       comm_timeout=0.5, idle_poll=0.05,
                       checkpoint_interval=20)
        program = FTPowerIteration(self.GEN, n_steps=300, tol=0.0,
                                   time_model=StepTime())
        plan = FaultPlan().kill_process(3.05, 2)
        result = run_ft_application(cfg, program, machine_spec=machine(cfg),
                                    fault_plan=plan, until=600.0)
        workers = result.worker_results()
        assert result.status == "done"
        assert sorted(workers) == [0, 1, 2, 3]
        lam = workers[2]["result"]["eigenvalue"]
        assert lam == pytest.approx(self.reference(), abs=1e-6)
        assert len(result.fd_stats.detections) == 1


class TestMultiRankNodes:
    def test_node_crash_kills_two_ranks_two_rescues(self):
        """procs_per_node=2: a node crash is a *simultaneous* 2-rank loss."""
        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        cfg = FTConfig(n_workers=4, n_spares=4, fd_scan_period=1.0,
                       comm_timeout=0.5, idle_poll=0.05,
                       checkpoint_interval=10, fd_threads=4)
        program = FTLanczos(gen, n_steps=40, checkpoint_interval=10,
                            time_model=StepTime())
        # node 1 hosts ranks 2 and 3 (both workers)
        plan = FaultPlan().kill_node(2.05, 1)
        result = run_ft_application(
            cfg, program, machine_spec=machine(cfg, procs_per_node=2),
            fault_plan=plan, until=600.0,
        )
        workers = result.worker_results()
        assert result.status == "done"
        assert sorted(workers) == [0, 1, 2, 3]
        det = result.fd_stats.detections[0]
        assert det.failed == (2, 3)
        assert len(det.rescues) == 2

    def test_checkpoint_neighbor_on_different_node(self):
        """With 2 ranks/node the checkpoint neighbor must skip the co-host."""
        from repro.checkpoint import neighbor_of
        from repro.sim import Simulator
        from repro.cluster import Machine

        sim = Simulator()
        m = Machine(sim, MachineSpec(n_nodes=3, procs_per_node=2))
        assert neighbor_of(0, [0, 1, 2, 3, 4, 5], m.node_of) == 2
        assert neighbor_of(5, [0, 1, 2, 3, 4, 5], m.node_of) == 0


class TestPFSTier:
    def test_ft_run_with_pfs_copies(self):
        """pfs_every creates the paper's 'infrequent PFS-level copies'."""
        import dataclasses

        gen = GrapheneSheet(3, 4, disorder=1.0, seed=1)
        cfg = FTConfig(n_workers=4, n_spares=2, fd_scan_period=1.0,
                       comm_timeout=0.5, checkpoint_interval=10)
        cfg = dataclasses.replace(
            cfg, checkpoint=dataclasses.replace(cfg.checkpoint, pfs_every=2)
        )
        program = FTLanczos(gen, n_steps=40, checkpoint_interval=10,
                            time_model=StepTime())
        holder = {}

        def pfs_factory(sim):
            holder["pfs"] = ParallelFileSystem(sim)
            return holder["pfs"]

        result = run_ft_application(cfg, program, machine_spec=machine(cfg),
                                    pfs_factory=pfs_factory)
        assert result.status == "done"
        pfs = holder["pfs"]
        assert pfs.stats["writes"] > 0
        # versions 2 and 4 mirrored for every logical rank
        assert pfs.has(("state", 0, 2))
        assert pfs.has(("state", 3, 4))
