"""Property tests: the vectorized rankstate kernels equal the scalar
reference on every input — randomized failure patterns, rank counts from
16 to 512, degenerate and truncated rescue batches — and the end-to-end
scenario rows are byte-identical under either mode."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ft import rankstate
from repro.ft.rankstate import ScalarKernels, VectorizedKernels
from repro.ft.roles import Role
from repro.gaspi.groups import Group

ROLE_VALUES = [int(r) for r in Role]


@st.composite
def rank_world(draw):
    """(statuses array, a random subset of ranks, a worker rank map)."""
    n = draw(st.integers(min_value=16, max_value=512))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    statuses = rng.choice(ROLE_VALUES, size=n).astype(np.int64)
    subset_size = draw(st.integers(0, min(n, 24)))
    subset = rng.permutation(n)[:subset_size].tolist()
    n_workers = draw(st.integers(1, n))
    rank_map_arr = rng.permutation(n)[:n_workers].astype(np.int64)
    return statuses, subset, rank_map_arr


def _plain_ints(values):
    return all(type(v) is int for v in values)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rank_world())
def test_detector_state_kernels_identical(world):
    statuses, subset, _ = world
    n = len(statuses)
    self_rank = n - 1

    avoid_v = VectorizedKernels.avoid_mask(statuses)
    avoid_s = ScalarKernels.avoid_mask(statuses)
    assert np.array_equal(avoid_v, avoid_s)

    VectorizedKernels.mark_avoided(avoid_v, subset)
    ScalarKernels.mark_avoided(avoid_s, subset)
    assert np.array_equal(avoid_v, avoid_s)

    tv = VectorizedKernels.scan_targets(avoid_v, self_rank)
    ts = ScalarKernels.scan_targets(avoid_s, self_rank)
    assert tv == ts and _plain_ints(tv)

    hv = VectorizedKernels.healthy_targets(avoid_v, statuses)
    hs = ScalarKernels.healthy_targets(avoid_s, statuses)
    assert hv == hs and _plain_ints(hv)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rank_world())
def test_role_and_split_kernels_identical(world):
    statuses, subset, rank_map_arr = world
    assert (VectorizedKernels.idle_ranks(statuses)
            == ScalarKernels.idle_ranks(statuses))
    for roles in ((Role.IDLE,), (Role.IDLE, Role.FD), (Role.WORKING,)):
        rv = VectorizedKernels.ranks_with_roles(statuses, roles)
        rs = ScalarKernels.ranks_with_roles(statuses, roles)
        assert rv == rs and _plain_ints(rv)

    wv, ov = VectorizedKernels.split_failed(subset, rank_map_arr)
    ws, os_ = ScalarKernels.split_failed(subset, rank_map_arr)
    assert (wv, ov) == (ws, os_)
    assert _plain_ints(wv) and _plain_ints(ov)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rank_world(), st.integers(0, 6), st.integers(0, 6))
def test_rescue_and_map_kernels_identical(world, n_failed, n_rescues):
    statuses, _, rank_map_arr = world
    n = len(statuses)
    rng = np.random.default_rng(int(rank_map_arr.sum()) + n)
    # failed drawn from the map's values, rescues from anywhere; the two
    # lists may have different lengths (the unrecoverable-batch case:
    # pairing must truncate like dict(zip(...)))
    failed = rng.permutation(rank_map_arr)[:n_failed].tolist()
    rescues = rng.permutation(n)[:n_rescues].tolist()
    out_v = VectorizedKernels.apply_rescues(rank_map_arr, failed, rescues)
    out_s = ScalarKernels.apply_rescues(rank_map_arr, failed, rescues)
    assert np.array_equal(out_v, out_s)

    rank_map = {i: int(p) for i, p in enumerate(out_v)}
    assert (VectorizedKernels.map_members(rank_map)
            == ScalarKernels.map_members(rank_map))
    for phys in (int(out_v[0]), n + 7):  # present and absent
        assert (VectorizedKernels.logical_in_map(rank_map, phys)
                == ScalarKernels.logical_in_map(rank_map, phys))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(16, 512), st.integers(0, 2**32 - 1))
def test_group_fill_kernels_identical(n, seed):
    members = np.random.default_rng(seed).permutation(n).tolist()
    gv, gs = Group(tag=1), Group(tag=1)
    VectorizedKernels.group_fill(gv, members)
    ScalarKernels.group_fill(gs, members)
    assert gv.members == gs.members
    assert gv.identity() == gs.identity()


def test_mode_machinery():
    assert rankstate.mode() == "vectorized"
    assert rankstate.kernels() is VectorizedKernels
    with rankstate.use("scalar"):
        assert rankstate.kernels() is ScalarKernels
        assert rankstate.mode() == "scalar"
    assert rankstate.mode() == "vectorized"
    with pytest.raises(ValueError):
        rankstate.set_mode("simd")
    # a failing body must still restore the previous mode
    with pytest.raises(RuntimeError):
        with rankstate.use("scalar"):
            raise RuntimeError("boom")
    assert rankstate.mode() == "vectorized"


def test_end_to_end_scenario_byte_identical_across_modes():
    """The acceptance gate: identical experiment rows at 16 ranks."""
    from repro.experiments.common import run_ft_scenario
    from repro.workloads.spec import scaled_spec

    spec = scaled_spec(workers=12, iterations=140, name="ident-16")
    fields = ("total_runtime", "computation_time", "redo_work_time",
              "reinit_time", "detection_time", "n_recoveries")
    rows = {}
    for mode in rankstate.MODES:
        with rankstate.use(mode):
            outcome = run_ft_scenario(
                "ident", spec, kill_times=[(12.5, 2), (31.0, 7)],
                n_spares=4)
        rows[mode] = tuple(getattr(outcome, f) for f in fields)
    assert rows["vectorized"] == rows["scalar"]
    assert rows["vectorized"][-1] == 2  # both kills recovered
