"""Failure-injection matrix: kind x phase, all must recover correctly.

Crosses the failure kind (process kill, node crash, FD-side link cut)
with the phase it strikes (during setup, early compute, straight after a
checkpoint, right before completion) — every cell must finish with the
correct minimum eigenvalue.
"""

import pytest

from repro.cluster import FaultPlan, MachineSpec, TransportParams
from repro.ft import FTConfig, run_ft_application
from repro.solvers import lanczos_sequential
from repro.solvers.ft_lanczos import FTLanczos
from repro.solvers.tridiag import lanczos_matrix_eigenvalues
from repro.spmvm.matgen import GrapheneSheet

GEN = GrapheneSheet(3, 4, disorder=1.0, seed=1)
N_STEPS = 40


class StepTime:
    def spmv_time(self, nnz, rows):
        return 0.05

    def vector_ops_time(self, n):
        return 0.05


@pytest.fixture(scope="module")
def reference_min():
    a, b = lanczos_sequential(GEN.full(), N_STEPS)
    return float(lanczos_matrix_eigenvalues(a, b)[0])


def cfg():
    return FTConfig(n_workers=4, n_spares=3, fd_scan_period=1.0,
                    comm_timeout=0.5, idle_poll=0.05, checkpoint_interval=10)


def inject(kind: str, time: float, rank: int, c: FTConfig) -> FaultPlan:
    plan = FaultPlan()
    if kind == "process":
        plan.kill_process(time, rank)
    elif kind == "node":
        plan.kill_node(time, rank)  # 1 rank/node: node id == rank
    elif kind == "link":
        plan.break_link(time, rank, c.fd_rank)
    return plan


# phases: t=0.3 (during setup/distribute), t=1.05 (~step 10, right after a
# checkpoint), t=2.55 (~step 25, mid-interval), t=3.95 (~last iterations)
PHASES = {"setup": 0.3, "after-cp": 1.05, "mid": 2.55, "late": 3.95}


@pytest.mark.parametrize("kind", ["process", "node", "link"])
@pytest.mark.parametrize("phase", list(PHASES))
def test_failure_matrix(kind, phase, reference_min):
    c = cfg()
    plan = inject(kind, PHASES[phase], rank=2, c=c)
    program = FTLanczos(GEN, n_steps=N_STEPS, checkpoint_interval=10,
                        time_model=StepTime())
    result = run_ft_application(
        c, program,
        machine_spec=MachineSpec(
            n_nodes=c.n_ranks,
            transport_params=TransportParams(error_timeout=1.0),
        ),
        fault_plan=plan,
        until=600.0,
    )
    workers = result.worker_results()
    assert result.status == "done", f"{kind}/{phase}: {result.status}"
    assert sorted(workers) == [0, 1, 2, 3]
    for w in workers.values():
        assert w["result"]["min_eigenvalue"] == pytest.approx(
            reference_min, abs=1e-9
        ), f"{kind}/{phase}"
    if kind == "link" and phase == "late":
        # a link cut does not stop the victim; this late in the run the
        # application completes before the FD's notice takes effect, so
        # whether a (false-positive) recovery happened is a race — only
        # correctness of the results is required (asserted above)
        return
    # the victim really is gone and a recovery happened
    assert not result.run.machine.alive(2)
    stats = result.fd_stats
    assert stats is not None and len(stats.detections) == 1
