"""Tests for the alternative failure-detection strategies (Sect. IV-A b)."""


from repro.cluster import FaultPlan, MachineSpec
from repro.gaspi import run_gaspi
from repro.ft.strategies import (
    AllToAllStrategy,
    LocalFlagStrategy,
    NeighborRingStrategy,
)
from repro.sim import Sleep


def run_strategy(cls, n_ranks=4, n_iters=30, iteration_time=0.5,
                 period=2.0, plan=None, until=120.0):
    results = {}

    def main(ctx):
        strategy = cls(ctx, list(range(n_ranks)), period)
        detections = []
        for _ in range(n_iters):
            yield Sleep(iteration_time)
            fresh = yield from strategy.maybe_check()
            if fresh:
                detections.append((ctx.now, tuple(sorted(fresh))))
        return (strategy.stats, detections)

    run = run_gaspi(main, machine_spec=MachineSpec(n_nodes=n_ranks),
                    fault_plan=plan, until=until)
    return {r: run.result(r) for r in range(n_ranks) if run.result(r)}


class TestLocalFlag:
    def test_no_pings_no_time(self):
        out = run_strategy(LocalFlagStrategy)
        for stats, detections in out.values():
            assert stats.pings_sent == 0
            assert stats.time_spent == 0.0
            assert detections == []

    def test_checks_happen_at_period(self):
        out = run_strategy(LocalFlagStrategy, n_iters=20, iteration_time=1.0,
                           period=5.0)
        stats, _ = out[0]
        assert 3 <= stats.checks <= 5


class TestAllToAll:
    def test_ping_count_quadratic(self):
        out = run_strategy(AllToAllStrategy, n_ranks=6, n_iters=10,
                           iteration_time=1.0, period=3.0)
        total = sum(s.pings_sent for s, _ in out.values())
        checks = sum(s.checks for s, _ in out.values())
        assert total == checks * 5  # every check pings all 5 peers

    def test_detects_failure_on_every_survivor(self):
        plan = FaultPlan().kill_process(3.0, 2)
        out = run_strategy(AllToAllStrategy, n_ranks=4, n_iters=40,
                           iteration_time=0.5, period=2.0, plan=plan)
        for rank, (stats, detections) in out.items():
            assert detections, f"rank {rank} missed the failure"
            assert detections[0][1] == (2,)

    def test_failure_free_overhead_positive(self):
        out = run_strategy(AllToAllStrategy, n_ranks=8)
        stats, _ = out[0]
        assert stats.time_spent > 0


class TestNeighborRing:
    def test_only_successor_pinged_when_healthy(self):
        out = run_strategy(NeighborRingStrategy, n_ranks=6, n_iters=10,
                           iteration_time=1.0, period=3.0)
        for stats, _ in out.values():
            assert stats.pings_sent == stats.checks  # one ping per check

    def test_escalates_to_global_scan_on_hit(self):
        # rank 1's successor (2) dies; rank 1 escalates and finds it
        plan = FaultPlan().kill_process(3.0, 2)
        out = run_strategy(NeighborRingStrategy, n_ranks=5, n_iters=40,
                           iteration_time=0.5, period=2.0, plan=plan)
        stats1, detections1 = out[1]
        assert detections1 and detections1[0][1] == (2,)
        # the escalation pinged more than just the successor that round
        assert stats1.pings_sent > stats1.checks

    def test_non_predecessor_does_not_detect(self):
        # only the ring predecessor notices; others stay blind (the
        # consensus problem the paper highlights)
        plan = FaultPlan().kill_process(3.0, 2)
        out = run_strategy(NeighborRingStrategy, n_ranks=5, n_iters=40,
                           iteration_time=0.5, period=2.0, plan=plan)
        _, detections4 = out[4]
        assert detections4 == []

    def test_two_rank_ring(self):
        out = run_strategy(NeighborRingStrategy, n_ranks=2, n_iters=5,
                           iteration_time=1.0, period=2.0)
        stats, _ = out[0]
        assert stats.pings_sent >= 1
