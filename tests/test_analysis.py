"""Tests for the timeline/recovery-report analysis tools."""

import pytest

from repro.analysis import (
    collect_timeline,
    recovery_report,
    render_timeline,
)
from repro.analysis.timeline import recovery_epochs
from repro.cluster import FaultPlan
from repro.experiments.common import ft_config_for, machine_for
from repro.ft.app import run_ft_application
from repro.workloads import ModelLanczosProgram, scaled_spec


@pytest.fixture(scope="module")
def faulty_run():
    spec = scaled_spec(workers=4, iterations=80, name="analysis")
    cfg = ft_config_for(spec, n_spares=2)
    plan = FaultPlan().kill_process(30.0, 1)
    return run_ft_application(
        cfg, ModelLanczosProgram(spec), machine_spec=machine_for(cfg),
        fault_plan=plan, until=600.0,
    ), spec


@pytest.fixture(scope="module")
def clean_run():
    spec = scaled_spec(workers=4, iterations=40, name="analysis-clean")
    cfg = ft_config_for(spec, n_spares=2)
    return run_ft_application(
        cfg, ModelLanczosProgram(spec), machine_spec=machine_for(cfg),
        until=300.0,
    )


class TestCollectTimeline:
    def test_events_chronological_and_complete(self, faulty_run):
        result, _ = faulty_run
        events = collect_timeline(result)
        times = [e.t for e in events]
        assert times == sorted(times)
        labels = {e.label for e in events}
        assert {"KillProcess", "detected", "acknowledged", "failure-ack",
                "recovered", "restored", "done"} <= labels

    def test_checkpoints_excluded_by_default(self, faulty_run):
        result, _ = faulty_run
        default = collect_timeline(result)
        full = collect_timeline(result, include_checkpoints=True)
        assert not any(e.label == "checkpoint" for e in default)
        assert any(e.label == "checkpoint" for e in full)
        assert len(full) > len(default)

    def test_sources_identify_origin(self, faulty_run):
        result, _ = faulty_run
        events = collect_timeline(result)
        sources = {e.source for e in events}
        assert "fault" in sources
        assert "fd" in sources
        assert any(s.startswith("logical-") for s in sources)

    def test_render_contains_rows(self, faulty_run):
        result, _ = faulty_run
        text = render_timeline(collect_timeline(result))
        assert "KillProcess" in text
        assert "acknowledged" in text


class TestRecoveryReport:
    def test_epoch_breakdown(self, faulty_run):
        result, _ = faulty_run
        epochs = recovery_epochs(result)
        assert len(epochs) == 1
        e = epochs[0]
        assert e.failed == (1,)
        assert e.t_inject == 30.0
        assert e.t_inject < e.t_detected <= e.t_acknowledged < e.t_restored
        assert 0 < e.detection_latency < 8
        assert 0 < e.reinit_latency < 5

    def test_report_text(self, faulty_run):
        result, _ = faulty_run
        report = recovery_report(result)
        assert "epoch 1" in report
        assert "injected" in report
        assert "restored" in report

    def test_failure_free_report(self, clean_run):
        assert recovery_report(clean_run) == "failure-free run: no recoveries"
        assert recovery_epochs(clean_run) == []
