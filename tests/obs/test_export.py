"""JSONL round-trip and chrome://tracing export structure."""

import json

from repro.obs.export import (
    chrome_trace,
    event_to_record,
    events_from_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry, registry_from_events
from repro.obs.tracer import TraceEvent


def ev(t, rank, etype, dur=0.0, **fields):
    return TraceEvent(t, rank, etype, dur, fields)


TRACES = [
    ("scenario-a", [
        ev(1.0, 0, "ckpt_write", dur=0.5, version=1, bytes=1000),
        ev(2.0, 1, "detection", epoch=1, failed=[1], rescues=[3]),
    ]),
    ("scenario-b", [
        ev(3.0, 2, "solver_iter", dur=0.4, step=7),
    ]),
]


def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    assert write_jsonl(TRACES, path) == 3
    back = events_from_jsonl(path)
    assert [(task, e) for task, e in back] == [
        ("scenario-a", TRACES[0][1][0]),
        ("scenario-a", TRACES[0][1][1]),
        ("scenario-b", TRACES[1][1][0]),
    ]


def test_jsonl_lines_are_flat_json(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(TRACES, path)
    with open(path) as fh:
        first = json.loads(fh.readline())
    assert first == {"t": 1.0, "rank": 0, "etype": "ckpt_write", "dur": 0.5,
                     "task": "scenario-a",
                     "fields": {"version": 1, "bytes": 1000}}


def test_event_to_record_omits_empty():
    rec = event_to_record(ev(1.0, 0, "ping"))
    assert "task" not in rec and "fields" not in rec


def test_chrome_trace_structure():
    doc = chrome_trace(TRACES)
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    # one named process per task
    assert [m["args"]["name"] for m in meta] == ["scenario-a", "scenario-b"]
    assert {m["pid"] for m in meta} == {0, 1}
    # spans start at (t - dur) microseconds
    ckpt = next(s for s in spans if s["name"] == "ckpt_write")
    assert ckpt["ts"] == (1.0 - 0.5) * 1e6
    assert ckpt["dur"] == 0.5 * 1e6
    assert ckpt["pid"] == 0 and ckpt["tid"] == 0
    # zero-duration events are instants, attributed to their rank
    det = next(i for i in instants if i["name"] == "detection")
    assert det["tid"] == 1 and det["args"]["failed"] == [1]
    # the solver event of the second task lives in pid 1
    solver = next(s for s in spans if s["name"] == "solver_iter")
    assert solver["pid"] == 1 and solver["tid"] == 2


def test_write_chrome_trace_is_loadable_json(tmp_path):
    path = str(tmp_path / "chrome.json")
    n = write_chrome_trace(TRACES, path)
    with open(path) as fh:
        doc = json.load(fh)
    assert len(doc["traceEvents"]) == n


# ----------------------------------------------------------------------
# metrics aggregation over the same event shapes
# ----------------------------------------------------------------------
def test_registry_from_events_counts_and_histograms():
    events = TRACES[0][1] + TRACES[1][1]
    reg = registry_from_events(events)
    snap = reg.snapshot()
    assert snap["events.ckpt_write"]["value"] == 1
    assert snap["events.detection"]["value"] == 1
    assert snap["ckpt.write_s"]["count"] == 1
    assert snap["ckpt.write_s"]["mean"] == 0.5
    assert snap["ckpt.bytes_written"]["value"] == 1000


def test_registry_type_conflicts_rejected():
    import pytest

    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_histogram_streaming_stats():
    reg = MetricsRegistry()
    h = reg.histogram("h")
    for v in (1.0, 3.0, 2.0):
        h.observe(v)
    assert h.count == 3 and h.min == 1.0 and h.max == 3.0
    assert h.mean == 2.0
