"""Serial-vs-parallel trace-merge determinism of the traced sweep."""

from repro.experiments.sweep import SweepTask, run_traced_sweep
from repro.obs.tracer import NULL_TRACER, active_tracer


def _emitting_task(scenario_id: int, n_events: int):
    """Module-level (picklable) worker: emits into the installed tracer."""
    tracer = active_tracer()
    assert tracer is not NULL_TRACER, "traced sweep must install a tracer"
    for i in range(n_events):
        tracer.emit(float(i), scenario_id, "solver_iter", dur=0.5,
                    step=i, scenario=scenario_id)
    return scenario_id * 100 + n_events


def _tasks():
    return [
        SweepTask("tsweep", f"s{i}", _emitting_task, (i, 3 + i), k=i)
        for i in range(4)
    ]


def test_traced_sweep_serial_collects_results_and_traces():
    results, traces = run_traced_sweep(_tasks(), jobs=1)
    assert results == [3, 104, 205, 306]
    assert [tr.label for tr in traces] == ["s0", "s1#1", "s2#2", "s3#3"]
    assert [len(tr.events) for tr in traces] == [3, 4, 5, 6]
    assert all(tr.dropped == 0 for tr in traces)
    # events carry their emitting scenario — no cross-task bleed
    for i, tr in enumerate(traces):
        assert {e.fields["scenario"] for e in tr.events} == {i}


def test_traced_sweep_serial_vs_parallel_identical():
    serial = run_traced_sweep(_tasks(), jobs=1)
    parallel = run_traced_sweep(_tasks(), jobs=4)
    assert repr(serial) == repr(parallel)
    assert serial == parallel


def test_traced_sweep_restores_null_tracer():
    assert active_tracer() is NULL_TRACER
    run_traced_sweep(_tasks(), jobs=1)
    assert active_tracer() is NULL_TRACER


def test_traced_sweep_ring_capacity_and_dropped():
    results, traces = run_traced_sweep(
        [SweepTask("tsweep", "big", _emitting_task, (0, 10))],
        jobs=1, capacity=4)
    assert traces[0].dropped == 6
    assert len(traces[0].events) == 4


def test_real_scenario_trace_identical_serial_vs_parallel():
    """The acceptance-criteria property on a real failure scenario: the
    merged trace is byte-identical however the sweep was executed."""
    from repro.experiments.figure4 import default_spec, kill_schedule

    spec = default_spec("tiny")
    from repro.experiments.common import run_ft_scenario

    def tasks():
        return [
            SweepTask("tsweep-real", f"{k} fail", _real_scenario,
                      (spec, k), k=k)
            for k in (1, 2)
        ]

    serial_res, serial_tr = run_traced_sweep(tasks(), jobs=1)
    par_res, par_tr = run_traced_sweep(tasks(), jobs=2)
    assert repr(serial_res) == repr(par_res)
    assert serial_tr == par_tr
    # and the traces are non-trivial: each task saw its failures
    from repro.obs.timeline import build_timelines
    for k, tr in zip((1, 2), serial_tr):
        recs = build_timelines(tr.events)
        assert len(recs) == k
        assert all(r.complete and r.nonnegative for r in recs)


def _real_scenario(spec, k):
    from repro.experiments.common import run_ft_scenario
    from repro.experiments.figure4 import kill_schedule

    outcome = run_ft_scenario(f"{k} fail", spec,
                              kill_times=kill_schedule(spec, k))
    outcome.result = None
    return outcome.total_runtime
