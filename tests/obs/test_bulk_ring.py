"""Tracer bulk-ring tests: opt-in segregation of high-volume event types,
exact per-type drop accounting, emission-order merge, and the sweep /
validation plumbing that tolerates (but reports) bulk evictions."""

import pickle

import pytest

from repro.experiments.sweep import SweepTask, SweepTrace, run_traced_sweep
from repro.experiments.trace import bulk_drop_notes, validate_trace
from repro.obs.tracer import BULK_ETYPES, Tracer, install, deactivate


def test_single_ring_semantics_unchanged_by_default():
    tr = Tracer(capacity=8)
    assert tr.bulk_capacity is None
    for i in range(20):
        tr.emit(float(i), 0, "solver_iter", step=i)
    assert len(tr) == 8
    assert tr.total_emitted == 20
    assert tr.dropped == 12
    assert tr.dropped_bulk == 0
    assert tr.dropped_by_type == {"solver_iter": 12}
    assert [e.fields["step"] for e in tr.events()] == list(range(12, 20))


def test_bulk_ring_protects_lifecycle_events():
    tr = Tracer(capacity=4, bulk_capacity=8)
    # a ping flood that would evict everything from a 4-slot single ring
    for i in range(100):
        tr.emit(float(i), 0, "ping", target=i)
    tr.emit(100.0, 0, "detection", epoch=1)
    tr.emit(101.0, 0, "group_rebuild", epoch=1)
    for i in range(100):
        tr.emit(102.0 + i, 0, "ping", target=100 + i)
    # lifecycle events survive no matter how many pings follow
    etypes = [e.etype for e in tr.events()]
    assert "detection" in etypes and "group_rebuild" in etypes
    assert tr.dropped_bulk == 192
    assert tr.dropped == 192  # no lifecycle drops at all
    assert tr.dropped_by_type == {"ping": 192}
    assert len(tr) == 2 + 8


def test_events_merge_in_emission_order():
    tr = Tracer(capacity=8, bulk_capacity=4)
    tr.emit(0.0, 0, "detection", epoch=0)
    tr.emit(1.0, 0, "ping", target=1)
    tr.emit(2.0, 0, "group_rebuild", epoch=0)
    tr.emit(3.0, 0, "solver_iter", step=0)
    tr.emit(4.0, 0, "rollback", epoch=0)
    assert [e.etype for e in tr.events()] == [
        "detection", "ping", "group_rebuild", "solver_iter", "rollback"]
    assert tr.dropped == 0


def test_exact_boundary_and_per_type_counts():
    tr = Tracer(capacity=4, bulk_capacity=2)
    for i in range(4):
        tr.emit(float(i), 0, "detection", epoch=i)
    assert tr.dropped == 0
    tr.emit(4.0, 0, "restore", epoch=4)  # 5th lifecycle into cap 4
    assert tr.dropped == 1 and tr.dropped_by_type == {"detection": 1}
    for i in range(3):  # 3 bulk events into cap 2
        tr.emit(5.0 + i, 0, "solver_iter", step=i)
    assert tr.dropped_bulk == 1
    assert tr.dropped == 2
    assert tr.dropped_by_type == {"detection": 1, "solver_iter": 1}


def test_clear_resets_both_rings():
    tr = Tracer(capacity=2, bulk_capacity=2)
    for i in range(5):
        tr.emit(float(i), 0, "ping", target=i)
        tr.emit(float(i), 0, "detection", epoch=i)
    tr.clear()
    assert (len(tr), tr.total_emitted, tr.dropped, tr.dropped_bulk) \
        == (0, 0, 0, 0)
    assert tr.dropped_by_type == {}
    assert tr.events() == []


def test_bulk_etypes_are_the_high_volume_ones():
    assert BULK_ETYPES == {"ping", "solver_iter"}


def test_install_and_pickle_with_bulk():
    tr = install(capacity=16, bulk_capacity=4)
    try:
        assert tr.capacity == 16 and tr.bulk_capacity == 4
        tr.emit(0.0, 1, "ping", target=2)
        events = pickle.loads(pickle.dumps(tr.events()))
        assert events[0].etype == "ping"
    finally:
        deactivate()


def test_invalid_bulk_capacity_rejected():
    with pytest.raises(ValueError):
        Tracer(capacity=4, bulk_capacity=0)


# ----------------------------------------------------------------------
# sweep / validation plumbing
# ----------------------------------------------------------------------
def _noisy_task(n_pings):
    from repro.obs.tracer import active_tracer

    tr = active_tracer()
    for i in range(n_pings):
        tr.emit(float(i), 0, "ping", target=i)
    return n_pings


def test_traced_sweep_ships_bulk_drop_counts():
    tasks = [SweepTask("bulk", "noisy", _noisy_task, (50,))]
    results, traces = run_traced_sweep(tasks, jobs=1, capacity=64,
                                       bulk_capacity=8)
    assert results == [50]
    assert traces[0].dropped == 42
    assert traces[0].dropped_bulk == 42
    assert len(traces[0].events) == 8


def test_validation_tolerates_bulk_drops_but_not_lifecycle_drops():
    bulk_only = SweepTrace("e", "s", 0, events=(), dropped=7, dropped_bulk=7)
    assert validate_trace(bulk_only) == []
    notes = bulk_drop_notes([bulk_only])
    assert len(notes) == 1 and "7" in notes[0]

    lifecycle = SweepTrace("e", "s", 0, events=(), dropped=7, dropped_bulk=4)
    errors = validate_trace(lifecycle)
    assert len(errors) == 1 and "3 lifecycle" in errors[0]
