"""Failure-timeline reconstruction: synthetic chains + a scripted run."""

import pytest

from repro.obs.timeline import (
    FailureRecord,
    build_timelines,
    injected_ranks,
    phase_stats,
    timeline_report,
)
from repro.obs.tracer import TraceEvent


def ev(t, rank, etype, dur=0.0, **fields):
    return TraceEvent(t, rank, etype, dur, fields)


# ----------------------------------------------------------------------
# synthetic chains with known arithmetic
# ----------------------------------------------------------------------
def _one_failure_events():
    return [
        ev(10.0, 1, "failure_injected", kind="KillProcess"),
        ev(16.0, 9, "detection", epoch=1, failed=[1], rescues=[7]),
        ev(16.5, 9, "broadcast_flags", dur=0.5, epoch=1, n_targets=8),
        ev(18.0, 0, "group_rebuild", dur=1.2, epoch=1, size=4),
        ev(18.2, 7, "group_rebuild", dur=1.4, epoch=1, size=4),
        ev(18.2, 7, "spare_promote", dur=2.0, epoch=1, logical=1),
        ev(19.0, 7, "restore", dur=0.8, epoch=1, version=3),
        ev(19.0, 7, "rollback", epoch=1, version=3),
    ]


def test_single_failure_chain_reconstruction():
    (rec,) = build_timelines(_one_failure_events(), scenario="synthetic")
    assert rec.epoch == 1
    assert rec.failed == (1,) and rec.rescues == (7,)
    assert rec.t_injected == 10.0 and rec.t_detected == 16.0
    assert rec.detection_latency_s == pytest.approx(6.0)
    assert rec.broadcast_s == pytest.approx(0.5)
    # rebuild ends when the *last* member committed
    assert rec.t_rebuilt == 18.2
    assert rec.group_rebuild_s == pytest.approx(1.7)
    assert rec.spare_promote_s == pytest.approx(2.0)
    assert rec.restore_s == pytest.approx(0.8)
    assert rec.rollback_s == pytest.approx(0.0)
    assert rec.total_recovery_s == pytest.approx(9.0)
    assert rec.restore_version == 3
    assert rec.complete and rec.nonnegative


def test_incomplete_chain_flagged():
    events = _one_failure_events()[:2]  # inject + detection only
    (rec,) = build_timelines(events)
    assert not rec.complete
    assert rec.group_rebuild_s is None
    assert "incomplete chain" in timeline_report([rec])


def test_epoch_correlation_of_overlapping_failures():
    events = _one_failure_events() + [
        ev(30.0, 2, "failure_injected", kind="KillProcess"),
        ev(35.0, 9, "detection", epoch=2, failed=[2], rescues=[8]),
        ev(37.0, 8, "group_rebuild", dur=1.0, epoch=2, size=4),
        ev(37.0, 8, "spare_promote", dur=1.5, epoch=2, logical=2),
        ev(37.5, 8, "restore", dur=0.5, epoch=2, version=4),
    ]
    recs = build_timelines(events)
    assert [r.epoch for r in recs] == [1, 2]
    assert recs[1].t_injected == 30.0
    assert recs[1].detection_latency_s == pytest.approx(5.0)
    assert recs[1].complete


def test_manager_restore_without_epoch_ignored_by_chains():
    events = _one_failure_events() + [
        ev(2.0, 3, "restore", dur=0.1, version=0, source="local"),
    ]
    (rec,) = build_timelines(events)
    assert rec.t_restored == 19.0  # the out-of-recovery read did not attach


def test_injected_ranks_and_phase_stats():
    events = _one_failure_events()
    assert injected_ranks(events) == [1]
    stats = phase_stats(build_timelines(events))
    assert stats["detection_latency_s"]["count"] == 1
    assert stats["detection_latency_s"]["mean"] == pytest.approx(6.0)
    assert stats["total_recovery_s"]["max"] == pytest.approx(9.0)


def test_latest_injection_before_detection_wins():
    """A rank killed, recovered, then killed again: each detection pairs
    with the newest injection at or before it."""
    events = [
        ev(10.0, 1, "failure_injected"),
        ev(15.0, 9, "detection", epoch=1, failed=[1], rescues=[7]),
        ev(16.0, 7, "group_rebuild", dur=1.0, epoch=1),
        ev(16.0, 7, "spare_promote", dur=1.0, epoch=1),
        ev(16.5, 7, "restore", dur=0.5, epoch=1),
        ev(40.0, 1, "failure_injected"),
        ev(45.0, 9, "detection", epoch=2, failed=[1], rescues=[8]),
        ev(46.0, 8, "group_rebuild", dur=1.0, epoch=2),
        ev(46.0, 8, "spare_promote", dur=1.0, epoch=2),
        ev(46.5, 8, "restore", dur=0.5, epoch=2),
    ]
    recs = build_timelines(events)
    assert recs[0].t_injected == 10.0
    assert recs[1].t_injected == 40.0


# ----------------------------------------------------------------------
# a scripted failure scenario through the real stack
# ----------------------------------------------------------------------
def test_timeline_from_scripted_failure_scenario():
    """One kill through the full FT stack must reconstruct into exactly
    one complete detection→rebuild→promote→restore chain."""
    from repro.experiments.common import run_ft_scenario
    from repro.obs import tracer as obs_tracer
    from repro.workloads.spec import scaled_spec

    spec = scaled_spec(workers=8, iterations=60, name="scripted")
    tr = obs_tracer.install()
    try:
        run_ft_scenario("scripted", spec, kill_times=[(40.0, 1)], n_spares=2)
    finally:
        obs_tracer.deactivate()
    events = tr.events()
    assert tr.dropped == 0
    assert injected_ranks(events) == [1]

    recs = build_timelines(events, scenario="scripted")
    assert len(recs) == 1
    rec = recs[0]
    assert rec.failed == (1,)
    assert rec.complete and rec.nonnegative
    assert rec.t_injected == pytest.approx(40.0)
    # detection latency ~ scan wait + error timeout: positive, bounded
    assert 0.0 < rec.detection_latency_s < 15.0
    assert rec.group_rebuild_s > 0.0
    assert rec.spare_promote_s > 0.0
    assert rec.restore_s > 0.0
    assert rec.total_recovery_s == pytest.approx(
        rec.t_rollback - rec.t_injected)
