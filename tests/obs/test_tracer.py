"""Tracer ring-buffer semantics and the disabled-path guarantees."""

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    active_tracer,
    deactivate,
    install,
)


# ----------------------------------------------------------------------
# ring buffer
# ----------------------------------------------------------------------
def test_emit_and_events_in_order():
    tr = Tracer(capacity=16)
    for i in range(5):
        tr.emit(float(i), i, "ping", target=i)
    events = tr.events()
    assert len(events) == 5 == len(tr)
    assert [e.t for e in events] == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert events[0] == TraceEvent(0.0, 0, "ping", 0.0, {"target": 0})
    assert tr.dropped == 0
    assert tr.total_emitted == 5


def test_ring_wraparound_keeps_newest_in_order():
    tr = Tracer(capacity=8)
    for i in range(20):
        tr.emit(float(i), 0, "solver_iter", step=i)
    assert len(tr) == 8
    assert tr.total_emitted == 20
    assert tr.dropped == 12
    # the retained window is the newest 8 events, oldest first
    assert [e.fields["step"] for e in tr.events()] == list(range(12, 20))


def test_wraparound_boundary_exact_capacity():
    tr = Tracer(capacity=4)
    for i in range(4):
        tr.emit(float(i), 0, "ping")
    assert tr.dropped == 0
    assert [e.t for e in tr.events()] == [0.0, 1.0, 2.0, 3.0]
    tr.emit(4.0, 0, "ping")  # first overwrite
    assert tr.dropped == 1
    assert [e.t for e in tr.events()] == [1.0, 2.0, 3.0, 4.0]


def test_clear_resets_but_keeps_capacity():
    tr = Tracer(capacity=4)
    for i in range(9):
        tr.emit(float(i), 0, "ping")
    tr.clear()
    assert len(tr) == 0 and tr.dropped == 0 and tr.events() == []
    tr.emit(1.0, 0, "ping")
    assert len(tr) == 1 and tr.capacity == 4


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_events_are_picklable():
    import pickle

    tr = Tracer(capacity=4)
    tr.emit(1.0, 2, "detection", epoch=1, failed=[1], rescues=[8])
    restored = pickle.loads(pickle.dumps(tr.events()))
    assert restored == tr.events()


# ----------------------------------------------------------------------
# the disabled tracer
# ----------------------------------------------------------------------
def test_null_tracer_is_a_zero_event_sink():
    null = NullTracer()
    assert null.enabled is False
    null.emit(1.0, 0, "ping", target=3)
    assert len(null) == 0
    assert null.events() == []
    assert list(null) == []
    assert null.dropped == 0


def test_enabled_flag_distinguishes_real_from_null():
    assert Tracer(capacity=1).enabled is True
    assert NULL_TRACER.enabled is False


def test_install_deactivate_cycle():
    assert active_tracer() is NULL_TRACER
    tr = install(capacity=32)
    try:
        assert active_tracer() is tr
        assert tr.capacity == 32
    finally:
        previous = deactivate()
    assert previous is tr
    assert active_tracer() is NULL_TRACER


def test_install_existing_tracer():
    mine = Tracer(capacity=8)
    try:
        assert install(mine) is mine
        assert active_tracer() is mine
    finally:
        deactivate()


# ----------------------------------------------------------------------
# the zero-event guarantee on real simulations
# ----------------------------------------------------------------------
def test_untraced_ft_run_emits_nothing():
    """Without install(), a full failure/recovery run touches only the
    shared NULL_TRACER — the hot path stays allocation-free."""
    from repro.experiments.common import run_ft_scenario
    from repro.workloads.spec import scaled_spec

    assert active_tracer() is NULL_TRACER
    spec = scaled_spec(workers=8, iterations=40, name="untraced")
    outcome = run_ft_scenario("untraced", spec, kill_times=[(30.0, 1)],
                              n_spares=2)
    assert outcome.n_recoveries == 1
    assert active_tracer() is NULL_TRACER
    assert len(NULL_TRACER) == 0 and NULL_TRACER.events() == []
