"""Tests for the mini-ULFM layer (revoke / shrink / agree semantics)."""

import numpy as np
import pytest

from repro.cluster import FaultPlan, MachineSpec, TransportParams
from repro.gaspi import AllreduceOp, run_gaspi
from repro.sim import Sleep
from repro.ulfm import UlfmComm, UlfmResult


def launch(main, n_ranks=4, plan=None, until=600.0, error_timeout=1.0):
    spec = MachineSpec(
        n_nodes=n_ranks,
        transport_params=TransportParams(error_timeout=error_timeout),
    )
    return run_gaspi(main, machine_spec=spec, fault_plan=plan, until=until)


class TestHealthyOperation:
    def test_send_recv(self):
        def main(ctx):
            comm = UlfmComm(ctx, list(range(4)))
            if comm.rank == 0:
                ret = yield from comm.send(3, {"x": 1})
                return ret
            if comm.rank == 3:
                ret, src, payload = yield from comm.recv()
                return (ret, src, payload)

        run = launch(main)
        assert run.result(0) is UlfmResult.SUCCESS
        assert run.result(3) == (UlfmResult.SUCCESS, 0, {"x": 1})

    def test_barrier_and_allreduce(self):
        def main(ctx):
            comm = UlfmComm(ctx, list(range(4)))
            ret = yield from comm.barrier()
            assert ret is UlfmResult.SUCCESS
            ret, total = yield from comm.allreduce(
                np.array([float(comm.rank)]), AllreduceOp.SUM
            )
            return (ret, float(total[0]))

        run = launch(main)
        for r in range(4):
            assert run.result(r) == (UlfmResult.SUCCESS, 6.0)

    def test_comm_rank_is_position_not_physical(self):
        def main(ctx):
            if ctx.rank in (1, 3):
                comm = UlfmComm(ctx, [1, 3])
                if False:
                    yield
                return comm.rank

        run = launch(main)
        assert run.result(1) == 0
        assert run.result(3) == 1


class TestFailureSemantics:
    def test_send_to_dead_rank_returns_proc_failed(self):
        def main(ctx):
            comm = UlfmComm(ctx, list(range(4)))
            if comm.rank == 0:
                yield Sleep(1.0)
                ret = yield from comm.send(2, "hello")
                return ret
            yield Sleep(120.0)

        plan = FaultPlan().kill_process(0.5, 2)
        run = launch(main, plan=plan)
        assert run.result(0) is UlfmResult.PROC_FAILED

    def test_collective_with_dead_member_returns_proc_failed(self):
        def main(ctx):
            comm = UlfmComm(ctx, list(range(4)))
            if ctx.rank == 3:
                yield Sleep(120.0)
                return None
            ret = yield from comm.barrier()
            return ret

        plan = FaultPlan().kill_process(0.5, 3)
        run = launch(main, plan=plan)
        for r in range(3):
            assert run.result(r) is UlfmResult.PROC_FAILED

    def test_recv_timeout_after_sender_death(self):
        def main(ctx):
            comm = UlfmComm(ctx, [0, 1])
            if comm.rank == 1:
                ret, src, payload = yield from comm.recv(timeout=3.0)
                return ret
            yield Sleep(120.0)

        plan = FaultPlan().kill_process(0.5, 0)
        run = launch(main, n_ranks=2, plan=plan)
        assert run.result(1) is UlfmResult.PROC_FAILED


class TestRevokeShrinkAgree:
    def test_revoke_poisons_all_members(self):
        def main(ctx):
            comm = UlfmComm(ctx, list(range(4)))
            if ctx.rank == 0:
                yield from comm.revoke()
                return "revoked"
            yield Sleep(1.0)  # let the notice arrive
            ret = yield from comm.barrier()
            return ret

        run = launch(main)
        for r in range(1, 4):
            assert run.result(r) is UlfmResult.REVOKED

    def test_full_ulfm_recovery_cycle(self):
        """The canonical ULFM pattern: fail -> revoke -> agree -> shrink."""

        def main(ctx):
            comm = UlfmComm(ctx, list(range(5)))
            if ctx.rank == 4:
                yield Sleep(120.0)
                return None
            ret = yield from comm.barrier()
            if ret is UlfmResult.PROC_FAILED:
                yield from comm.revoke()
            yield Sleep(0.5)
            ret, ok_flag = yield from comm.agree(1)
            assert ret is UlfmResult.SUCCESS
            ret, new_comm = yield from comm.shrink()
            assert ret is UlfmResult.SUCCESS
            # the shrunken communicator works again
            ret, total = yield from new_comm.allreduce(
                np.array([1.0]), AllreduceOp.SUM
            )
            return (new_comm.size, float(total[0]))

        plan = FaultPlan().kill_process(0.2, 4)
        run = launch(main, n_ranks=5, plan=plan)
        for r in range(4):
            assert run.result(r) == (4, 4.0)

    def test_agree_ands_flags_of_survivors(self):
        def main(ctx):
            comm = UlfmComm(ctx, list(range(3)))
            flag = 0 if ctx.rank == 1 else 1
            ret, agreed = yield from comm.agree(flag)
            return agreed

        run = launch(main, n_ranks=3)
        assert all(run.result(r) == 0 for r in range(3))

    def test_shrink_cost_linear_in_parent_size(self):
        def make(n):
            def main(ctx):
                comm = UlfmComm(ctx, list(range(n)))
                t0 = ctx.now
                yield from comm.shrink()
                return ctx.now - t0
            return main

        t8 = launch(make(8), n_ranks=8).result(0)
        t64 = launch(make(64), n_ranks=64).result(0)
        base = 0.100
        assert (t64 - base) / (t8 - base) == pytest.approx(8.0, rel=0.1)

    def test_membership_validation(self):
        def main(ctx):
            if ctx.rank == 0:
                try:
                    UlfmComm(ctx, [1, 2])
                except ValueError:
                    return "rejected"
            if False:
                yield

        assert launch(main).result(0) == "rejected"
