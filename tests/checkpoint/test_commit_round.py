"""Property test: ``CheckpointManager.commit_round`` is observably
identical to every rank committing sequentially through the scalar
per-neighbor helper pipeline.

For a random scenario — rank count, payload shapes, nominal sizes,
mid-round process/node kills, pre-filled (QUEUE_FULL) mirror queues and a
partitioned neighbor link — the round-batched plane must reproduce the
scalar reference bit-for-bit in every observable: per-rank stats, node
store contents (keys, blob bytes, nominal sizes), and the virtual fire
time and value of every mirrored event.  Event *names* and the writer's
own staging-window copy are the only documented non-observables.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import CheckpointLib, CheckpointManager
from repro.cluster import FaultPlan
from repro.ft import rankstate
from repro.gaspi import run_gaspi
from repro.sim import Event, Sleep

NOMINALS = [None, 1 << 18, 1 << 20]
DRAIN_S = 60.0  # past every mirror timeout horizon


def _payload(rank, rnd, sizes):
    size = sizes[rank % len(sizes)]
    return {
        "x": np.arange(size, dtype=np.float64) + rank * 1000.0 + rnd,
        "it": np.int64(rnd),
    }


def _prefill(lib):
    queue = lib._mirror_queue_obj
    for _ in range(queue.depth):
        queue.post(Event(name="prefill"))


def _snapshot_stores(machine, n_nodes):
    out = {}
    for node_id in range(n_nodes):
        node = machine.node(node_id)
        out[node_id] = sorted(
            (key, bytes(blob.data), blob.nominal_bytes)
            for key, blob in node.local_store.items()
        )
    return out


def _build_plan(kills):
    plan = FaultPlan()
    for t, victim, node_kill in kills:
        if node_kill:
            plan.kill_node(t, victim)
        else:
            plan.kill_process(t, victim)
    return plan


def _apply_faults(ctx, n_ranks, partitions, qfull_ranks, libs):
    if ctx.rank == 0:
        network = ctx.world.machine.network
        for p in partitions:
            network.break_link(p, (p + 1) % n_ranks)
    for r in qfull_ranks:
        if r in libs:
            _prefill(libs[r])


def run_sequential_scalar(n_ranks, sizes, n_rounds, nominal, kills,
                          partitions, qfull_ranks):
    """Every rank drives its own ``write_checkpoint`` (scalar helper)."""
    stats, fires = {}, {}

    def main(ctx):
        r = ctx.rank
        lib = CheckpointLib(ctx, logical_rank=r,
                            participants=range(n_ranks))
        stats[r] = lib.stats
        _apply_faults(ctx, n_ranks, partitions, qfull_ranks, {r: lib})
        sim = ctx.world.sim
        for k in range(n_rounds):
            yield Sleep((k + 1.0) - ctx.now)
            mirrored = yield from lib.write_checkpoint(
                k, _payload(r, k, sizes), nominal_bytes=nominal)
            mirrored.add_callback(
                lambda ev, r=r, k=k:
                fires.setdefault((r, k), (sim.now, ev.value)))
        yield Sleep(DRAIN_S)
        lib.shutdown()

    with rankstate.use("scalar"):
        run = run_gaspi(main, n_ranks=n_ranks,
                        fault_plan=_build_plan(kills))
    return ({r: dict(s) for r, s in stats.items()}, fires,
            _snapshot_stores(run.machine, n_ranks))


def run_commit_round(n_ranks, sizes, n_rounds, nominal, kills,
                     partitions, qfull_ranks):
    """One coordinator drives whole rounds through ``commit_round``."""
    stats, fires = {}, {}

    def main(ctx):
        if ctx.rank != 0:
            return
        libs = {
            r: CheckpointLib(ctx.world.contexts[r], r, range(n_ranks))
            for r in range(n_ranks)
        }
        for r, lib in libs.items():
            stats[r] = lib.stats
        _apply_faults(ctx, n_ranks, partitions, qfull_ranks, libs)
        manager = CheckpointManager.of(ctx.world)
        sim = ctx.world.sim
        for k in range(n_rounds):
            yield Sleep((k + 1.0) - ctx.now)
            payloads = {r: _payload(r, k, sizes) for r in range(n_ranks)}
            mirrors = yield from manager.commit_round(
                libs, k, payloads, nominal_bytes=nominal)
            for r, ev in mirrors.items():
                ev.add_callback(
                    lambda fired_ev, r=r, k=k:
                    fires.setdefault((r, k), (sim.now, fired_ev.value)))
        yield Sleep(DRAIN_S)
        for lib in libs.values():
            lib.shutdown()

    with rankstate.use("vectorized"):
        run = run_gaspi(main, n_ranks=n_ranks,
                        fault_plan=_build_plan(kills))
    return ({r: dict(s) for r, s in stats.items()}, fires,
            _snapshot_stores(run.machine, n_ranks))


def assert_equivalent(n_ranks, sizes, n_rounds, nominal, kills,
                      partitions, qfull_ranks):
    scalar = run_sequential_scalar(n_ranks, sizes, n_rounds, nominal,
                                   kills, partitions, qfull_ranks)
    batched = run_commit_round(n_ranks, sizes, n_rounds, nominal,
                               kills, partitions, qfull_ranks)
    assert batched[0] == scalar[0], "per-rank stats diverged"
    assert batched[1] == scalar[1], "mirror fire times/values diverged"
    assert batched[2] == scalar[2], "node store contents diverged"


@st.composite
def scenarios(draw):
    n_ranks = draw(st.sampled_from([16, 24, 32, 64, 128]))
    sizes = draw(st.lists(st.integers(1, 24), min_size=1, max_size=4))
    n_rounds = draw(st.integers(1, 3))
    nominal = draw(st.sampled_from(NOMINALS))
    kills = draw(st.lists(
        st.tuples(
            st.floats(0.9, 1.0 + n_rounds),  # spans local write + mirrors
            st.integers(1, n_ranks - 1),     # never the coordinator
            st.booleans(),                   # node kill wipes the store too
        ),
        max_size=2, unique_by=lambda k: k[1],
    ))
    partitions = draw(st.lists(st.integers(1, n_ranks - 2),
                               max_size=1, unique=True))
    qfull_ranks = draw(st.lists(st.integers(0, n_ranks - 1),
                                max_size=2, unique=True))
    return (n_ranks, sizes, n_rounds, nominal, kills,
            tuple(partitions), tuple(qfull_ranks))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario=scenarios())
def test_commit_round_equals_sequential_commit(scenario):
    assert_equivalent(*scenario)


def test_commit_round_equals_sequential_commit_at_512_ranks():
    """The ladder's upper property rung: one deterministic 512-rank round
    mix with a mid-round node kill, a partitioned neighbor link and one
    QUEUE_FULL library."""
    assert_equivalent(
        512, [8, 3], 2, 1 << 20,
        kills=[(1.00005, 17, True)],
        partitions=(100,),
        qfull_ranks=(7,),
    )
