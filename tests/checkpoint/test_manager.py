"""Integration tests for CheckpointLib on the simulated cluster."""

import numpy as np
import pytest

from repro.cluster import FaultPlan
from repro.checkpoint import (
    CheckpointConfig,
    CheckpointLib,
    CheckpointManager,
    CheckpointNotFound,
    ParallelFileSystem,
)
from repro.ft import rankstate
from repro.gaspi import run_gaspi
from repro.sim import Sleep, WaitEvent


def test_write_then_local_restore():
    def main(ctx):
        lib = CheckpointLib(ctx, logical_rank=ctx.rank, participants=[0, 1])
        payload = {"v": np.arange(4.0) + ctx.rank, "it": ctx.rank * 10}
        mirrored = yield from lib.write_checkpoint(0, payload)
        yield WaitEvent(mirrored, 10.0)
        version, out = yield from lib.read_checkpoint()
        lib.shutdown()
        return (version, list(out["v"]), int(out["it"]))

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) == (0, [0.0, 1.0, 2.0, 3.0], 0)
    assert run.result(1) == (0, [1.0, 2.0, 3.0, 4.0], 10)


def test_neighbor_copy_lands_on_other_node():
    def main(ctx):
        lib = CheckpointLib(ctx, logical_rank=ctx.rank, participants=[0, 1, 2])
        mirrored = yield from lib.write_checkpoint(0, {"x": np.ones(8)})
        ok, copied = yield WaitEvent(mirrored, 10.0)
        lib.shutdown()
        return (ok, copied, lib.neighbor_rank, lib.stats["neighbor_copies"])

    run = run_gaspi(main, n_ranks=3)
    for r in range(3):
        ok, copied, neighbor, copies = run.result(r)
        assert ok and copied
        assert neighbor == (r + 1) % 3
        assert copies == 1
    # each node now holds its own blob and its predecessor's
    m = run.machine
    for node_id in range(3):
        from repro.checkpoint import NodeLocalStore
        store = NodeLocalStore(m.node(node_id))
        held = {k[2] for k in m.node(node_id).local_store}
        assert held == {node_id, (node_id - 1) % 3}


def test_restore_from_neighbor_after_node_loss():
    """Rescue on a fresh node restores a failed rank's data from its neighbor."""

    def main(ctx):
        if ctx.rank == 1:
            lib = CheckpointLib(ctx, logical_rank=1, participants=[0, 1, 2])
            mirrored = yield from lib.write_checkpoint(0, {"x": np.full(4, 7.0)})
            yield WaitEvent(mirrored, 10.0)
            lib.shutdown()
            yield Sleep(100.0)  # stays up until killed at t=20
            return None
        if ctx.rank == 3:  # the rescue: adopts logical rank 1 after failure
            yield Sleep(30.0)
            lib = CheckpointLib(ctx, logical_rank=1, participants=[0, 2, 3])
            # candidates: failed rank's node (1, dead) and its old neighbor (2)
            version, out = yield from lib.read_checkpoint(extra_nodes=[1, 2])
            lib.shutdown()
            return (version, float(out["x"][0]), lib.stats["remote_reads"])
        yield Sleep(40.0)
        return None

    plan = FaultPlan().kill_node(20.0, 1)
    run = run_gaspi(main, n_ranks=4, fault_plan=plan)
    assert run.result(3) == (0, 7.0, 1)


def test_restore_prefers_local_after_process_only_failure():
    """If only the process died, its node store still has the local copy."""

    def main(ctx):
        if ctx.rank == 0:
            lib = CheckpointLib(ctx, logical_rank=0, participants=[0, 1])
            yield from lib.write_checkpoint(0, {"x": np.arange(3.0)})
            lib.shutdown()
            yield Sleep(100.0)
            return None
        # rank 1 plays "rescue restarted on the failed process's node 0"?
        # it cannot be; instead verify remote read from node 0 succeeds
        yield Sleep(10.0)
        lib = CheckpointLib(ctx, logical_rank=0, participants=[1])
        version, out = yield from lib.read_checkpoint(extra_nodes=[0])
        lib.shutdown()
        return (version, list(out["x"]))

    plan = FaultPlan().kill_process(5.0, 0)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan)
    assert run.result(1) == (0, [0.0, 1.0, 2.0])


def test_version_pruning_keeps_last_k():
    def main(ctx):
        cfg = CheckpointConfig(keep_versions=2)
        lib = CheckpointLib(ctx, logical_rank=0, participants=[0, 1], config=cfg)
        if ctx.rank == 0:
            last = None
            for v in range(5):
                last = yield from lib.write_checkpoint(v, {"x": np.array([v])})
            yield WaitEvent(last, 10.0)
            from repro.checkpoint import NodeLocalStore
            store = NodeLocalStore(ctx.world.machine.node(0))
            versions = store.versions("ckpt", 0)
            lib.shutdown()
            return versions
        lib.shutdown()
        if False:
            yield

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) == [3, 4]


def test_restorable_latest_reports_minus_one_when_empty():
    def main(ctx):
        lib = CheckpointLib(ctx, logical_rank=0, participants=[0])
        latest = lib.restorable_latest()
        lib.shutdown()
        if False:
            yield
        return latest

    run = run_gaspi(main, n_ranks=1)
    assert run.result(0) == -1


def test_read_missing_version_raises():
    def main(ctx):
        lib = CheckpointLib(ctx, logical_rank=0, participants=[0])
        try:
            yield from lib.read_checkpoint(version=9)
        except CheckpointNotFound:
            lib.shutdown()
            return "not-found"

    run = run_gaspi(main, n_ranks=1)
    assert run.result(0) == "not-found"


def test_pfs_copies_every_kth_version():
    def main(ctx):
        pfs = ParallelFileSystem(ctx.world.sim)
        cfg = CheckpointConfig(pfs_every=2, keep_versions=10)
        lib = CheckpointLib(ctx, logical_rank=0, participants=[0, 1],
                            config=cfg, pfs=pfs)
        if ctx.rank == 0:
            last = None
            for v in range(4):
                last = yield from lib.write_checkpoint(v, {"x": np.array([v])})
            yield WaitEvent(last, 10.0)
            lib.shutdown()
            return (lib.stats["pfs_copies"], pfs.has(("ckpt", 0, 0)),
                    pfs.has(("ckpt", 0, 1)), pfs.has(("ckpt", 0, 2)))
        lib.shutdown()
        if False:
            yield

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) == (2, True, False, True)


def test_refresh_changes_neighbor_after_failure():
    def main(ctx):
        lib = CheckpointLib(ctx, logical_rank=ctx.rank, participants=[0, 1, 2, 3])
        before = lib.neighbor_rank
        lib.refresh([0, 2, 3])  # rank 1 failed and left the ring
        after = lib.neighbor_rank
        lib.shutdown()
        if False:
            yield
        return (before, after)

    run = run_gaspi(main, n_ranks=4)
    assert run.result(0) == (1, 2)


def test_checkpoint_write_cost_scales_with_nominal_bytes():
    def main(ctx):
        cfg = CheckpointConfig(local_bandwidth=1e9)
        lib = CheckpointLib(ctx, logical_rank=0, participants=[0])
        lib.config = cfg
        t0 = ctx.now
        yield from lib.write_checkpoint(0, {"x": np.zeros(2)}, nominal_bytes=10**9)
        lib.shutdown()
        return ctx.now - t0

    run = run_gaspi(main, n_ranks=1)
    assert run.result(0) == pytest.approx(1.0, rel=0.01)


def test_staging_buffer_reused_and_old_versions_stay_intact():
    """The pack staging arena is reused across writes, and stored blobs
    must be immutable snapshots — overwriting the staging arena with a
    later checkpoint must not corrupt earlier stored versions.

    On the (default) round-checkpoint path the arena is the world
    manager's shared one; the scalar per-library buffer is covered by
    ``test_staging_buffer_reused_scalar_path``.
    """

    def main(ctx):
        manager = CheckpointManager.of(ctx.world)
        cfg = CheckpointConfig(keep_versions=4)
        lib = CheckpointLib(ctx, logical_rank=0, participants=[0], config=cfg)
        yield from lib.write_checkpoint(0, {"x": np.full(64, 1.0)})
        staging = manager._arena
        yield from lib.write_checkpoint(1, {"x": np.full(64, 2.0)})
        same_buffer = manager._arena is staging  # equal size -> reused
        yield from lib.write_checkpoint(2, {"x": np.full(128, 3.0)})
        grew = len(manager._arena) >= 128 * 8
        _, v0 = yield from lib.read_checkpoint(version=0)
        _, v2 = yield from lib.read_checkpoint(version=2)
        lib.shutdown()
        return (same_buffer, grew, float(v0["x"][0]), float(v2["x"][0]))

    run = run_gaspi(main, n_ranks=1)
    assert run.result(0) == (True, True, 1.0, 3.0)


def test_staging_buffer_reused_scalar_path():
    """The per-library staging buffer behaves the same on the scalar
    (helper-thread) path."""

    def main(ctx):
        cfg = CheckpointConfig(keep_versions=4)
        lib = CheckpointLib(ctx, logical_rank=0, participants=[0], config=cfg)
        yield from lib.write_checkpoint(0, {"x": np.full(64, 1.0)})
        staging = lib._staging
        yield from lib.write_checkpoint(1, {"x": np.full(64, 2.0)})
        same_buffer = lib._staging is staging  # equal size -> reused
        yield from lib.write_checkpoint(2, {"x": np.full(128, 3.0)})
        grew = len(lib._staging) >= 128 * 8
        _, v0 = yield from lib.read_checkpoint(version=0)
        _, v2 = yield from lib.read_checkpoint(version=2)
        lib.shutdown()
        return (same_buffer, grew, float(v0["x"][0]), float(v2["x"][0]))

    with rankstate.use("scalar"):
        run = run_gaspi(main, n_ranks=1)
    assert run.result(0) == (True, True, 1.0, 3.0)


def test_helper_dies_with_rank():
    """The helper thread is bound to the rank and must not outlive it."""

    def main(ctx):
        lib = CheckpointLib(ctx, logical_rank=0, participants=[0, 1])
        yield Sleep(100.0)

    plan = FaultPlan().kill_process(1.0, 0)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan, until=50.0)
    helpers = [p for p in run.sim.processes if p.name.startswith("ckpt-helper-0")]
    assert len(helpers) == 1
    assert not helpers[0].alive
