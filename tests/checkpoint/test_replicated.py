"""The ReStore-style replicated backend: placement properties and the
r-1 concurrent-loss tolerance proof.

Placement (``replica_holder_map``) is property-tested against the scalar
oracle and its documented invariants (no replica on the owner's or the
mirror neighbor's node, pairwise-distinct holder nodes, balanced load);
the round-trip suite commits through the real scatter plane, kills k
holders plus the owner, and proves byte-identical recovery for every
k < r — and detect-and-report (``CheckpointNotFound``) at k = r.
See ``CHECKPOINTS.md`` for the placement rule and the tolerance proof.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    CheckpointConfig,
    CheckpointNotFound,
    ReplicatedCheckpointLib,
    make_checkpoint_lib,
    replica_holder_map,
    replica_holders,
)
from repro.cluster import FaultPlan
from repro.ft import rankstate
from repro.gaspi import run_gaspi
from repro.sim import Sleep, WaitEvent

# ----------------------------------------------------------------------
# placement properties
# ----------------------------------------------------------------------
participants_strategy = st.lists(
    st.integers(min_value=0, max_value=200),
    min_size=3, max_size=48, unique=True,
)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(participants=participants_strategy,
       r=st.integers(min_value=1, max_value=4),
       ranks_per_node=st.integers(min_value=1, max_value=3))
def test_placement_invariants_and_kernel_identity(participants, r,
                                                  ranks_per_node):
    def node_of(rank):
        return rank // ranks_per_node

    ring = sorted(participants)
    n = len(ring)
    for mode in ("vectorized", "scalar"):
        with rankstate.use(mode):
            holder_map = replica_holder_map(participants, node_of, r)
        assert sorted(holder_map) == ring
        for idx, rank in enumerate(ring):
            holders = holder_map[rank]
            # the active kernel must agree with the scalar oracle
            assert holders == replica_holders(rank, participants,
                                              node_of, r)
            assert len(holders) <= r
            assert rank not in holders
            # never on the owner's node
            assert all(node_of(h) != node_of(rank) for h in holders)
            # never on the mirror neighbor's node (the first forward
            # participant on a different node)
            mirror_node = next(
                (node_of(ring[(idx + s) % n]) for s in range(1, n)
                 if node_of(ring[(idx + s) % n]) != node_of(rank)), -1)
            assert all(node_of(h) != mirror_node for h in holders)
            # pairwise-distinct holder nodes
            nodes = [node_of(h) for h in holders]
            assert len(set(nodes)) == len(nodes)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(min_value=4, max_value=64),
       r=st.integers(min_value=1, max_value=4))
def test_distinct_node_rings_are_full_and_balanced(n, r):
    """One rank per node and n >= r + 2: every rank gets exactly r
    holders and holds exactly r foreign blobs (the fast-path regime)."""
    if n < r + 2:
        r = n - 2
    holder_map = replica_holder_map(range(n), lambda x: x, r)
    load = {rank: 0 for rank in range(n)}
    for rank, holders in holder_map.items():
        assert len(holders) == r
        for h in holders:
            load[h] += 1
    assert set(load.values()) == {r}


# ----------------------------------------------------------------------
# round-trip: commit -> lose k holders (and the owner) -> recover
# ----------------------------------------------------------------------
N_RANKS = 10
R = 3


def _lose_and_recover(k):
    """Commit rank 0's checkpoint with r=3, kill k holders plus the
    owner at t=20, then have rank 9 (the rescue) restore logical 0."""
    payload = {"v": np.arange(32.0), "it": np.int64(7)}
    cfg = CheckpointConfig(backend="replicated", replication=R)
    holders = replica_holders(0, list(range(N_RANKS)), lambda x: x, R)
    assert len(holders) == R
    victims = holders[:k] + [0]
    survivors = [r for r in range(N_RANKS) if r not in victims]
    out = {}

    def main(ctx):
        if ctx.rank == 0:
            lib = ReplicatedCheckpointLib(ctx, 0, range(N_RANKS),
                                          config=cfg)
            protected = yield from lib.write_checkpoint(0, payload)
            ok, landed = yield WaitEvent(protected, 10.0)
            out["landed"] = (ok, landed)
            yield Sleep(100.0)  # stays up until killed at t=20
            return None
        if ctx.rank == N_RANKS - 1:
            yield Sleep(30.0)  # after the kills
            lib = ReplicatedCheckpointLib(ctx, 0, survivors, config=cfg)
            try:
                version, restored = yield from lib.read_checkpoint()
            except CheckpointNotFound:
                # the version is no longer offered; an explicit read of
                # it yields the detailed detect-and-report diagnostic
                latest = lib.restorable_latest()
                try:
                    yield from lib.read_checkpoint(0)
                except CheckpointNotFound as exc:
                    return ("not-found", str(exc), latest)
                raise
            return (version, restored["v"].tobytes(), int(restored["it"]),
                    lib.stats["replica_reads"])
        yield Sleep(40.0)
        return None

    plan = FaultPlan()
    for victim in victims:
        plan.kill_process(20.0, victim)
    run = run_gaspi(main, n_ranks=N_RANKS, fault_plan=plan)
    assert out["landed"] == (True, R)
    return run.result(N_RANKS - 1)


@pytest.mark.parametrize("k", range(R))
def test_recovers_byte_identical_after_k_losses(k):
    """Any k < r concurrent rank losses (plus the owner's own death,
    which removes no replica) leave the state recoverable, bit-for-bit."""
    result = _lose_and_recover(k)
    version, v_bytes, it, reads = result
    assert version == 0
    assert v_bytes == np.arange(32.0).tobytes()
    assert it == 7
    assert reads == 1


def test_detects_and_reports_when_losses_exceed_tolerance():
    """k = r losses: the version stops being offered and the read names
    the dead holders instead of hanging or restoring garbage."""
    marker, message, latest = _lose_and_recover(R)
    assert marker == "not-found"
    assert "exceeded the r-1 tolerance" in message
    assert latest == -1


def test_owner_death_alone_loses_nothing():
    # k=0 already covers it, but state the property explicitly: the
    # owner holds no replica of its own blob
    holders = replica_holders(0, list(range(N_RANKS)), lambda x: x, R)
    assert 0 not in holders


# ----------------------------------------------------------------------
# factory + mode identity
# ----------------------------------------------------------------------
def test_factory_dispatch_and_unknown_backend():
    def main(ctx):
        cfg = CheckpointConfig(backend="replicated")
        lib = make_checkpoint_lib(ctx, ctx.rank, [0, 1], config=cfg)
        assert isinstance(lib, ReplicatedCheckpointLib)
        with pytest.raises(ValueError, match="unknown checkpoint backend"):
            make_checkpoint_lib(ctx, ctx.rank, [0, 1],
                                config=CheckpointConfig(backend="nfs"))
        return None
        yield  # pragma: no cover - makes main a generator

    run_gaspi(main, n_ranks=2)


def test_experiment_rows_identical_across_rankstate_modes():
    """The 16-rank replicated-backend scenario measures identically in
    scalar and vectorized modes: the fast path changes wall cost only,
    never virtual timestamps or restore accounting."""
    from repro.experiments.recovery_compare import measure_backend

    rows = {}
    for mode in ("scalar", "vectorized"):
        with rankstate.use(mode):
            rows[mode] = measure_backend(16, "replicated")
    assert rows["scalar"] == rows["vectorized"]
    det, reinit, restore_ops, restore_bytes, restore_s = rows["scalar"]
    assert restore_ops > 0 and restore_bytes > 0 and restore_s > 0
