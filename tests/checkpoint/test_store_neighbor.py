"""Tests for node-local stores, the PFS model and neighbor selection."""

import pytest

from repro.sim import Simulator
from repro.cluster.node import Node
from repro.checkpoint import (
    CheckpointNotFound,
    NodeLocalStore,
    ParallelFileSystem,
    StoredBlob,
    neighbor_map,
    neighbor_of,
)


def blob(data=b"x", nominal=None):
    return StoredBlob(data=data, nominal_bytes=nominal or len(data))


class TestNodeLocalStore:
    def test_put_get_roundtrip(self):
        store = NodeLocalStore(Node(0))
        store.put(("t", 1, 0), blob(b"abc"))
        assert store.get(("t", 1, 0)).data == b"abc"
        assert store.has(("t", 1, 0))

    def test_missing_key_raises(self):
        store = NodeLocalStore(Node(0))
        with pytest.raises(CheckpointNotFound):
            store.get(("t", 1, 0))

    def test_dead_node_loses_everything(self):
        node = Node(0)
        store = NodeLocalStore(node)
        store.put(("t", 1, 0), blob())
        node.wipe()
        assert not store.available
        assert not store.has(("t", 1, 0))
        with pytest.raises(CheckpointNotFound):
            store.get(("t", 1, 0))
        with pytest.raises(CheckpointNotFound):
            store.put(("t", 1, 1), blob())
        assert store.versions("t", 1) == []

    def test_versions_sorted_and_latest(self):
        store = NodeLocalStore(Node(0))
        for v in (3, 1, 2):
            store.put(("t", 7, v), blob())
        assert store.versions("t", 7) == [1, 2, 3]
        assert store.latest_version("t", 7) == 3
        assert store.latest_version("t", 8) is None

    def test_versions_isolated_by_tag_and_rank(self):
        store = NodeLocalStore(Node(0))
        store.put(("a", 1, 0), blob())
        store.put(("b", 1, 5), blob())
        store.put(("a", 2, 9), blob())
        assert store.versions("a", 1) == [0]

    def test_used_bytes_uses_nominal(self):
        store = NodeLocalStore(Node(0))
        store.put(("t", 1, 0), blob(b"xy", nominal=1000))
        assert store.used_bytes() == 1000

    def test_delete_is_idempotent(self):
        store = NodeLocalStore(Node(0))
        store.put(("t", 1, 0), blob())
        store.delete(("t", 1, 0))
        store.delete(("t", 1, 0))
        assert not store.has(("t", 1, 0))


class TestParallelFileSystem:
    def run_gen(self, sim, gen):
        proc = sim.spawn(gen)
        sim.run()
        return proc.result

    def test_write_read_roundtrip_with_cost(self):
        sim = Simulator()
        pfs = ParallelFileSystem(sim, aggregate_bandwidth=1e9, latency=0.0)

        def writer():
            yield from pfs.write(("t", 0, 0), blob(b"d", nominal=10**9))
            t_write = sim.now
            got = yield from pfs.read(("t", 0, 0))
            return (t_write, sim.now - t_write, got.data)

        t_write, t_read, data = self.run_gen(sim, writer())
        assert t_write == pytest.approx(1.0)
        assert t_read == pytest.approx(1.0)
        assert data == b"d"

    def test_contention_halves_bandwidth(self):
        sim = Simulator()
        pfs = ParallelFileSystem(sim, aggregate_bandwidth=1e9, latency=0.0)
        finish = {}

        def writer(i):
            yield from pfs.write(("t", i, 0), blob(nominal=10**9))
            finish[i] = sim.now

        sim.spawn(writer(0))
        sim.spawn(writer(1))
        sim.run()
        # both start together; each sees half the aggregate bandwidth
        assert finish[0] == pytest.approx(2.0)
        assert finish[1] == pytest.approx(2.0)

    def test_missing_read_raises(self):
        sim = Simulator()
        pfs = ParallelFileSystem(sim)

        def reader():
            yield from pfs.read(("t", 0, 0))

        sim.spawn(reader())
        with pytest.raises(CheckpointNotFound):
            sim.run()

    def test_latest_version(self):
        sim = Simulator()
        pfs = ParallelFileSystem(sim, latency=0.0)

        def writer():
            for v in (0, 2, 1):
                yield from pfs.write(("t", 3, v), blob())

        sim.spawn(writer())
        sim.run()
        assert pfs.latest_version("t", 3) == 2
        assert pfs.latest_version("t", 4) is None
        assert len(pfs) == 3


class TestNeighborSelection:
    def test_simple_ring_one_rank_per_node(self):
        node_of = lambda r: r
        participants = [0, 1, 2, 3]
        assert neighbor_of(0, participants, node_of) == 1
        assert neighbor_of(3, participants, node_of) == 0

    def test_skips_ranks_on_same_node(self):
        node_of = lambda r: r // 2  # ranks (0,1) on node 0, (2,3) on node 1
        assert neighbor_of(0, [0, 1, 2, 3], node_of) == 2
        assert neighbor_of(3, [0, 1, 2, 3], node_of) == 0

    def test_no_other_node_returns_none(self):
        node_of = lambda r: 0
        assert neighbor_of(0, [0, 1], node_of) is None

    def test_non_participant_rejected(self):
        with pytest.raises(ValueError):
            neighbor_of(9, [0, 1], lambda r: r)

    def test_map_covers_all_participants(self):
        node_of = lambda r: r
        m = neighbor_map([0, 2, 5], node_of)
        assert m == {0: 2, 2: 5, 5: 0}

    def test_refreshed_ring_after_failure(self):
        node_of = lambda r: r
        before = neighbor_of(1, [0, 1, 2, 3], node_of)
        after = neighbor_of(1, [0, 1, 3], node_of)  # rank 2 failed
        assert before == 2
        assert after == 3
