"""Tests for the checkpoint container format, including corruption handling."""

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointCorrupt,
    pack_checkpoint,
    pack_checkpoint_into,
    packed_size,
    unpack_checkpoint,
)


def test_roundtrip_arrays_and_scalars():
    payload = {
        "vec": np.arange(10, dtype=np.float64),
        "matrix": np.arange(6, dtype=np.float32).reshape(2, 3),
        "iteration": 42,
        "beta": 3.25,
    }
    out = unpack_checkpoint(pack_checkpoint(payload))
    assert set(out) == set(payload)
    assert np.array_equal(out["vec"], payload["vec"])
    assert out["matrix"].shape == (2, 3)
    assert out["matrix"].dtype == np.float32
    assert out["iteration"] == 42
    assert out["beta"] == 3.25


def test_roundtrip_empty_payload():
    assert unpack_checkpoint(pack_checkpoint({})) == {}


def test_roundtrip_empty_array():
    out = unpack_checkpoint(pack_checkpoint({"x": np.zeros(0)}))
    assert out["x"].shape == (0,)


def test_roundtrip_unicode_names_and_int_dtypes():
    payload = {"αβ": np.array([1, 2, 3], dtype=np.int32)}
    out = unpack_checkpoint(pack_checkpoint(payload))
    assert np.array_equal(out["αβ"], [1, 2, 3])
    assert out["αβ"].dtype == np.int32


def test_unpacked_arrays_are_writable_copies():
    blob = pack_checkpoint({"x": np.arange(4.0)})
    out = unpack_checkpoint(blob)
    out["x"][0] = 99.0  # must not raise (frombuffer alone would be read-only)


def test_bad_magic_rejected():
    with pytest.raises(CheckpointCorrupt, match="magic"):
        unpack_checkpoint(b"XXXX" + b"\0" * 20)


def test_truncated_blob_rejected():
    blob = pack_checkpoint({"x": np.arange(100.0)})
    with pytest.raises(CheckpointCorrupt):
        unpack_checkpoint(blob[: len(blob) // 2])


def test_single_flipped_bit_detected():
    blob = bytearray(pack_checkpoint({"x": np.arange(100.0)}))
    blob[len(blob) // 2] ^= 0x01
    with pytest.raises(CheckpointCorrupt, match="CRC"):
        unpack_checkpoint(bytes(blob))


def test_wrong_version_rejected():
    blob = bytearray(pack_checkpoint({"x": np.arange(4.0)}))
    blob[4] = 99  # version field
    with pytest.raises(CheckpointCorrupt, match="version"):
        unpack_checkpoint(bytes(blob))


# ----------------------------------------------------------------------
# zero-copy pack path
# ----------------------------------------------------------------------
def _sample_payload():
    return {
        "vec": np.arange(100, dtype=np.float64),
        "matrix": np.arange(6, dtype=np.float32).reshape(2, 3),
        "it": 7,
    }


def test_pack_into_matches_pack_checkpoint():
    payload = _sample_payload()
    buf = bytearray(packed_size(payload))
    written = pack_checkpoint_into(payload, buf)
    assert written == packed_size(payload) == len(buf)
    assert bytes(buf) == pack_checkpoint(payload)


def test_pack_into_at_offset_leaves_margins_untouched():
    payload = _sample_payload()
    size = packed_size(payload)
    buf = bytearray(b"\xaa" * (size + 32))
    written = pack_checkpoint_into(payload, buf, offset=16)
    assert written == size
    assert bytes(buf[:16]) == b"\xaa" * 16
    assert bytes(buf[16 + size:]) == b"\xaa" * 16
    assert bytes(buf[16 : 16 + size]) == pack_checkpoint(payload)


def test_pack_into_numpy_buffer_and_memoryview():
    payload = _sample_payload()
    size = packed_size(payload)
    seg = np.zeros(size + 8, dtype=np.uint8)
    pack_checkpoint_into(payload, seg)
    assert unpack_checkpoint(seg.tobytes()[:size]).keys() == payload.keys()
    mv = memoryview(bytearray(size))
    pack_checkpoint_into(payload, mv)
    assert bytes(mv) == pack_checkpoint(payload)


def test_pack_into_rejects_readonly_and_small_buffers():
    payload = _sample_payload()
    with pytest.raises(ValueError, match="writable"):
        pack_checkpoint_into(payload, b"\0" * packed_size(payload))
    with pytest.raises(ValueError, match="too small"):
        pack_checkpoint_into(payload, bytearray(packed_size(payload) - 1))
    with pytest.raises(ValueError, match="too small"):
        pack_checkpoint_into(payload, bytearray(packed_size(payload)), offset=1)


def test_pack_accepts_noncontiguous_fortran_and_readonly():
    strided = np.arange(20.0)[::2]
    fortran = np.asfortranarray(np.arange(12.0).reshape(3, 4))
    readonly = np.arange(5.0)
    readonly.setflags(write=False)
    payload = {"s": strided, "f": fortran, "r": readonly}
    out = unpack_checkpoint(pack_checkpoint(payload))
    assert np.array_equal(out["s"], strided)
    assert np.array_equal(out["f"], fortran)
    assert out["f"].shape == (3, 4)
    assert np.array_equal(out["r"], readonly)


def test_zero_dim_scalar_roundtrip():
    payload = {"step": np.int64(42), "t": np.float64(1.5), "plain": 3}
    out = unpack_checkpoint(pack_checkpoint(payload))
    assert out["step"].shape == ()
    assert int(out["step"]) == 42
    assert float(out["t"]) == 1.5
    assert int(out["plain"]) == 3


def test_contiguous_input_never_normalised(monkeypatch):
    """C-contiguous arrays must take the direct path: zero extra copies."""
    import repro.checkpoint.serialization as ser

    calls = []
    real = np.ascontiguousarray

    def counting(a, *args, **kwargs):
        calls.append(a.shape)
        return real(a, *args, **kwargs)

    monkeypatch.setattr(ser.np, "ascontiguousarray", counting)
    pack_checkpoint({"a": np.arange(8.0), "b": np.int64(1)})
    assert calls == []
    pack_checkpoint({"nc": np.arange(16.0)[::2]})
    assert calls == [(8,)]  # exactly one normalisation, only when needed


# ----------------------------------------------------------------------
# zero-copy unpack path
# ----------------------------------------------------------------------
def test_unpack_no_copy_is_readonly_and_aliases_blob():
    payload = {"x": np.arange(16.0)}
    blob = pack_checkpoint(payload)
    out = unpack_checkpoint(blob, copy=False)
    assert not out["x"].flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        out["x"][0] = 1.0
    assert np.shares_memory(out["x"], np.frombuffer(blob, dtype=np.uint8))
    assert np.array_equal(out["x"], payload["x"])


def test_unpack_accepts_memoryview_and_bytearray():
    payload = _sample_payload()
    blob = pack_checkpoint(payload)
    for alias in (bytearray(blob), memoryview(blob), np.frombuffer(blob, np.uint8)):
        out = unpack_checkpoint(alias)
        assert np.array_equal(out["vec"], payload["vec"])


def test_truncated_header_under_fourteen_bytes():
    blob = pack_checkpoint({"x": np.arange(4.0)})
    for n in range(14):
        with pytest.raises(CheckpointCorrupt):
            unpack_checkpoint(blob[:n])


def test_truncation_never_yields_partial_payload():
    """Any prefix of a valid blob raises — no partial dict ever escapes."""
    blob = pack_checkpoint({"a": np.arange(8.0), "b": np.arange(4.0)})
    for n in range(len(blob)):
        with pytest.raises(CheckpointCorrupt):
            unpack_checkpoint(blob[:n])


def test_flipped_byte_mid_array_detected():
    payload = {"a": np.arange(64.0)}
    blob = bytearray(pack_checkpoint(payload))
    blob[-30] ^= 0xFF  # well inside the array data
    with pytest.raises(CheckpointCorrupt, match="CRC"):
        unpack_checkpoint(bytes(blob))
