"""Tests for the checkpoint container format, including corruption handling."""

import numpy as np
import pytest

from repro.checkpoint import CheckpointCorrupt, pack_checkpoint, unpack_checkpoint


def test_roundtrip_arrays_and_scalars():
    payload = {
        "vec": np.arange(10, dtype=np.float64),
        "matrix": np.arange(6, dtype=np.float32).reshape(2, 3),
        "iteration": 42,
        "beta": 3.25,
    }
    out = unpack_checkpoint(pack_checkpoint(payload))
    assert set(out) == set(payload)
    assert np.array_equal(out["vec"], payload["vec"])
    assert out["matrix"].shape == (2, 3)
    assert out["matrix"].dtype == np.float32
    assert out["iteration"] == 42
    assert out["beta"] == 3.25


def test_roundtrip_empty_payload():
    assert unpack_checkpoint(pack_checkpoint({})) == {}


def test_roundtrip_empty_array():
    out = unpack_checkpoint(pack_checkpoint({"x": np.zeros(0)}))
    assert out["x"].shape == (0,)


def test_roundtrip_unicode_names_and_int_dtypes():
    payload = {"αβ": np.array([1, 2, 3], dtype=np.int32)}
    out = unpack_checkpoint(pack_checkpoint(payload))
    assert np.array_equal(out["αβ"], [1, 2, 3])
    assert out["αβ"].dtype == np.int32


def test_unpacked_arrays_are_writable_copies():
    blob = pack_checkpoint({"x": np.arange(4.0)})
    out = unpack_checkpoint(blob)
    out["x"][0] = 99.0  # must not raise (frombuffer alone would be read-only)


def test_bad_magic_rejected():
    with pytest.raises(CheckpointCorrupt, match="magic"):
        unpack_checkpoint(b"XXXX" + b"\0" * 20)


def test_truncated_blob_rejected():
    blob = pack_checkpoint({"x": np.arange(100.0)})
    with pytest.raises(CheckpointCorrupt):
        unpack_checkpoint(blob[: len(blob) // 2])


def test_single_flipped_bit_detected():
    blob = bytearray(pack_checkpoint({"x": np.arange(100.0)}))
    blob[len(blob) // 2] ^= 0x01
    with pytest.raises(CheckpointCorrupt, match="CRC"):
        unpack_checkpoint(bytes(blob))


def test_wrong_version_rejected():
    blob = bytearray(pack_checkpoint({"x": np.arange(4.0)}))
    blob[4] = 99  # version field
    with pytest.raises(CheckpointCorrupt):
        unpack_checkpoint(bytes(blob))
