"""Unit + property tests for the CSR implementation (vs SciPy reference)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmvm import CSRMatrix


def random_dense(rng, n_rows, n_cols, density=0.3):
    dense = rng.random((n_rows, n_cols))
    dense[rng.random((n_rows, n_cols)) > density] = 0.0
    return dense


class TestConstruction:
    def test_from_coo_basic(self):
        a = CSRMatrix.from_coo([0, 1, 1], [1, 0, 2], [5.0, 6.0, 7.0], (2, 3))
        assert a.nnz == 3
        expected = np.array([[0, 5, 0], [6, 0, 7]], dtype=float)
        assert np.array_equal(a.to_dense(), expected)

    def test_from_coo_sums_duplicates(self):
        a = CSRMatrix.from_coo([0, 0], [1, 1], [2.0, 3.0], (1, 2))
        assert a.nnz == 1
        assert a.to_dense()[0, 1] == 5.0

    def test_from_coo_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([0], [5], [1.0], (1, 2))
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([2], [0], [1.0], (1, 2))

    def test_from_coo_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([0, 1], [0], [1.0], (2, 2))

    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = random_dense(rng, 7, 5)
        assert np.array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)

    def test_empty_matrix(self):
        a = CSRMatrix.empty(3, 4)
        assert a.nnz == 0
        assert np.array_equal(a.spmv(np.ones(4)), np.zeros(3))

    def test_validate_rejects_bad_row_ptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, np.array([0, 2, 1]), np.array([0, 1]), np.ones(2))
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, np.array([0, 1]), np.array([0]), np.ones(1))


class TestSpmv:
    def test_matches_dense_small(self):
        rng = np.random.default_rng(1)
        dense = random_dense(rng, 6, 6)
        x = rng.random(6)
        a = CSRMatrix.from_dense(dense)
        assert np.allclose(a.spmv(x), dense @ x)

    def test_handles_empty_rows_including_last(self):
        dense = np.zeros((4, 4))
        dense[1, 2] = 3.0  # rows 0, 2, 3 empty
        a = CSRMatrix.from_dense(dense)
        y = a.spmv(np.arange(4.0))
        assert np.array_equal(y, [0.0, 6.0, 0.0, 0.0])

    def test_out_parameter(self):
        a = CSRMatrix.from_dense(np.eye(3) * 2)
        out = np.zeros(3)
        ret = a.spmv(np.ones(3), out=out)
        assert ret is out
        assert np.array_equal(out, [2, 2, 2])

    def test_shape_mismatch_rejected(self):
        a = CSRMatrix.empty(2, 3)
        with pytest.raises(ValueError):
            a.spmv(np.ones(2))

    @settings(max_examples=40, deadline=None)
    @given(
        n_rows=st.integers(1, 20),
        n_cols=st.integers(1, 20),
        seed=st.integers(0, 2**31),
        density=st.floats(0.0, 1.0),
    )
    def test_property_matches_scipy(self, n_rows, n_cols, seed, density):
        rng = np.random.default_rng(seed)
        dense = random_dense(rng, n_rows, n_cols, density)
        x = rng.standard_normal(n_cols)
        ours = CSRMatrix.from_dense(dense)
        ref = sp.csr_matrix(dense)
        assert np.allclose(ours.spmv(x), ref @ x)


class TestRowBlock:
    def test_blocks_reassemble(self):
        rng = np.random.default_rng(2)
        dense = random_dense(rng, 10, 10)
        a = CSRMatrix.from_dense(dense)
        top = a.row_block(0, 4)
        bottom = a.row_block(4, 10)
        assert np.array_equal(
            np.vstack([top.to_dense(), bottom.to_dense()]), dense
        )

    def test_block_spmv_matches_slice(self):
        rng = np.random.default_rng(3)
        dense = random_dense(rng, 8, 8)
        x = rng.random(8)
        a = CSRMatrix.from_dense(dense)
        block = a.row_block(2, 6)
        assert np.allclose(block.spmv(x), (dense @ x)[2:6])

    def test_empty_block(self):
        a = CSRMatrix.from_dense(np.eye(4))
        block = a.row_block(2, 2)
        assert block.n_rows == 0 and block.nnz == 0

    def test_bad_range_rejected(self):
        a = CSRMatrix.empty(4, 4)
        with pytest.raises(ValueError):
            a.row_block(3, 2)
        with pytest.raises(ValueError):
            a.row_block(0, 5)


class TestMisc:
    def test_is_symmetric(self):
        sym = CSRMatrix.from_dense(np.array([[1.0, 2.0], [2.0, 3.0]]))
        asym = CSRMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 3.0]]))
        assert sym.is_symmetric()
        assert not asym.is_symmetric()

    def test_row_nnz(self):
        a = CSRMatrix.from_coo([0, 0, 2], [0, 1, 2], [1, 1, 1], (3, 3))
        assert list(a.row_nnz()) == [2, 0, 1]

    def test_with_columns_relabels(self):
        a = CSRMatrix.from_coo([0, 1], [3, 7], [1.0, 2.0], (2, 8))
        b = a.with_columns(np.array([0, 1]), 2)
        assert b.n_cols == 2
        assert np.array_equal(b.to_dense(), [[1.0, 0.0], [0.0, 2.0]])
