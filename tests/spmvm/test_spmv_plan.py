"""Regression tests for the cached spMVM gather plan.

``spmv`` sits on the per-solver-iteration hot path, so it must not
rebuild its O(nnz) index structures (the old ``np.repeat`` row-of array)
on every call: the plan is built exactly once per matrix and every
subsequent call only gathers/multiplies/reduces into preallocated
scratch.
"""

import numpy as np
import pytest

from repro.spmvm import CSRMatrix


def _random_csr(rng, n_rows, n_cols, density=0.3):
    dense = rng.random((n_rows, n_cols))
    dense[rng.random((n_rows, n_cols)) > density] = 0.0
    return CSRMatrix.from_dense(dense), dense


class TestGatherPlanCaching:
    def test_plan_built_once_across_calls(self):
        rng = np.random.default_rng(7)
        mat, dense = _random_csr(rng, 40, 30)
        x = rng.standard_normal(30)
        assert mat.plan_builds == 0  # lazy: nothing built at construction
        out = np.empty(40)
        for _ in range(5):
            mat.spmv(x, out=out)
            mat.spmv(x)
        assert mat.plan_builds == 1
        np.testing.assert_allclose(out, dense @ x, atol=1e-12)

    def test_no_per_call_index_materialisation(self, monkeypatch):
        """After warm-up, spmv must not call np.repeat (the old O(nnz)
        row-of rebuild) nor build any new index array."""
        rng = np.random.default_rng(8)
        mat, dense = _random_csr(rng, 50, 50)
        x = rng.standard_normal(50)
        out = np.empty(50)
        mat.spmv(x, out=out)  # warm the plan

        calls = []
        real_repeat = np.repeat

        def counting_repeat(*args, **kwargs):
            calls.append(args)
            return real_repeat(*args, **kwargs)

        monkeypatch.setattr(np, "repeat", counting_repeat)
        for _ in range(10):
            mat.spmv(x, out=out)
        assert calls == []
        assert mat.plan_builds == 1
        np.testing.assert_allclose(out, dense @ x, atol=1e-12)

    def test_out_is_written_in_place(self):
        rng = np.random.default_rng(9)
        mat, dense = _random_csr(rng, 25, 25)
        x = rng.standard_normal(25)
        out = np.empty(25)
        result = mat.spmv(x, out=out)
        assert result is out
        np.testing.assert_allclose(out, dense @ x, atol=1e-12)

    def test_out_shape_checked(self):
        mat, _ = _random_csr(np.random.default_rng(0), 10, 10)
        with pytest.raises(ValueError, match="out must have shape"):
            mat.spmv(np.zeros(10), out=np.empty(9))

    def test_empty_rows_and_columns(self):
        # rows 1 and 3 empty (incl. a trailing empty row): the reduceat
        # plan must skip them without corrupting neighbouring segments
        mat = CSRMatrix.from_coo(
            [0, 0, 2], [1, 3, 0], [2.0, 4.0, 8.0], (4, 4)
        )
        x = np.array([1.0, 10.0, 100.0, 1000.0])
        expected = np.array([2.0 * 10 + 4.0 * 1000, 0.0, 8.0, 0.0])
        out = np.full(4, -1.0)
        np.testing.assert_array_equal(mat.spmv(x, out=out), expected)
        np.testing.assert_array_equal(mat.spmv(x), expected)
        assert mat.plan_builds == 1

    def test_all_rows_empty(self):
        mat = CSRMatrix.empty(3, 5)
        out = np.full(3, -1.0)
        np.testing.assert_array_equal(mat.spmv(np.ones(5), out=out),
                                      np.zeros(3))

    def test_ell_plan_for_uniform_rows(self):
        """Near-uniform rows (stencil operators) take the padded-ELL path."""
        rng = np.random.default_rng(11)
        n = 50
        diags = rng.standard_normal((3, n))
        dense = (np.diag(diags[0]) + np.diag(diags[1][:-1], 1)
                 + np.diag(diags[2][:-1], -1))
        mat = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(n)
        out = np.empty(n)
        mat.spmv(x, out=out)
        assert mat._plan[0] == "ell"
        assert mat.plan_builds == 1
        np.testing.assert_allclose(out, dense @ x, atol=1e-12)
        np.testing.assert_array_equal(mat.spmv(x), out)  # reproducible

    def test_ell_and_csr_paths_agree(self):
        """The plan kind is a perf choice only: both paths match dense."""
        rng = np.random.default_rng(12)
        for density in (0.05, 0.5, 0.95):
            mat, dense = _random_csr(rng, 30, 30, density=density)
            x = rng.standard_normal(30)
            np.testing.assert_allclose(mat.spmv(x), dense @ x, atol=1e-12)

    def test_repeated_calls_bitwise_reproducible(self):
        """Deterministic redo-work relies on spmv being bit-for-bit
        reproducible call-to-call (and close to the reference sum)."""
        rng = np.random.default_rng(10)
        mat, dense = _random_csr(rng, 60, 45, density=0.2)
        x = rng.standard_normal(45)
        first = mat.spmv(x).copy()
        out = np.empty(60)
        for _ in range(5):
            np.testing.assert_array_equal(mat.spmv(x, out=out), first)
        np.testing.assert_allclose(first, dense @ x, atol=1e-12)


class TestIsSymmetricSparse:
    def test_symmetric_and_not(self):
        sym = CSRMatrix.from_coo([0, 1, 0, 1], [1, 0, 0, 1],
                                 [3.0, 3.0, 1.0, 2.0], (2, 2))
        assert sym.is_symmetric()
        asym = CSRMatrix.from_coo([0, 1], [1, 0], [3.0, 4.0], (2, 2))
        assert not asym.is_symmetric()

    def test_pattern_mismatch(self):
        # entry present only on one side of the diagonal
        mat = CSRMatrix.from_coo([0], [1], [1.0], (2, 2))
        assert not mat.is_symmetric()
        assert mat.is_symmetric(tol=2.0)  # within tolerance

    def test_non_square_and_empty(self):
        assert not CSRMatrix.empty(2, 3).is_symmetric()
        assert CSRMatrix.empty(3, 3).is_symmetric()

    def test_no_densify(self, monkeypatch):
        mat = CSRMatrix.from_coo([0, 1], [1, 0], [3.0, 3.0], (2, 2))
        monkeypatch.setattr(
            CSRMatrix, "to_dense",
            lambda self: pytest.fail("is_symmetric densified the matrix"),
        )
        assert mat.is_symmetric()

    def test_large_sparse_identity_fast(self):
        n = 200_000  # dense comparison would need ~320 GB
        idx = np.arange(n)
        mat = CSRMatrix.from_coo(idx, idx, np.ones(n), (n, n))
        assert mat.is_symmetric()
