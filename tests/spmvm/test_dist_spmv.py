"""Integration tests: distributed spMVM over the simulated GASPI cluster."""

import numpy as np
import pytest

from repro.gaspi import run_gaspi
from repro.spmvm import (
    DistMatrix,
    DistVector,
    SpMVMEngine,
    Team,
    distribute_matrix,
)
from repro.spmvm.matgen import GrapheneSheet, Laplacian2D, RandomSparse
from repro.spmvm.partition import RowPartition


def dist_spmv_run(gen, n_ranks, x_global, iterations=1):
    """Run y = A^iterations x distributed; returns gathered global result."""

    def main(ctx):
        team = Team.trivial(ctx)
        dmat = yield from distribute_matrix(team, gen)
        engine = yield from SpMVMEngine.create(team, dmat)
        partition = RowPartition(gen.n_rows, n_ranks)
        r0, r1 = partition.range_of(ctx.rank)
        x = x_global[r0:r1].copy()
        for it in range(iterations):
            x = yield from engine.multiply(x, tag=it)
        return x

    run = run_gaspi(main, n_ranks=n_ranks)
    return np.concatenate([run.result(r) for r in range(n_ranks)])


@pytest.mark.parametrize("gen,n_ranks", [
    (Laplacian2D(5, 5), 4),
    (GrapheneSheet(4, 4), 3),
    (GrapheneSheet(3, 4, disorder=1.0, seed=7), 4),
    (RandomSparse(37, nnz_per_row=5, seed=3), 5),
])
def test_distributed_matches_sequential(gen, n_ranks):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(gen.n_rows)
    y_dist = dist_spmv_run(gen, n_ranks, x)
    assert np.allclose(y_dist, gen.full().spmv(x))


def test_repeated_multiplications_stay_correct():
    gen = Laplacian2D(4, 4)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(gen.n_rows)
    y_dist = dist_spmv_run(gen, 4, x, iterations=4)
    y_ref = x.copy()
    full = gen.full()
    for _ in range(4):
        y_ref = full.spmv(y_ref)
    assert np.allclose(y_dist, y_ref)


def test_single_rank_degenerate_case():
    gen = Laplacian2D(3, 3)
    x = np.arange(9.0)
    y = dist_spmv_run(gen, 1, x)
    assert np.allclose(y, gen.full().spmv(x))


def test_dist_matrix_payload_roundtrip_through_checkpoint():
    from repro.checkpoint import pack_checkpoint, unpack_checkpoint

    gen = GrapheneSheet(4, 4)

    def main(ctx):
        team = Team.trivial(ctx)
        dmat = yield from distribute_matrix(team, gen)
        blob = pack_checkpoint(dmat.to_payload())
        restored = DistMatrix.from_payload(unpack_checkpoint(blob))
        same = (
            restored.n_global == dmat.n_global
            and restored.logical_rank == dmat.logical_rank
            and np.array_equal(restored.local.col_idx, dmat.local.col_idx)
            and np.array_equal(restored.local.values, dmat.local.values)
            and restored.plan.providers() == dmat.plan.providers()
            and restored.plan.requesters() == dmat.plan.requesters()
        )
        return same

    run = run_gaspi(main, n_ranks=3)
    assert all(run.result(r) for r in range(3))


def test_engine_usable_from_restored_payload():
    """A rescue process can run spMVM from the checkpointed plan alone."""
    gen = Laplacian2D(4, 5)
    rng = np.random.default_rng(2)
    x = rng.standard_normal(gen.n_rows)

    def main(ctx):
        team = Team.trivial(ctx)
        dmat = yield from distribute_matrix(team, gen)
        # round-trip through the serialised form before building the engine
        restored = DistMatrix.from_payload(dmat.to_payload())
        engine = yield from SpMVMEngine.create(team, restored)
        partition = RowPartition(gen.n_rows, team.n_workers)
        r0, r1 = partition.range_of(ctx.rank)
        y = yield from engine.multiply(x[r0:r1].copy())
        return y

    run = run_gaspi(main, n_ranks=4)
    y_dist = np.concatenate([run.result(r) for r in range(4)])
    assert np.allclose(y_dist, gen.full().spmv(x))


def test_dist_vector_dot_and_norm():
    def main(ctx):
        team = Team.trivial(ctx)
        n_local = 3
        base = ctx.rank * n_local
        v = DistVector(team, np.arange(base, base + n_local, dtype=float))
        w = DistVector(team, np.ones(n_local))
        d = yield from v.dot(w)
        n = yield from v.norm()
        return (d, n)

    run = run_gaspi(main, n_ranks=4)
    total = np.arange(12.0)
    for r in range(4):
        d, n = run.result(r)
        assert d == pytest.approx(total.sum())
        assert n == pytest.approx(np.linalg.norm(total))


def test_dist_vector_local_ops():
    def main(ctx):
        team = Team.trivial(ctx)
        v = DistVector(team, np.full(4, 2.0))
        w = DistVector(team, np.full(4, 3.0))
        v.axpy(2.0, w)        # v = 2 + 2*3 = 8
        v.scale(0.5)          # v = 4
        u = DistVector(team, np.zeros(4)).copy_from(v)
        total = yield from u.dot(DistVector(team, np.ones(4)))
        return total

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) == pytest.approx(4.0 * 4 * 2)


def test_team_validation():
    def main(ctx):
        if False:
            yield
        try:
            Team(ctx=ctx, group=ctx.group_all, logical_rank=0,
                 rank_map={0: 1})  # binds logical 0 to the wrong physical
        except ValueError:
            return "rejected"

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) == "rejected"


def test_time_model_charges_virtual_time():
    class FixedModel:
        def spmv_time(self, nnz, rows):
            return 0.25

    gen = Laplacian2D(3, 3)

    def main(ctx):
        team = Team.trivial(ctx)
        dmat = yield from distribute_matrix(team, gen)
        engine = yield from SpMVMEngine.create(team, dmat, time_model=FixedModel())
        t0 = ctx.now
        partition = RowPartition(gen.n_rows, team.n_workers)
        r0, r1 = partition.range_of(ctx.rank)
        yield from engine.multiply(np.ones(r1 - r0))
        return ctx.now - t0

    run = run_gaspi(main, n_ranks=3)
    assert run.result(0) >= 0.25
