"""Tests for row partitioning and the on-the-fly matrix generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmvm import RowPartition
from repro.spmvm.matgen import (
    GrapheneSheet,
    Laplacian1D,
    Laplacian2D,
    RandomSparse,
    hash_uniform,
)


class TestRowPartition:
    def test_balanced_even_split(self):
        p = RowPartition(12, 4)
        assert p.sizes() == [3, 3, 3, 3]
        assert p.range_of(0) == (0, 3)
        assert p.range_of(3) == (9, 12)

    def test_remainder_spread_to_first_parts(self):
        p = RowPartition(10, 4)
        assert p.sizes() == [3, 3, 2, 2]
        assert sum(p.sizes()) == 10

    @settings(max_examples=50, deadline=None)
    @given(n_rows=st.integers(0, 500), n_parts=st.integers(1, 32))
    def test_property_blocks_cover_and_balance(self, n_rows, n_parts):
        p = RowPartition(n_rows, n_parts)
        ranges = [p.range_of(i) for i in range(n_parts)]
        # contiguous cover
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n_rows
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0
        # balance within 1
        sizes = p.sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_owner_matches_ranges(self):
        p = RowPartition(10, 3)
        for part in range(3):
            r0, r1 = p.range_of(part)
            assert np.all(p.owner(np.arange(r0, r1)) == part)

    def test_owner_out_of_range_rejected(self):
        p = RowPartition(4, 2)
        with pytest.raises(ValueError):
            p.owner(4)

    def test_to_local(self):
        p = RowPartition(10, 2)
        assert list(p.to_local(1, np.array([5, 9]))) == [0, 4]
        with pytest.raises(ValueError):
            p.to_local(1, np.array([2]))

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            RowPartition(10, 0)
        with pytest.raises(ValueError):
            RowPartition(-1, 2)
        with pytest.raises(ValueError):
            RowPartition(4, 2).range_of(5)


class TestHashUniform:
    def test_deterministic(self):
        idx = np.arange(100)
        assert np.array_equal(hash_uniform(idx, 7), hash_uniform(idx, 7))

    def test_varies_with_seed_and_stream(self):
        idx = np.arange(100)
        a = hash_uniform(idx, 1)
        assert not np.array_equal(a, hash_uniform(idx, 2))
        assert not np.array_equal(a, hash_uniform(idx, 1, stream=1))

    def test_range_and_rough_uniformity(self):
        u = hash_uniform(np.arange(20000), 3)
        assert u.min() >= 0.0 and u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.01


class TestGenerators:
    @pytest.mark.parametrize("gen", [
        GrapheneSheet(3, 4),
        GrapheneSheet(3, 4, disorder=2.0, seed=5),
        GrapheneSheet(4, 4, periodic=True),
        Laplacian1D(17),
        Laplacian2D(4, 5),
        RandomSparse(30, nnz_per_row=4, seed=2),
    ])
    def test_block_independence(self, gen):
        """Any block decomposition reproduces the same global matrix."""
        full = gen.full().to_dense()
        p = RowPartition(gen.n_rows, 3)
        stacked = np.vstack([
            gen.generate_rows(*p.range_of(i)).to_dense() for i in range(3)
        ])
        assert np.array_equal(full, stacked)

    @pytest.mark.parametrize("gen", [
        GrapheneSheet(3, 3),
        GrapheneSheet(3, 3, disorder=1.0, seed=9),
        GrapheneSheet(4, 4, periodic=True),
        Laplacian1D(10),
        Laplacian2D(3, 4),
    ])
    def test_symmetry(self, gen):
        assert gen.full().is_symmetric()

    def test_graphene_dimensions_and_degree(self):
        gen = GrapheneSheet(4, 5, t=1.0)
        assert gen.n_rows == 40
        full = gen.full()
        # open boundaries: interior sites have 3 neighbours, no onsite term
        # (onsite=0 entries are dropped), so max degree is 3
        assert full.row_nnz().max() == 3
        assert full.row_nnz().min() >= 1

    def test_graphene_periodic_every_site_three_neighbors(self):
        full = GrapheneSheet(3, 3, periodic=True).full()
        assert np.all(full.row_nnz() == 3)

    def test_graphene_spectrum_symmetric_about_zero(self):
        """Bipartite lattice: eigenvalues come in +/- pairs."""
        full = GrapheneSheet(3, 3).full().to_dense()
        eig = np.linalg.eigvalsh(full)
        assert np.allclose(eig, -eig[::-1], atol=1e-10)

    def test_graphene_disorder_changes_diagonal_only(self):
        clean = GrapheneSheet(3, 3).full().to_dense()
        noisy = GrapheneSheet(3, 3, disorder=1.0, seed=4).full().to_dense()
        off_clean = clean - np.diag(np.diag(clean))
        off_noisy = noisy - np.diag(np.diag(noisy))
        assert np.array_equal(off_clean, off_noisy)
        assert np.abs(np.diag(noisy)).max() <= 0.5
        assert np.any(np.diag(noisy) != 0)

    def test_graphene_rejects_bad_lattice(self):
        with pytest.raises(ValueError):
            GrapheneSheet(0, 3)
        with pytest.raises(ValueError):
            GrapheneSheet(1, 1, periodic=True)

    def test_laplacian1d_matches_classic_tridiagonal(self):
        full = Laplacian1D(5).full().to_dense()
        expected = 2 * np.eye(5) - np.eye(5, k=1) - np.eye(5, k=-1)
        assert np.array_equal(full, expected)

    def test_laplacian2d_exact_eigenvalues(self):
        gen = Laplacian2D(4, 3)
        eig = np.linalg.eigvalsh(gen.full().to_dense())
        assert np.allclose(np.sort(eig), gen.exact_eigenvalues(), atol=1e-10)

    def test_random_sparse_reproducible_and_bounded_degree(self):
        a = RandomSparse(50, nnz_per_row=6, seed=1).full()
        b = RandomSparse(50, nnz_per_row=6, seed=1).full()
        assert np.array_equal(a.to_dense(), b.to_dense())
        assert a.row_nnz().max() <= 6  # duplicates may merge, never exceed

    def test_random_sparse_symmetrized_is_symmetric(self):
        sym = RandomSparse(20, nnz_per_row=4, seed=3).symmetrized_full()
        assert sym.is_symmetric()

    def test_random_sparse_diagonal_dominance_option(self):
        a = RandomSparse(20, nnz_per_row=3, seed=0, diagonal=10.0).symmetrized_full()
        dense = a.to_dense()
        assert np.all(np.linalg.eigvalsh(dense) > 0)  # SPD for CG tests

    def test_generator_bad_range_rejected(self):
        gen = Laplacian1D(10)
        with pytest.raises(ValueError):
            gen.generate_rows(5, 11)
