"""Tests for the pre-processing stage (pure, no simulator)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmvm import CSRMatrix, CommPlan, RowPartition, build_comm_plan
from repro.spmvm.comm_setup import split_columns
from repro.spmvm.matgen import GrapheneSheet, Laplacian2D, RandomSparse


def blocks_of(gen, partition):
    return {
        part: gen.generate_rows(*partition.range_of(part))
        for part in range(partition.n_parts)
    }


def simulate_exchange_and_spmv(gen, n_parts, x):
    """Run the full halo protocol sequentially and return the global y."""
    partition = RowPartition(gen.n_rows, n_parts)
    remapped, plans = build_comm_plan(blocks_of(gen, partition), partition)

    # assemble each rank's x view: [own block | halo written by providers]
    ys = []
    for part in range(n_parts):
        r0, r1 = partition.range_of(part)
        plan = plans[part]
        x_full = np.zeros(plan.n_local + plan.halo_size)
        x_full[: plan.n_local] = x[r0:r1]
        for provider, spec in plan.recv.items():
            send = plans[provider].send[part]
            p0, _ = partition.range_of(provider)
            values = x[p0 + send.local_idx]
            x_full[send.halo_start : send.halo_start + send.count] = values
        ys.append(remapped[part].spmv(x_full))
    return np.concatenate(ys)


class TestSplitColumns:
    def test_local_only_matrix_has_empty_halo(self):
        partition = RowPartition(4, 2)
        block = CSRMatrix.from_coo([0, 1], [0, 1], [1.0, 2.0], (2, 4))
        remapped, plan = split_columns(block, partition, 0)
        assert plan.halo_size == 0
        assert plan.recv == {}
        assert remapped.n_cols == 2

    def test_remote_columns_grouped_by_owner_sorted(self):
        partition = RowPartition(9, 3)  # blocks [0,3) [3,6) [6,9)
        block = CSRMatrix.from_coo(
            [0, 0, 1, 1], [8, 3, 6, 4], np.ones(4), (3, 9)
        )
        remapped, plan = split_columns(block, partition, 0)
        assert list(plan.halo_cols) == [3, 4, 6, 8]  # owner 1 then owner 2
        assert list(plan.recv[1].cols) == [3, 4]
        assert plan.recv[1].halo_start == 0
        assert list(plan.recv[2].cols) == [6, 8]
        assert plan.recv[2].halo_start == 2
        # remapping: local block is rows [0,3) so col 3 -> 3 (n_local) + 0
        dense = remapped.to_dense()
        assert dense.shape == (3, 7)

    def test_duplicate_remote_column_requested_once(self):
        partition = RowPartition(4, 2)
        block = CSRMatrix.from_coo([0, 1], [3, 3], [1.0, 2.0], (2, 4))
        _, plan = split_columns(block, partition, 0)
        assert plan.recv[1].count == 1


class TestBuildCommPlan:
    @pytest.mark.parametrize("gen,n_parts", [
        (GrapheneSheet(4, 4), 3),
        (GrapheneSheet(3, 5, disorder=1.0, seed=2), 4),
        (Laplacian2D(5, 5), 5),
        (RandomSparse(40, nnz_per_row=5, seed=1), 4),
    ])
    def test_distributed_spmv_matches_global(self, gen, n_parts):
        x = np.sin(np.arange(gen.n_rows, dtype=float))
        y_dist = simulate_exchange_and_spmv(gen, n_parts, x)
        y_ref = gen.full().spmv(x)
        assert np.allclose(y_dist, y_ref)

    def test_send_recv_plans_are_duals(self):
        gen = Laplacian2D(4, 4)
        partition = RowPartition(gen.n_rows, 4)
        _, plans = build_comm_plan(blocks_of(gen, partition), partition)
        for requester, plan in plans.items():
            for provider, spec in plan.recv.items():
                send = plans[provider].send[requester]
                assert send.count == spec.count
                assert send.halo_start == plan.n_local + spec.halo_start
                p0, _ = partition.range_of(provider)
                assert np.array_equal(p0 + send.local_idx, spec.cols)

    def test_no_self_communication(self):
        gen = Laplacian2D(4, 4)
        partition = RowPartition(gen.n_rows, 4)
        _, plans = build_comm_plan(blocks_of(gen, partition), partition)
        for part, plan in plans.items():
            assert part not in plan.recv
            assert part not in plan.send

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(4, 60),
        n_parts=st.integers(1, 6),
        seed=st.integers(0, 1000),
    )
    def test_property_distributed_matches_global(self, n, n_parts, seed):
        gen = RandomSparse(n, nnz_per_row=min(4, n), seed=seed)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        assert np.allclose(
            simulate_exchange_and_spmv(gen, n_parts, x),
            gen.full().spmv(x),
        )


class TestCommPlanSerialization:
    def test_payload_roundtrip(self):
        gen = GrapheneSheet(4, 4)
        partition = RowPartition(gen.n_rows, 4)
        _, plans = build_comm_plan(blocks_of(gen, partition), partition)
        plan = plans[1]
        from repro.checkpoint import pack_checkpoint, unpack_checkpoint
        restored = CommPlan.from_payload(
            unpack_checkpoint(pack_checkpoint(plan.to_payload()))
        )
        assert restored.n_local == plan.n_local
        assert np.array_equal(restored.halo_cols, plan.halo_cols)
        assert restored.providers() == plan.providers()
        assert restored.requesters() == plan.requesters()
        for p in plan.providers():
            assert np.array_equal(restored.recv[p].cols, plan.recv[p].cols)
            assert restored.recv[p].halo_start == plan.recv[p].halo_start
        for r in plan.requesters():
            assert np.array_equal(restored.send[r].local_idx, plan.send[r].local_idx)

    def test_empty_plan_roundtrip(self):
        plan = CommPlan(n_local=5)
        restored = CommPlan.from_payload(plan.to_payload())
        assert restored.n_local == 5
        assert restored.halo_size == 0
        assert restored.total_send == 0
