"""Property tests: batched ``write_list_notify`` ≡ N sequential ``write_notify``.

The fused list operation must be observationally equivalent to the
sequential chain it replaces: byte-identical remote segment contents, the
same set of posted notification flags, the same write-then-notify ordering
guarantee — across queue depths (exercising the QUEUE_FULL retry path) and
with failures injected mid-batch.
"""

import numpy as np
import pytest

from repro.cluster import FaultPlan
from repro.gaspi import GaspiConfig, GaspiUsageError, ReturnCode, run_gaspi
from repro.sim import Sleep

DATA_SEG = 0
NOTIFY_SEG = 1

#: (segment_id, offset, size, remote_segment, remote_offset) windows used by
#: every scenario — deliberately unordered and non-contiguous
ENTRIES = [
    (DATA_SEG, 64, 24, DATA_SEG, 8),
    (DATA_SEG, 0, 16, NOTIFY_SEG, 40),
    (DATA_SEG, 32, 8, DATA_SEG, 96),
    (DATA_SEG, 104, 16, NOTIFY_SEG, 0),
]
NOTIFICATIONS = [(5, 7), (2, 9), (11, 3)]


def _fill_source(ctx):
    rng = np.random.default_rng(42)
    ctx.segment_view(DATA_SEG, np.uint8)[:] = rng.integers(
        1, 255, ctx.segment(DATA_SEG).size, dtype=np.uint8
    )


def _receiver_state(ctx):
    """Everything rank 1 exposes: segment bytes + notification values."""
    return (
        bytes(ctx.segment_view(DATA_SEG, np.uint8)),
        bytes(ctx.segment_view(NOTIFY_SEG, np.uint8)),
        ctx.segment(NOTIFY_SEG).notifications.values.tolist(),
    )


def _post_retrying(ctx, post):
    """Post a non-blocking op, draining the queue on QUEUE_FULL."""
    while True:
        ret = post()
        if ret is ReturnCode.SUCCESS:
            return
        assert ret is ReturnCode.QUEUE_FULL
        yield from ctx.wait(0)


def _run_scenario(batched: bool, queue_depth: int):
    def main(ctx):
        ctx.segment_create(DATA_SEG, 128)
        ctx.segment_create(NOTIFY_SEG, 64)
        if ctx.rank == 0:
            _fill_source(ctx)
            if batched:
                yield from _post_retrying(
                    ctx, lambda: ctx.write_list_notify(
                        ENTRIES, 1, NOTIFY_SEG, NOTIFICATIONS
                    )
                )
            else:
                for seg, off, size, rseg, roff in ENTRIES[:-1]:
                    yield from _post_retrying(
                        ctx, lambda s=seg, o=off, z=size, rs=rseg, ro=roff:
                        ctx.write(s, o, z, 1, rs, ro)
                    )
                # last write fused with the first flag, remaining flags bare
                seg, off, size, rseg, roff = ENTRIES[-1]
                nid0, val0 = NOTIFICATIONS[0]
                yield from _post_retrying(
                    ctx, lambda: ctx.write_notify(
                        seg, off, size, 1, rseg, roff, nid0, val0
                    )
                )
                for nid, val in NOTIFICATIONS[1:]:
                    yield from _post_retrying(
                        ctx, lambda n=nid, v=val: ctx.notify(1, NOTIFY_SEG, n, v)
                    )
            ret = yield from ctx.wait(0)
            assert ret is ReturnCode.SUCCESS
            yield from ctx.barrier()
            return None
        yield from ctx.barrier()
        return _receiver_state(ctx)

    cfg = GaspiConfig(queue_depth=queue_depth)
    return run_gaspi(main, n_ranks=2, config=cfg).result(1)


@pytest.mark.parametrize("queue_depth", [1, 2, 4096])
def test_batched_equals_sequential(queue_depth):
    """Same bytes everywhere, same flags — at every queue depth.

    Depth 1 forces a full drain between every sequential post (and a
    QUEUE_FULL retry for any second post), the deepest queue exercises the
    single-doorbell coalescing: the observable outcome must not differ.
    """
    assert _run_scenario(True, queue_depth) == _run_scenario(False, queue_depth)


def test_data_visible_before_any_notification():
    """Write-then-notify ordering: a visible flag implies visible data."""
    def main(ctx):
        ctx.segment_create(DATA_SEG, 128)
        ctx.segment_create(NOTIFY_SEG, 64)
        if ctx.rank == 0:
            _fill_source(ctx)
            snapshot = bytes(ctx.segment_view(DATA_SEG, np.uint8, 64, 24))
            ctx.write_list_notify(ENTRIES, 1, NOTIFY_SEG, NOTIFICATIONS)
            yield from ctx.wait(0)
            return snapshot
        # block on the *lowest* flag; data of every entry must already
        # be in place the moment it fires
        ret, nid = yield from ctx.notify_waitsome(NOTIFY_SEG, 2, 1)
        assert ret is ReturnCode.SUCCESS and nid == 2
        return bytes(ctx.segment_view(DATA_SEG, np.uint8, 8, 24))

    run = run_gaspi(main, n_ranks=2)
    assert run.result(1) == run.result(0)  # entry 0's payload, already landed


@pytest.mark.parametrize("batched", [True, False])
def test_mid_batch_failure_times_out_both_paths(batched):
    """Target dies before delivery: both paths hang and purge identically.

    The failure is injected well before the (latency-delayed) batch can
    land, so neither path delivers anything; ``wait`` must time out and
    ``queue_purge`` must leave the queue empty in both variants.
    """
    def main(ctx):
        ctx.segment_create(DATA_SEG, 128)
        ctx.segment_create(NOTIFY_SEG, 64)
        if ctx.rank == 0:
            yield Sleep(1.0)  # outlive the kill at t=0.5
            _fill_source(ctx)
            if batched:
                ctx.write_list_notify(ENTRIES, 1, NOTIFY_SEG, NOTIFICATIONS)
            else:
                for seg, off, size, rseg, roff in ENTRIES:
                    ctx.write(seg, off, size, 1, rseg, roff)
                for nid, val in NOTIFICATIONS:
                    ctx.notify(1, NOTIFY_SEG, nid, val)
            ret = yield from ctx.wait(0, timeout=2.0)
            ctx.queue_purge(0)
            return (ret, ctx.queue_size(0))
        yield Sleep(60.0)

    plan = FaultPlan().kill_process(0.5, 1)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan)
    assert run.result(0) == (ReturnCode.TIMEOUT, 0)


def test_notification_validation():
    """Zero values and empty batches are usage errors, posted nowhere."""
    def main(ctx):
        ctx.segment_create(DATA_SEG, 128)
        if False:
            yield
        with pytest.raises(GaspiUsageError):
            ctx.write_list_notify([(DATA_SEG, 0, 8, DATA_SEG, 8)], 0,
                                  DATA_SEG, (3, 0))
        with pytest.raises(GaspiUsageError):
            ctx.write_list_notify([(DATA_SEG, 0, 8, DATA_SEG, 8)], 0,
                                  DATA_SEG, [])
        with pytest.raises(GaspiUsageError):
            ctx.write_list_notify([], 0, DATA_SEG, (3, 1))
        return ctx.queue_size(0)

    assert run_gaspi(main, n_ranks=1).result(0) == 0


def test_write_list_notify_is_one_queue_entry():
    """However many entries and flags, the batch is a single queue slot."""
    def main(ctx):
        ctx.segment_create(DATA_SEG, 128)
        ctx.segment_create(NOTIFY_SEG, 64)
        if ctx.rank == 0:
            ctx.write_list_notify(ENTRIES, 1, NOTIFY_SEG, NOTIFICATIONS)
            size = ctx.queue_size(0)
            yield from ctx.wait(0)
            return size
        yield from ctx.barrier()

    assert run_gaspi(main, n_ranks=2).result(0) == 1
