"""Integration tests: one-sided communication through the full stack."""

import numpy as np
import pytest

from repro.gaspi import GASPI_BLOCK, GaspiUsageError, ReturnCode, run_gaspi


def test_write_lands_in_remote_segment():
    def main(ctx):
        ctx.segment_create(0, 64)
        if ctx.rank == 0:
            ctx.segment_view(0, np.float64)[:4] = [1.0, 2.0, 3.0, 4.0]
            ret = ctx.write(0, 0, 32, dst_rank=1, remote_segment=0, remote_offset=16)
            assert ret is ReturnCode.SUCCESS
            ret = yield from ctx.wait(0, GASPI_BLOCK)
            assert ret is ReturnCode.SUCCESS
        yield from ctx.barrier()
        return list(ctx.segment_view(0, np.float64, offset=16, count=4))

    run = run_gaspi(main, n_ranks=2)
    assert run.result(1) == [1.0, 2.0, 3.0, 4.0]


def test_write_snapshot_taken_at_post_time():
    """Mutating the source buffer after posting must not affect the transfer."""

    def main(ctx):
        ctx.segment_create(0, 8)
        if ctx.rank == 0:
            view = ctx.segment_view(0, np.int64)
            view[0] = 11
            ctx.write(0, 0, 8, 1, 0, 0)
            view[0] = 99  # after the post, before delivery
            yield from ctx.wait(0)
        yield from ctx.barrier()
        return int(ctx.segment_view(0, np.int64)[0])

    run = run_gaspi(main, n_ranks=2)
    assert run.result(1) == 11


def test_read_fetches_remote_data():
    def main(ctx):
        ctx.segment_create(0, 64)
        ctx.segment_view(0, np.int64)[0] = 100 + ctx.rank
        yield from ctx.barrier()
        if ctx.rank == 0:
            ret = ctx.read(0, 8, 8, src_rank=3, remote_segment=0, remote_offset=0)
            assert ret is ReturnCode.SUCCESS
            ret = yield from ctx.wait(0)
            assert ret is ReturnCode.SUCCESS
            return int(ctx.segment_view(0, np.int64)[1])

    run = run_gaspi(main, n_ranks=4)
    assert run.result(0) == 103


def test_write_notify_data_visible_with_notification():
    def main(ctx):
        ctx.segment_create(0, 64)
        if ctx.rank == 0:
            ctx.segment_view(0, np.float64)[0] = 2.5
            ctx.write_notify(0, 0, 8, 1, 0, 0, notification_id=7, value=123)
            yield from ctx.wait(0)
            return None
        ret, nid = yield from ctx.notify_waitsome(0, 0, 16, GASPI_BLOCK)
        assert ret is ReturnCode.SUCCESS and nid == 7
        old = ctx.notify_reset(0, nid)
        return (old, float(ctx.segment_view(0, np.float64)[0]))

    run = run_gaspi(main, n_ranks=2)
    assert run.result(1) == (123, 2.5)


def test_notify_alone():
    def main(ctx):
        ctx.segment_create(0, 32)
        if ctx.rank == 1:
            ctx.notify(0, 0, notification_id=3, value=9)
            yield from ctx.wait(0)
            return None
        ret, nid = yield from ctx.notify_waitsome(0, 3, 1)
        return (ret, nid, ctx.notify_reset(0, nid))

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) == (ReturnCode.SUCCESS, 3, 9)


def test_notify_waitsome_timeout():
    def main(ctx):
        ctx.segment_create(0, 32)
        ret, nid = yield from ctx.notify_waitsome(0, 0, 8, timeout=0.5)
        return (ret, nid)

    run = run_gaspi(main, n_ranks=1)
    assert run.result(0) == (ReturnCode.TIMEOUT, -1)


def test_wait_timeout_on_op_to_dead_rank():
    """Writes to a failed process only ever produce queue timeouts."""
    from repro.cluster import FaultPlan

    def main(ctx):
        ctx.segment_create(0, 32)
        if ctx.rank == 0:
            from repro.sim import Sleep
            yield Sleep(1.0)  # let the fault hit first
            ctx.write(0, 0, 8, 1, 0, 0)
            rets = []
            for _ in range(3):
                ret = yield from ctx.wait(0, timeout=0.5)
                rets.append(ret)
            return rets
        yield from ctx.barrier(timeout=0.1)  # rank 1 idles until killed

    plan = FaultPlan().kill_process(0.5, 1)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan)
    assert run.result(0) == [ReturnCode.TIMEOUT] * 3


def test_queue_purge_unsticks_queue():
    from repro.cluster import FaultPlan
    from repro.sim import Sleep

    def main(ctx):
        ctx.segment_create(0, 32)
        if ctx.rank == 0:
            yield Sleep(1.0)
            ctx.write(0, 0, 8, 1, 0, 0)
            ret = yield from ctx.wait(0, timeout=0.5)
            assert ret is ReturnCode.TIMEOUT
            dropped = ctx.queue_purge(0)
            ret2 = yield from ctx.wait(0, timeout=0.5)
            return (dropped, ret2)
        yield Sleep(100.0)

    plan = FaultPlan().kill_process(0.5, 1)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan)
    assert run.result(0) == (1, ReturnCode.SUCCESS)


def test_queue_full_returns_code():
    from repro.gaspi import GaspiConfig

    def main(ctx):
        ctx.segment_create(0, 32)
        if ctx.rank == 0:
            rets = [ctx.write(0, 0, 8, 1, 0, 0) for _ in range(3)]
            yield from ctx.wait(0)
            return rets
        yield from ctx.barrier()

    cfg = GaspiConfig(queue_depth=2)
    run = run_gaspi(main, n_ranks=2, config=cfg)
    assert run.result(0) == [ReturnCode.SUCCESS, ReturnCode.SUCCESS, ReturnCode.QUEUE_FULL]


def test_write_to_invalid_rank_raises():
    def main(ctx):
        ctx.segment_create(0, 32)
        if False:
            yield
        ctx.write(0, 0, 8, 99, 0, 0)

    with pytest.raises(GaspiUsageError):
        run_gaspi(main, n_ranks=2)


def test_separate_queues_track_independently():
    def main(ctx):
        ctx.segment_create(0, 32)
        if ctx.rank == 0:
            ctx.write(0, 0, 8, 1, 0, 0, queue_id=0)
            ctx.write(0, 8, 8, 1, 0, 8, queue_id=1)
            assert ctx.queue_size(0) == 1
            assert ctx.queue_size(1) == 1
            ret0 = yield from ctx.wait(0)
            ret1 = yield from ctx.wait(1)
            return (ret0, ret1, ctx.queue_size(0), ctx.queue_size(1))
        yield from ctx.barrier()

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) == (ReturnCode.SUCCESS, ReturnCode.SUCCESS, 0, 0)
