"""Tests for gaspi_write_list / gaspi_read_list and segment_delete."""

import numpy as np
import pytest

from repro.gaspi import GaspiUsageError, ReturnCode, run_gaspi


def test_write_list_all_entries_land():
    def main(ctx):
        ctx.segment_create(0, 64)
        ctx.segment_create(1, 64)
        if ctx.rank == 0:
            ctx.segment_view(0, np.float64)[:2] = [1.5, 2.5]
            ctx.segment_view(1, np.float64)[:1] = [9.0]
            ret = ctx.write_list(
                [
                    (0, 0, 8, 0, 32),   # seg0[0] -> remote seg0 @32
                    (0, 8, 8, 1, 0),    # seg0[1] -> remote seg1 @0
                    (1, 0, 8, 0, 40),   # seg1[0] -> remote seg0 @40
                ],
                dst_rank=1,
            )
            assert ret is ReturnCode.SUCCESS
            ret = yield from ctx.wait(0)
            assert ret is ReturnCode.SUCCESS
        yield from ctx.barrier()
        return (
            float(ctx.segment_view(0, np.float64, 32, 1)[0]),
            float(ctx.segment_view(1, np.float64, 0, 1)[0]),
            float(ctx.segment_view(0, np.float64, 40, 1)[0]),
        )

    run = run_gaspi(main, n_ranks=2)
    assert run.result(1) == (1.5, 2.5, 9.0)


def test_write_list_is_one_queue_entry():
    def main(ctx):
        ctx.segment_create(0, 64)
        if ctx.rank == 0:
            ctx.write_list([(0, 0, 8, 0, 8), (0, 8, 8, 0, 16)], 1)
            size = ctx.queue_size(0)
            yield from ctx.wait(0)
            return size
        yield from ctx.barrier()

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) == 1


def test_read_list_gathers_multiple_windows():
    def main(ctx):
        ctx.segment_create(0, 64)
        view = ctx.segment_view(0, np.float64)
        view[:4] = np.arange(4.0) + 10 * ctx.rank
        yield from ctx.barrier()
        if ctx.rank == 0:
            ret = ctx.read_list(
                [
                    (0, 32, 8, 0, 0),   # remote[0] -> local @32
                    (0, 40, 16, 0, 16), # remote[2:4] -> local @40
                ],
                src_rank=1,
            )
            assert ret is ReturnCode.SUCCESS
            ret = yield from ctx.wait(0)
            assert ret is ReturnCode.SUCCESS
            return list(ctx.segment_view(0, np.float64, 32, 3))

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) == [10.0, 12.0, 13.0]


def test_empty_list_rejected():
    def main(ctx):
        ctx.segment_create(0, 16)
        if False:
            yield
        ctx.write_list([], 0)

    with pytest.raises(GaspiUsageError):
        run_gaspi(main, n_ranks=1)


def test_list_ops_bounds_checked_locally():
    def main(ctx):
        ctx.segment_create(0, 16)
        if False:
            yield
        ctx.write_list([(0, 8, 16, 0, 0)], 0)  # past end of local segment

    with pytest.raises(GaspiUsageError):
        run_gaspi(main, n_ranks=1)


def test_segment_delete():
    def main(ctx):
        seg = ctx.segment_create(5, 32)
        assert 5 in ctx.segments
        ctx.segment_delete(5)
        if False:
            yield
        return 5 in ctx.segments

    run = run_gaspi(main, n_ranks=1)
    assert run.result(0) is False


def test_write_list_to_dead_rank_times_out():
    from repro.cluster import FaultPlan
    from repro.sim import Sleep

    def main(ctx):
        ctx.segment_create(0, 32)
        if ctx.rank == 0:
            yield Sleep(1.0)
            ctx.write_list([(0, 0, 8, 0, 0)], 1)
            ret = yield from ctx.wait(0, timeout=0.5)
            return ret
        yield Sleep(60.0)

    plan = FaultPlan().kill_process(0.5, 1)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan)
    assert run.result(0) is ReturnCode.TIMEOUT
