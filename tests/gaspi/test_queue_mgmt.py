"""Tests for dynamic queue management (gaspi_queue_create/delete)."""


from repro.gaspi import GaspiUsageError, ReturnCode, run_gaspi


def test_create_returns_fresh_usable_queue():
    def main(ctx):
        ctx.segment_create(0, 32)
        base = ctx.n_queues
        qid = ctx.queue_create()
        assert qid == base
        assert ctx.n_queues == base + 1
        if ctx.rank == 0:
            ctx.write(0, 0, 8, 1, 0, 0, queue_id=qid)
            ret = yield from ctx.wait(qid)
            return ret
        yield from ctx.barrier()

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) is ReturnCode.SUCCESS


def test_delete_last_created_queue():
    def main(ctx):
        if False:
            yield
        qid = ctx.queue_create()
        ctx.queue_delete(qid)
        return ctx.n_queues

    run = run_gaspi(main, n_ranks=1)
    assert run.result(0) == 16  # back to the initial count


def test_cannot_delete_initial_queues():
    def main(ctx):
        if False:
            yield
        try:
            ctx.queue_delete(0)
        except GaspiUsageError:
            return "rejected"

    assert run_gaspi(main, n_ranks=1).result(0) == "rejected"


def test_cannot_delete_non_last_queue():
    def main(ctx):
        if False:
            yield
        q1 = ctx.queue_create()
        q2 = ctx.queue_create()
        try:
            ctx.queue_delete(q1)
        except GaspiUsageError:
            return "rejected"

    assert run_gaspi(main, n_ranks=1).result(0) == "rejected"


def test_cannot_delete_queue_with_outstanding_ops():
    from repro.sim import Sleep
    from repro.cluster import FaultPlan

    def main(ctx):
        ctx.segment_create(0, 32)
        if ctx.rank == 0:
            yield Sleep(1.0)
            qid = ctx.queue_create()
            ctx.write(0, 0, 8, 1, 0, 0, queue_id=qid)  # hangs: target dead
            yield from ctx.wait(qid, timeout=0.2)
            try:
                ctx.queue_delete(qid)
            except GaspiUsageError:
                ctx.queue_purge(qid)
                ctx.queue_delete(qid)  # fine after purge
                return "purged-then-deleted"
        else:
            yield Sleep(60.0)

    plan = FaultPlan().kill_process(0.5, 1)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan)
    assert run.result(0) == "purged-then-deleted"
