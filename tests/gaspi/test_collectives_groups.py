"""Tests for groups, barrier, allreduce, group_commit semantics and costs."""

import numpy as np
import pytest

from repro.cluster import FaultPlan
from repro.gaspi import (
    GASPI_BLOCK,
    AllreduceOp,
    GaspiUsageError,
    Group,
    ReturnCode,
    run_gaspi,
)
from repro.sim import Sleep


def test_group_membership_api():
    g = Group(tag=5)
    g.add(2)
    g.add(0)
    assert g.members == (0, 2)
    assert 2 in g and 1 not in g
    assert g.size == 2
    assert g.identity() == (5, (0, 2))


def test_group_add_duplicate_and_invalid_rejected():
    g = Group()
    g.add(1)
    with pytest.raises(GaspiUsageError):
        g.add(1)
    with pytest.raises(GaspiUsageError):
        g.add(-1)


def test_group_add_after_commit_rejected():
    g = Group()
    g.add(0)
    g.committed = True
    with pytest.raises(GaspiUsageError):
        g.add(1)


def test_uncommitted_group_unusable_for_barrier():
    def main(ctx):
        g = ctx.group_create()
        g.add(ctx.rank)
        yield from ctx.barrier(g)

    with pytest.raises(GaspiUsageError):
        run_gaspi(main, n_ranks=1)


def test_barrier_synchronises_all_ranks():
    def main(ctx):
        yield Sleep(float(ctx.rank))  # staggered arrival: 0,1,2,3 s
        ret = yield from ctx.barrier()
        return (ret, ctx.now)

    run = run_gaspi(main, n_ranks=4)
    times = [run.result(r)[1] for r in range(4)]
    assert all(r[0] is ReturnCode.SUCCESS for r in run.results.values())
    # everyone leaves at the same instant, just after the last arrival (3 s)
    assert len(set(times)) == 1
    assert times[0] >= 3.0
    assert times[0] < 3.1


def test_barrier_timeout_then_retry_succeeds():
    def main(ctx):
        if ctx.rank == 1:
            yield Sleep(2.0)  # late
        attempts = 0
        while True:
            ret = yield from ctx.barrier(timeout=0.5)
            attempts += 1
            if ret is ReturnCode.SUCCESS:
                return (attempts, ctx.now)

    run = run_gaspi(main, n_ranks=2)
    a0, t0 = run.result(0)
    a1, t1 = run.result(1)
    assert a0 > 1      # rank 0 had to retry after timeouts
    assert a1 == 1
    assert t0 == t1


def test_consecutive_barriers_are_distinct_instances():
    def main(ctx):
        for _ in range(5):
            ret = yield from ctx.barrier()
            assert ret is ReturnCode.SUCCESS
        return ctx.now

    run = run_gaspi(main, n_ranks=3)
    assert run.world.engine.pending == 0


def test_allreduce_min_max_sum():
    def main(ctx):
        vals = np.array([float(ctx.rank), -float(ctx.rank)])
        ret, mn = yield from ctx.allreduce(vals, AllreduceOp.MIN)
        ret2, mx = yield from ctx.allreduce(vals, AllreduceOp.MAX)
        ret3, sm = yield from ctx.allreduce(vals, AllreduceOp.SUM)
        assert ReturnCode.SUCCESS is ret is ret2 is ret3
        return (list(mn), list(mx), list(sm))

    run = run_gaspi(main, n_ranks=4)
    for r in range(4):
        mn, mx, sm = run.result(r)
        assert mn == [0.0, -3.0]
        assert mx == [3.0, 0.0]
        assert sm == [6.0, -6.0]


def test_allreduce_on_subgroup():
    def main(ctx):
        if ctx.rank >= 2:
            return None
        g = ctx.group_create(tag=1)
        g.add(0)
        g.add(1)
        ret = yield from ctx.group_commit(g)
        assert ret is ReturnCode.SUCCESS
        ret, total = yield from ctx.allreduce(np.array([1.0]), AllreduceOp.SUM, g)
        return float(total[0])

    run = run_gaspi(main, n_ranks=4)
    assert run.result(0) == 2.0
    assert run.result(1) == 2.0
    assert run.result(2) is None


def test_group_commit_cost_linear_in_size():
    """OHF2: commit time grows linearly with group size."""
    def make(n):
        def main(ctx):
            g = ctx.group_create(tag=2)
            for r in range(n):
                g.add(r)
            yield from ctx.group_commit(g)
            return ctx.now
        return main

    t8 = run_gaspi(make(8), n_ranks=8).result(0)
    t64 = run_gaspi(make(64), n_ranks=64).result(0)
    # cost = base + per_rank * p  →  (t64 - base) ≈ 8 * (t8 - base)
    base = 0.050
    assert (t64 - base) / (t8 - base) == pytest.approx(8.0, rel=0.05)


def test_group_commit_blocks_until_all_members_commit():
    def main(ctx):
        g = ctx.group_create(tag=3)
        g.add(0)
        g.add(1)
        if ctx.rank == 1:
            yield Sleep(5.0)
        ret = yield from ctx.group_commit(g)
        return (ret, ctx.now)

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0)[1] == run.result(1)[1]
    assert run.result(0)[1] >= 5.0


def test_barrier_with_dead_member_times_out_forever():
    def main(ctx):
        if ctx.rank == 1:
            yield Sleep(100.0)
            return None
        outcomes = []
        for _ in range(3):
            ret = yield from ctx.barrier(timeout=0.5)
            outcomes.append(ret)
        return outcomes

    plan = FaultPlan().kill_process(0.1, 1)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan, until=50.0)
    assert run.result(0) == [ReturnCode.TIMEOUT] * 3


def test_collective_membership_mismatch_detected():
    def main(ctx):
        g = ctx.group_create(tag=4)
        g.add(ctx.rank)          # each rank builds a *different* group
        g.add((ctx.rank + 1) % 2)
        g.committed = True       # bypass commit to hit the engine check
        yield from ctx.barrier(g)

    # ranks disagree on membership order but sorted members match, so this
    # is actually consistent; a true mismatch needs different member sets
    run = run_gaspi(main, n_ranks=2)

    def bad(ctx):
        if ctx.rank == 2:
            return None
        g = ctx.group_create(tag=5)
        g.add(0)
        g.add(1)
        if ctx.rank == 0:
            g.add(2)  # rank 0 disagrees about membership
        g.committed = True
        ret = yield from ctx.barrier(g, timeout=1.0)
        return ret

    # mismatched memberships form distinct instances that never complete
    run2 = run_gaspi(bad, n_ranks=3)
    assert run2.result(0) is ReturnCode.TIMEOUT
    assert run2.result(1) is ReturnCode.TIMEOUT
    assert run2.world.engine.pending == 2


def test_barrier_rank_not_in_group_raises():
    def main(ctx):
        g = ctx.group_create(tag=6)
        g.add(0)
        g.committed = True
        yield from ctx.barrier(g)

    with pytest.raises(GaspiUsageError):
        run_gaspi(main, n_ranks=2)
