"""Batched FD probe sweeps and the aggregate queue-drain wait."""

import pytest

from repro.cluster import FaultPlan
from repro.gaspi import HealthState, ReturnCode, run_gaspi
from repro.sim import Sleep


@pytest.mark.parametrize("width", [1, 4])
def test_sweep_matches_sequential_pings(width):
    """One sweep over a mixed alive/dead round ≡ one proc_ping per target."""
    n_ranks = 6
    dead = {2, 4}

    def main(ctx):
        if ctx.rank == 0:
            yield Sleep(1.0)  # let the kills land
            targets = list(range(1, n_ranks))
            ret, results = yield from ctx.proc_ping_sweep(targets, width)
            assert ret is ReturnCode.SUCCESS
            assert [r for r, _a, _t0, _t1 in results] == targets
            health = {r: ctx.health_of(r) for r in targets}
            return ([(r, alive) for r, alive, _t0, _t1 in results], health)
        yield Sleep(30.0)

    plan = FaultPlan()
    for rank in dead:
        plan.kill_process(0.5, rank)
    run = run_gaspi(main, n_ranks=n_ranks, fault_plan=plan)
    outcomes, health = run.result(0)
    assert outcomes == [(r, r not in dead) for r in range(1, n_ranks)]
    # dead targets marked exactly as per-target proc_ping would have
    for rank in range(1, n_ranks):
        expected = HealthState.CORRUPT if rank in dead else HealthState.HEALTHY
        assert health[rank] is expected


def test_sweep_charges_error_timeout_for_dead_targets():
    """A newly dead target still costs the channel-teardown delay.

    The batching must not shortcut the paper's detection-latency model:
    the first probe of a dead rank resolves only after the transport's
    error timeout, so the sweep takes at least that long.
    """
    def main(ctx):
        if ctx.rank == 0:
            yield Sleep(1.0)
            t0 = ctx.now
            ret, results = yield from ctx.proc_ping_sweep([1, 2], 1)
            assert ret is ReturnCode.SUCCESS
            sweep = ctx.now - t0
            # per-probe timestamps bracket each probe within the sweep
            for _r, _alive, p0, p1 in results:
                assert t0 <= p0 <= p1 <= ctx.now
            return sweep
        yield Sleep(30.0)

    plan = FaultPlan().kill_process(0.5, 2)
    run = run_gaspi(main, n_ranks=3, fault_plan=plan)
    error_timeout = run.machine.transport.params.error_timeout
    assert run.result(0) >= error_timeout


def test_sweep_timestamps_are_sequential_groups():
    """width=1 probes run one after another: probe i starts at probe
    i-1's resolve time (the sequential-FD behaviour the sweep preserves)."""
    def main(ctx):
        if ctx.rank != 0:
            yield Sleep(5.0)
            return None
        ret, results = yield from ctx.proc_ping_sweep([1, 2, 3], 1)
        assert ret is ReturnCode.SUCCESS
        return [(t0, t1) for _r, _a, t0, t1 in results]

    spans = run_gaspi(main, n_ranks=4).result(0)
    for (_, prev_end), (start, _) in zip(spans, spans[1:]):
        assert start == prev_end


def test_scan_once_reports_sweep_failures():
    """The detector's scan harvests the sweep's dead set."""
    from repro.ft.detector import scan_once

    def main(ctx):
        if ctx.rank == 0:
            yield Sleep(1.0)
            failed = yield from scan_once(ctx, list(range(1, 5)), 2)
            return failed
        yield Sleep(30.0)

    plan = FaultPlan().kill_process(0.5, 3)
    assert run_gaspi(main, n_ranks=5, fault_plan=plan).result(0) == [3]


def test_wait_on_empty_queue_is_immediate():
    """Nothing outstanding: the aggregate drain takes zero virtual time."""
    def main(ctx):
        if False:
            yield
        t0 = ctx.now
        ret = yield from ctx.wait(0)
        return (ret, ctx.now - t0)

    assert run_gaspi(main, n_ranks=1).result(0) == (ReturnCode.SUCCESS, 0.0)


def test_wait_drains_many_ops_in_one_block():
    """A single wait covers every op outstanding at call time."""
    import numpy as np

    def main(ctx):
        ctx.segment_create(0, 256)
        if ctx.rank == 0:
            ctx.segment_view(0, np.uint8)[:] = 7
            for i in range(8):
                ret = ctx.write(0, i * 8, 8, 1, 0, i * 8)
                assert ret is ReturnCode.SUCCESS
            assert ctx.queue_size(0) == 8
            ret = yield from ctx.wait(0)
            yield from ctx.barrier()
            return (ret, ctx.queue_size(0))
        yield from ctx.barrier()
        return int(ctx.segment_view(0, np.uint8)[:64].sum())

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) == (ReturnCode.SUCCESS, 0)
    assert run.result(1) == 7 * 64
