"""Tests for the GASPI runtime launcher and run-result accessors."""

import pytest

from repro.cluster import MachineSpec
from repro.gaspi import GaspiConfig, run_gaspi
from repro.sim import Simulator, Sleep


def test_results_and_elapsed():
    def main(ctx):
        yield Sleep(float(ctx.rank))
        return ctx.rank * 10

    run = run_gaspi(main, n_ranks=3)
    assert run.results == {0: 0, 1: 10, 2: 20}
    assert run.result(2) == 20
    assert run.elapsed == 2.0
    assert run.machine.n_ranks == 3


def test_procs_per_node_placement():
    def main(ctx):
        if False:
            yield
        return ctx.world.machine.node_of(ctx.rank)

    run = run_gaspi(main, n_ranks=6, procs_per_node=2)
    assert [run.result(r) for r in range(6)] == [0, 0, 1, 1, 2, 2]


def test_ranks_not_multiple_of_procs_per_node_rejected():
    def main(ctx):
        if False:
            yield

    with pytest.raises(ValueError):
        run_gaspi(main, n_ranks=5, procs_per_node=2)


def test_machine_spec_overrides_rank_count():
    def main(ctx):
        if False:
            yield
        return ctx.num_ranks

    run = run_gaspi(main, n_ranks=99, machine_spec=MachineSpec(n_nodes=4))
    assert run.result(0) == 4


def test_custom_config_applies():
    def main(ctx):
        if False:
            yield
        return ctx.n_queues

    run = run_gaspi(main, n_ranks=1, config=GaspiConfig(n_queues=3))
    assert run.result(0) == 3


def test_external_simulator_reused():
    sim = Simulator()
    sim.schedule(0.5, lambda: None)  # pre-existing event coexists

    def main(ctx):
        yield Sleep(1.0)
        return ctx.now

    run = run_gaspi(main, n_ranks=1, sim=sim)
    assert run.sim is sim
    assert run.result(0) == 1.0


def test_until_bounds_unfinished_run():
    def main(ctx):
        yield Sleep(1000.0)
        return "finished"

    run = run_gaspi(main, n_ranks=1, until=5.0)
    assert run.result(0) is None
    assert run.elapsed == 5.0


def test_world_launch_binds_helper_to_rank():
    from repro.cluster import FaultPlan

    def helper():
        yield Sleep(1000.0)

    def main(ctx):
        ctx.world.launch(ctx.rank, helper(), name=f"helper-{ctx.rank}")
        yield Sleep(1000.0)

    plan = FaultPlan().kill_process(1.0, 0)
    run = run_gaspi(main, n_ranks=1, fault_plan=plan, until=10.0)
    helpers = [p for p in run.sim.processes if p.name == "helper-0"]
    assert len(helpers) == 1
    assert not helpers[0].alive  # died with its rank
