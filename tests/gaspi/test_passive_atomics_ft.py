"""Tests for passive communication, atomics, ping/kill and the state vector."""

import pytest

from repro.cluster import FaultPlan
from repro.gaspi import (
    GASPI_BLOCK,
    GASPI_TEST,
    GaspiUsageError,
    HealthState,
    ReturnCode,
    run_gaspi,
)
from repro.sim import Sleep


def test_passive_send_receive():
    def main(ctx):
        if ctx.rank == 0:
            ret = yield from ctx.passive_send(1, {"work": [1, 2, 3]})
            return ret
        ret, src, payload = yield from ctx.passive_receive(timeout=5.0)
        return (ret, src, payload)

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) is ReturnCode.SUCCESS
    assert run.result(1) == (ReturnCode.SUCCESS, 0, {"work": [1, 2, 3]})


def test_passive_receive_timeout():
    def main(ctx):
        ret, src, payload = yield from ctx.passive_receive(timeout=0.5)
        return (ret, src, payload)

    run = run_gaspi(main, n_ranks=1)
    assert run.result(0) == (ReturnCode.TIMEOUT, -1, None)


def test_passive_send_to_dead_rank_times_out():
    def main(ctx):
        if ctx.rank == 0:
            yield Sleep(1.0)
            ret = yield from ctx.passive_send(1, "x", timeout=0.5)
            return ret
        yield Sleep(100.0)

    plan = FaultPlan().kill_process(0.2, 1)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan)
    assert run.result(0) is ReturnCode.TIMEOUT


def test_passive_messages_fifo_per_receiver():
    def main(ctx):
        if ctx.rank == 0:
            for i in range(3):
                yield from ctx.passive_send(1, i)
            return None
        got = []
        for _ in range(3):
            _, _, payload = yield from ctx.passive_receive()
            got.append(payload)
        return got

    run = run_gaspi(main, n_ranks=2)
    assert run.result(1) == [0, 1, 2]


def test_atomic_fetch_add_serialises_counts():
    def main(ctx):
        ctx.segment_create(0, 64)
        yield from ctx.barrier()
        ret, old = yield from ctx.atomic_fetch_add(0, 0, 0, 1)
        assert ret is ReturnCode.SUCCESS
        yield from ctx.barrier()
        if ctx.rank == 0:
            import numpy as np
            return int(ctx.segment_view(0, np.int64)[0])
        return old

    run = run_gaspi(main, n_ranks=4)
    assert run.result(0) == 4  # all four increments landed
    olds = sorted(run.result(r) for r in range(1, 4))
    assert all(0 <= o < 4 for o in olds)


def test_atomic_compare_swap_only_one_winner():
    def main(ctx):
        ctx.segment_create(0, 64)
        yield from ctx.barrier()
        ret, old = yield from ctx.atomic_compare_swap(0, 0, 8, comparator=0,
                                                      new_value=ctx.rank + 1)
        return old

    run = run_gaspi(main, n_ranks=4)
    wins = [r for r in range(4) if run.result(r) == 0]
    assert len(wins) == 1  # exactly one rank saw the initial value


def test_atomic_alignment_enforced():
    def main(ctx):
        ctx.segment_create(0, 64)
        yield from ctx.atomic_fetch_add(0, 0, 3, 1)

    with pytest.raises(GaspiUsageError):
        run_gaspi(main, n_ranks=1)


def test_atomic_to_dead_rank_times_out():
    def main(ctx):
        ctx.segment_create(0, 64)
        if ctx.rank == 0:
            yield Sleep(1.0)
            ret, old = yield from ctx.atomic_fetch_add(1, 0, 0, 1, timeout=0.5)
            return (ret, old)
        yield Sleep(100.0)

    plan = FaultPlan().kill_process(0.2, 1)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan)
    assert run.result(0) == (ReturnCode.TIMEOUT, None)


def test_proc_ping_healthy():
    def main(ctx):
        if ctx.rank == 0:
            ret = yield from ctx.proc_ping(1, GASPI_BLOCK)
            return (ret, ctx.health_of(1))
        yield from ctx.barrier()

    run = run_gaspi(main, n_ranks=2)
    assert run.result(0) == (ReturnCode.SUCCESS, HealthState.HEALTHY)


def test_proc_ping_dead_returns_error_and_marks_corrupt():
    def main(ctx):
        if ctx.rank == 0:
            yield Sleep(1.0)
            ret = yield from ctx.proc_ping(1, GASPI_BLOCK)
            state = ctx.state_vec_get()
            return (ret, ctx.health_of(1), int(state[1]))
        yield Sleep(100.0)

    plan = FaultPlan().kill_process(0.2, 1)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan)
    ret, health, vec1 = run.result(0)
    assert ret is ReturnCode.ERROR
    assert health is HealthState.CORRUPT
    assert vec1 == HealthState.CORRUPT


def test_proc_ping_short_timeout_yields_timeout_not_error():
    def main(ctx):
        if ctx.rank == 0:
            yield Sleep(1.0)
            ret = yield from ctx.proc_ping(1, 0.5)  # < error_timeout (3.5 s)
            return (ret, ctx.health_of(1))
        yield Sleep(100.0)

    plan = FaultPlan().kill_process(0.2, 1)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan)
    # patience ran out before the transport diagnosed the failure
    assert run.result(0) == (ReturnCode.TIMEOUT, HealthState.HEALTHY)


def test_proc_kill_terminates_target():
    def main(ctx):
        if ctx.rank == 0:
            ret = yield from ctx.proc_kill(1, GASPI_BLOCK)
            yield Sleep(0.1)
            return (ret, ctx.world.machine.alive(1))
        yield Sleep(100.0)
        return "survived"

    run = run_gaspi(main, n_ranks=2)
    ret, alive = run.result(0)
    assert ret is ReturnCode.SUCCESS
    assert not alive
    assert run.result(1) is None  # killed before finishing


def test_proc_kill_already_dead_is_success():
    def main(ctx):
        if ctx.rank == 0:
            yield Sleep(1.0)
            ret = yield from ctx.proc_kill(1, GASPI_BLOCK)
            return ret
        yield Sleep(100.0)

    plan = FaultPlan().kill_process(0.2, 1)
    run = run_gaspi(main, n_ranks=2, fault_plan=plan)
    assert run.result(0) is ReturnCode.SUCCESS


def test_state_vector_starts_healthy():
    def main(ctx):
        if False:
            yield
        return [int(s) for s in ctx.state_vec_get()]

    run = run_gaspi(main, n_ranks=3)
    assert run.result(0) == [0, 0, 0]


def test_return_code_truthiness_is_a_bug_guard():
    with pytest.raises(TypeError):
        bool(ReturnCode.SUCCESS)


def test_gaspi_test_timeout_polls_without_blocking():
    def main(ctx):
        ctx.segment_create(0, 32)
        t0 = ctx.now
        ret, nid = yield from ctx.notify_waitsome(0, 0, 8, timeout=GASPI_TEST)
        return (ret, ctx.now - t0)

    run = run_gaspi(main, n_ranks=1)
    ret, dt = run.result(0)
    assert ret is ReturnCode.TIMEOUT
    assert dt == 0.0
