"""Unit tests for segments and notification boards (no simulator needed)."""

import numpy as np
import pytest

from repro.gaspi import GaspiUsageError, NotificationBoard, Segment, SegmentTable


class TestSegment:
    def test_zero_initialised(self):
        seg = Segment(0, 64)
        assert seg.size == 64
        assert not seg.buf.any()

    def test_read_write_roundtrip(self):
        seg = Segment(0, 64)
        seg.write_bytes(8, b"hello")
        assert seg.read_bytes(8, 5) == b"hello"
        assert seg.read_bytes(0, 8) == b"\0" * 8

    def test_bounds_checked(self):
        seg = Segment(0, 16)
        with pytest.raises(GaspiUsageError):
            seg.read_bytes(10, 8)
        with pytest.raises(GaspiUsageError):
            seg.write_bytes(-1, b"x")
        with pytest.raises(GaspiUsageError):
            seg.write_bytes(16, b"x")

    def test_view_is_zero_copy(self):
        seg = Segment(0, 64)
        view = seg.view(np.float64, offset=8, count=4)
        view[:] = [1.0, 2.0, 3.0, 4.0]
        again = seg.view(np.float64, offset=8, count=4)
        assert list(again) == [1.0, 2.0, 3.0, 4.0]

    def test_view_default_count_extends_to_end(self):
        seg = Segment(0, 64)
        assert seg.view(np.float64).shape == (8,)
        assert seg.view(np.int32, offset=4).shape == (15,)

    def test_view_bounds_checked(self):
        seg = Segment(0, 16)
        with pytest.raises(GaspiUsageError):
            seg.view(np.float64, offset=0, count=3)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(GaspiUsageError):
            Segment(0, 0)

    def test_write_bytes_accepts_any_buffer(self):
        seg = Segment(0, 64)
        seg.write_bytes(0, bytearray(b"abcd"))
        seg.write_bytes(4, memoryview(b"efgh"))
        seg.write_bytes(8, np.frombuffer(b"ijkl", dtype=np.uint8))
        assert seg.read_bytes(0, 12) == b"abcdefghijkl"

    def test_read_view_is_zero_copy_and_live(self):
        seg = Segment(0, 64)
        view = seg.read_view(8, 4)
        assert bytes(view) == b"\0" * 4
        seg.write_bytes(8, b"wxyz")  # lands after the view was taken
        assert bytes(view) == b"wxyz"
        with pytest.raises(GaspiUsageError):
            seg.read_view(62, 4)

    def test_read_bytes_is_a_snapshot(self):
        seg = Segment(0, 16)
        seg.write_bytes(0, b"before")
        snap = seg.read_bytes(0, 6)
        seg.write_bytes(0, b"after!")
        assert snap == b"before"


class TestSegmentTable:
    def test_create_get_delete(self):
        table = SegmentTable()
        seg = table.create(3, 128)
        assert table.get(3) is seg
        assert 3 in table
        assert len(table) == 1
        table.delete(3)
        assert 3 not in table

    def test_duplicate_id_rejected(self):
        table = SegmentTable()
        table.create(0, 16)
        with pytest.raises(GaspiUsageError):
            table.create(0, 16)

    def test_missing_segment_rejected(self):
        table = SegmentTable()
        with pytest.raises(GaspiUsageError):
            table.get(9)
        with pytest.raises(GaspiUsageError):
            table.delete(9)


class TestNotificationBoard:
    def test_post_and_pending(self):
        board = NotificationBoard(16)
        assert board.pending_in(0, 16) == -1
        board.post(5, 42)
        assert board.pending_in(0, 16) == 5
        assert board.pending_in(6, 10) == -1

    def test_lowest_pending_returned(self):
        board = NotificationBoard(16)
        board.post(9, 1)
        board.post(3, 1)
        assert board.pending_in(0, 16) == 3

    def test_reset_consumes_value(self):
        board = NotificationBoard(8)
        board.post(2, 77)
        assert board.reset(2) == 77
        assert board.reset(2) == 0
        assert board.pending_in(0, 8) == -1

    def test_zero_value_rejected(self):
        board = NotificationBoard(8)
        with pytest.raises(GaspiUsageError):
            board.post(0, 0)

    def test_out_of_range_rejected(self):
        board = NotificationBoard(8)
        with pytest.raises(GaspiUsageError):
            board.post(8, 1)
        with pytest.raises(GaspiUsageError):
            board.pending_in(0, 9)
        with pytest.raises(GaspiUsageError):
            board.pending_in(4, 0)

    def test_subscriber_woken_only_for_its_range(self):
        board = NotificationBoard(16)
        ev_low = board.subscribe(0, 4)
        ev_high = board.subscribe(8, 4)
        board.post(9, 1)
        assert not ev_low.fired
        assert ev_high.fired and ev_high.value == 9

    def test_unsubscribe(self):
        board = NotificationBoard(16)
        ev = board.subscribe(0, 16)
        board.unsubscribe(ev)
        board.post(0, 1)
        assert not ev.fired
