"""The runtime protocol sanitizer (``repro.gaspi.sanitize``).

Integration tests inject each protocol violation through real context
calls and expect :class:`SanitizerError` out of the run — the runtime
half of the pairing whose static half lives in
``tests/analysis/test_flowrules.py``.  Unit tests drive the
:class:`Sanitizer` state machine directly where orchestrating two ranks
would only add noise.
"""

import numpy as np
import pytest

from repro.gaspi import (
    GASPI_BLOCK,
    GaspiConfig,
    ReturnCode,
    SanitizerError,
    run_gaspi,
)
from repro.gaspi.sanitize import ENV_FLAG, Sanitizer, env_enabled
from repro.obs.tracer import NULL_TRACER, SANITIZER_VIOLATION, Tracer
from repro.sim import Simulator, Sleep

SAN = GaspiConfig(sanitize=True)


def run_sanitized(main, n_ranks=2, **kwargs):
    return run_gaspi(main, n_ranks=n_ranks, config=SAN, **kwargs)


# ----------------------------------------------------------------------
# attachment
# ----------------------------------------------------------------------
class TestAttachment:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)

        def main(ctx):
            if False:
                yield
            return ctx.world.sanitizer is None

        assert run_gaspi(main, n_ranks=1).result(0) is True

    def test_config_attaches(self):
        def main(ctx):
            if False:
                yield
            return ctx.world.sanitizer is not None

        assert run_sanitized(main, n_ranks=1).result(0) is True

    def test_env_flag_attaches(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

        def main(ctx):
            if False:
                yield
            return ctx.world.sanitizer is not None

        assert run_gaspi(main, n_ranks=1).result(0) is True

    def test_env_parsing(self):
        assert env_enabled({ENV_FLAG: "1"})
        assert env_enabled({ENV_FLAG: "yes"})
        assert not env_enabled({ENV_FLAG: ""})
        assert not env_enabled({ENV_FLAG: "0"})
        assert not env_enabled({ENV_FLAG: "false"})
        assert not env_enabled({ENV_FLAG: "off"})
        assert not env_enabled({})

    @pytest.mark.sanitize
    def test_pytest_marker_sets_the_env_flag(self):
        assert env_enabled()

        def main(ctx):
            if False:
                yield
            return ctx.world.sanitizer is not None

        assert run_gaspi(main, n_ranks=1).result(0) is True


# ----------------------------------------------------------------------
# violations through real context calls
# ----------------------------------------------------------------------
class TestViolations:
    def test_double_post_same_value_raises(self):
        def main(ctx):
            if False:
                yield
            ctx.segment_create(0, 64)
            if ctx.rank == 0:
                ctx.notify(1, 0, 5, value=3)
                ctx.notify(1, 0, 5, value=3)

        with pytest.raises(SanitizerError, match="double_post"):
            run_sanitized(main)

    def test_supersession_with_new_value_is_legal(self):
        def main(ctx):
            ctx.segment_create(0, 64)
            if ctx.rank == 0:
                ctx.notify(1, 0, 5, value=3)
                ctx.notify(1, 0, 5, value=4)
                ret = yield from ctx.wait(0)
                return ret
            yield from ctx.barrier()

        run = run_sanitized(main)
        assert run.result(0) is ReturnCode.SUCCESS
        assert run.world.sanitizer.violations == []

    def test_post_after_queue_full_without_drain_raises(self):
        cfg = GaspiConfig(sanitize=True, queue_depth=1)

        def main(ctx):
            ctx.segment_create(0, 64)
            if ctx.rank == 0:
                assert ctx.write(0, 0, 8, 1, 0, 0) is ReturnCode.SUCCESS
                assert ctx.write(0, 0, 8, 1, 0, 8) is ReturnCode.QUEUE_FULL
                # a slot frees organically as the RDMA completes, but the
                # Listing-1 debt (wait/queue_purge) was never paid
                yield Sleep(1.0)
                ctx.write(0, 0, 8, 1, 0, 8)

        with pytest.raises(SanitizerError, match="post_after_full"):
            run_gaspi(main, n_ranks=2, config=cfg)

    def test_wait_after_queue_full_pays_the_debt(self):
        cfg = GaspiConfig(sanitize=True, queue_depth=1)

        def main(ctx):
            ctx.segment_create(0, 64)
            if ctx.rank == 0:
                assert ctx.write(0, 0, 8, 1, 0, 0) is ReturnCode.SUCCESS
                assert ctx.write(0, 0, 8, 1, 0, 8) is ReturnCode.QUEUE_FULL
                yield from ctx.wait(0)
                ret = ctx.write(0, 0, 8, 1, 0, 8)
                assert ret is ReturnCode.SUCCESS
                yield from ctx.wait(0)
            yield from ctx.barrier()
            return "ok"

        run = run_gaspi(main, n_ranks=2, config=cfg)
        assert run.result(0) == "ok"
        assert run.world.sanitizer.violations == []

    def test_reset_of_never_posted_slot_raises(self):
        def main(ctx):
            if False:
                yield
            ctx.segment_create(0, 64)
            ctx.notify_reset(0, 9)

        with pytest.raises(SanitizerError, match="reset_never_posted"):
            run_sanitized(main, n_ranks=1)

    def test_segment_use_after_free_raises(self):
        def main(ctx):
            if False:
                yield
            ctx.segment_create(0, 64)
            ctx.segment_delete(0)
            ctx.segment(0)

        with pytest.raises(SanitizerError, match="segment_use_after_free"):
            run_sanitized(main, n_ranks=1)

    def test_rebind_after_delete_is_legal(self):
        def main(ctx):
            if False:
                yield
            ctx.segment_create(0, 64)
            ctx.segment_delete(0)
            ctx.segment_create(0, 128)  # recovery-epoch rebind
            return ctx.segment(0).size

        assert run_sanitized(main, n_ranks=1).result(0) == 128

    def test_segment_view_out_of_bounds_raises(self):
        def main(ctx):
            if False:
                yield
            ctx.segment_create(0, 16)
            ctx.segment_view(0, np.float64, offset=0, count=3)

        with pytest.raises(SanitizerError, match="segment_oob"):
            run_sanitized(main, n_ranks=1)


# ----------------------------------------------------------------------
# state machine details (unit level)
# ----------------------------------------------------------------------
class _StubSim:
    def __init__(self):
        self.now = 0.0
        self.tracer = NULL_TRACER


class _StubWorld:
    def __init__(self):
        self.sim = _StubSim()


def sanitizer():
    return Sanitizer(_StubWorld())


class TestStateMachine:
    def test_consumed_slot_may_be_reposted_identically(self):
        san = sanitizer()
        san.on_notify(0, 1, 0, 5, 3)
        san.on_notify_reset(1, 0, 5, old_value=3)
        san.on_notify(0, 1, 0, 5, 3)  # consumed: not a double post

    def test_reset_after_post_is_legal_even_when_raced_to_zero(self):
        # the flag was posted toward; a racing reset seeing 0 is benign
        san = sanitizer()
        san.on_notify(0, 1, 0, 5, 3)
        san.on_notify_reset(1, 0, 5, old_value=0)

    def test_queue_debt_is_per_rank_and_queue(self):
        san = sanitizer()
        san.on_queue_full(0, 2)
        san.on_post(0, 1)  # different queue: fine
        san.on_post(1, 2)  # different rank: fine
        with pytest.raises(SanitizerError):
            san.on_post(0, 2)

    def test_violation_recorded_before_raise(self):
        san = sanitizer()
        san.on_segment_delete(0, 3)
        with pytest.raises(SanitizerError):
            san.on_segment_access(0, 3, "segment")
        (kind, _t, rank, details) = san.violations[0]
        assert kind == "segment_use_after_free"
        assert rank == 0
        assert details["segment"] == 3


# ----------------------------------------------------------------------
# observability and clean-run guarantees
# ----------------------------------------------------------------------
class TestObservability:
    def test_violation_emits_trace_event(self):
        sim = Simulator()
        sim.tracer = Tracer()

        def main(ctx):
            if False:
                yield
            ctx.segment_create(0, 64)
            ctx.segment_delete(0)
            ctx.segment(0)

        with pytest.raises(SanitizerError):
            run_gaspi(main, n_ranks=1, config=SAN, sim=sim)
        events = [e for e in sim.tracer.events()
                  if e.etype == SANITIZER_VIOLATION]
        assert len(events) == 1
        assert events[0].fields["kind"] == "segment_use_after_free"

    def test_clean_notified_exchange_has_zero_violations(self):
        """A faithful paper-§III exchange passes the sanitizer silently."""

        def main(ctx):
            ctx.segment_create(0, 64)
            yield from ctx.barrier()
            peer = 1 - ctx.rank
            ctx.segment_view(0, np.float64, offset=0, count=4)[:] = ctx.rank
            ret = ctx.write_notify(0, 0, 32, peer, 0, 32, ctx.rank + 1,
                                   value=ctx.rank + 1)
            assert ret is ReturnCode.SUCCESS
            yield from ctx.wait(0)
            ret, nid = yield from ctx.notify_waitsome(
                0, peer + 1, 1, GASPI_BLOCK)
            assert ret is ReturnCode.SUCCESS
            value = ctx.notify_reset(0, nid)
            assert value == peer + 1
            yield from ctx.barrier()
            return float(ctx.segment_view(0, np.float64, offset=32,
                                          count=4)[0])

        run = run_sanitized(main)
        assert run.result(0) == 1.0
        assert run.result(1) == 0.0
        assert run.world.sanitizer.violations == []
