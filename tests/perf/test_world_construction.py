"""Flyweight world construction: equivalence and cost regression.

The flyweight build path (interned group memberships, arena-pooled
segments, lazy queue tables and notification boards, template-COW
control blocks) must be *observationally identical* to the historical
eager path — ``GaspiConfig(eager_world=True)`` forces the latter — and
must keep world construction O(world), never O(ranks), in allocations.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, MachineSpec, TransportParams
from repro.experiments.common import run_ft_scenario
from repro.gaspi.config import GaspiConfig
from repro.gaspi.runtime import GaspiWorld
from repro.obs.tracer import deactivate, install
from repro.sim import Simulator
from repro.workloads.spec import scaled_spec


# ----------------------------------------------------------------------
# equivalence: eager reference vs default flyweight path
# ----------------------------------------------------------------------
def _rows_and_trace(workers, kill, eager):
    """(experiment-row JSON blob, tracer event tuple) for one scenario."""
    spec = scaled_spec(workers=workers, iterations=80,
                       name=f"equiv-{workers}")
    tracer = install(capacity=8192, bulk_capacity=8192)
    try:
        out = run_ft_scenario(
            f"equiv-{workers}", spec, kill_times=[kill], n_spares=4,
            gaspi_config=GaspiConfig(eager_world=eager))
    finally:
        deactivate()
    worker_rows = out.result.worker_results()
    rows = {
        "total_runtime": out.total_runtime,
        "computation_time": out.computation_time,
        "redo_work_time": out.redo_work_time,
        "reinit_time": out.reinit_time,
        "detection_time": out.detection_time,
        "n_recoveries": out.n_recoveries,
        "ckpt_phases": out.ckpt_phases,
        "timelines": {str(k): w.get("timeline", [])
                      for k, w in sorted(worker_rows.items())},
        "counters": {str(k): w.get("counters", {})
                     for k, w in sorted(worker_rows.items())},
    }
    blob = json.dumps(rows, sort_keys=True, default=repr).encode()
    return blob, tuple(tracer.events())


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sampled_from([16, 64]), st.data())
def test_eager_and_flyweight_worlds_equivalent(workers, data):
    """Byte-identical rows and identical tracer streams at 16/64 ranks."""
    kill_rank = data.draw(st.integers(0, workers - 1), label="kill_rank")
    kill_t = data.draw(st.sampled_from([8.5, 12.5, 24.0]), label="kill_t")
    flyweight = _rows_and_trace(workers, (kill_t, kill_rank), eager=False)
    eager = _rows_and_trace(workers, (kill_t, kill_rank), eager=True)
    assert flyweight[0] == eager[0]
    assert flyweight[1] == eager[1]


def test_eager_world_materialises_up_front():
    """The reference path really is eager (else the test above is vacuous)."""
    world = _fresh_world(8, eager=True)
    ctx = world.contexts[0]
    assert ctx._queues is not None
    # a private membership container, not the world's shared interned one
    assert ctx.group_all._members is not world.members_all


# ----------------------------------------------------------------------
# construction cost: O(world), not O(ranks)
# ----------------------------------------------------------------------
def _fresh_world(n_ranks, eager=False):
    sim = Simulator()
    machine = Machine(sim, MachineSpec(n_nodes=n_ranks, procs_per_node=1,
                                       transport_params=TransportParams()))
    return GaspiWorld(sim, machine, config=GaspiConfig(eager_world=eager))


def test_group_all_membership_interned_across_contexts():
    world = _fresh_world(256)
    members = world.contexts[0].group_all.members
    assert members is world.members_all
    assert all(ctx.group_all.members is members
               for ctx in world.contexts.values())


def test_queue_tables_stay_lazy_until_first_touch():
    world = _fresh_world(256)
    assert all(ctx._queues is None for ctx in world.contexts.values())
    world.contexts[7]._queue(0)  # first touch builds rank 7's table only
    assert world.contexts[7]._queues is not None
    assert world.contexts[8]._queues is None


def test_arena_allocations_scale_with_shapes_not_ranks():
    """Every rank's same-shaped data-plane segment shares one pool."""
    world = _fresh_world(256)
    for ctx in world.contexts.values():
        _ = ctx.segment_create_pooled(7, 4096).buf  # touch: materialise
    assert world.arena.allocations == 1
    for ctx in world.contexts.values():
        _ = ctx.segment_create_pooled(8, 1 << 16).buf
    assert world.arena.allocations == 2  # one more shape, one more pool


def test_arena_recycled_slot_is_rezeroed():
    world = _fresh_world(4)
    ctx = world.contexts[0]
    seg = ctx.segment_create_pooled(7, 64)
    seg.buf[:] = 0xAB
    ctx.segments.delete(7)
    again = ctx.segment_create_pooled(7, 64)
    assert not again.buf.any()


def test_scenario_world_stays_o_world_in_allocations():
    """A full FT run at 64 ranks performs O(shapes) pool allocations."""
    spec = scaled_spec(workers=64, iterations=40, name="arena-64")
    out = run_ft_scenario("arena-64", spec, kill_times=[(12.5, 3)],
                          n_spares=4)
    world = out.result.run.world
    # mirror windows + replica/pfs planes: a handful of shapes, never
    # one allocation per rank (the pre-flyweight behaviour was ~n_ranks)
    assert 1 <= world.arena.allocations <= 8
    assert world.arena.allocations < world.n_ranks // 4
