"""Weak-scaling harness units: kernel benches run in both modes, the
ladder structure is complete and explicit about skips, the summary picks
the reference scale, and the CI smoke validates end to end (scaled down
here so the tier-1 suite stays fast)."""

import pytest

from repro.perf import scaling
from repro.perf.bench import (LOWER_IS_BETTER, TARGET_FLOOR, TARGET_SPEEDUP,
                              _speedup)


@pytest.mark.parametrize("mode", ["vectorized", "scalar"])
def test_kernel_benches_run_in_both_modes(mode):
    fd = scaling.bench_fd_scan_us_per_rank(16, mode, rounds=2)
    rb = scaling.bench_group_rebuild_us_per_rank(16, mode, rounds=2)
    cm = scaling.bench_ckpt_mirror_us_per_rank(16, mode, rounds=2)
    assert fd > 0.0 and rb > 0.0 and cm > 0.0


def test_run_scaling_structure_without_scenarios():
    out = scaling.run_scaling("vectorized", ranks=[8, 16], scenarios=False)
    assert out["mode"] == "vectorized"
    assert out["ranks"] == [8, 16]
    assert set(out["fd_scan_us_per_rank"]) == {"8", "16"}
    assert set(out["group_rebuild_us_per_rank"]) == {"8", "16"}
    assert set(out["ckpt_mirror_us_per_rank"]) == {"8", "16"}
    # construction metrics are measured at every rung — the kernel loop
    # no longer skips large rungs behind a memory-bound cap
    assert set(out["world_build_s"]) == {"8", "16"}
    assert set(out["world_peak_mb"]) == {"8", "16"}
    assert out["scenario_wall_s"] == {}
    assert out["ranks_max_at_60s"] == 0
    assert out["skipped"] == []


def test_summary_metrics_pick_reference_or_largest():
    table = {"16": 4.0, "256": 2.0, "1024": 1.0}
    out = scaling.summary_metrics({
        "fd_scan_us_per_rank": table,
        "group_rebuild_us_per_rank": {"16": 8.0, "64": 6.0},
        "ckpt_mirror_us_per_rank": {"16": 40.0, "256": 20.0},
        "scenario_wall_s": {"16": 0.1},
        "ranks_max_at_60s": 64,
        "world_build_s": {"16": 0.001, "1024": 0.03},
        "world_peak_mb": {"16": 0.02, "1024": 1.2},
    })
    assert out["fd_scan_us_per_rank"] == 2.0      # the 256-rank reference
    assert out["group_rebuild_us_per_rank"] == 6.0  # largest measured rung
    assert out["ckpt_mirror_us_per_rank"] == 20.0  # the 256-rank reference
    assert out["ranks_max_at_60s"] == 64.0
    # construction metrics surface at the ladder *top*, not the reference
    assert out["world_build_s"] == 0.03
    assert out["world_peak_mb"] == 1.2


def test_scaling_metrics_are_tracked_lower_is_better():
    for key in ("fd_scan_us_per_rank", "group_rebuild_us_per_rank"):
        assert key in LOWER_IS_BETTER
        assert TARGET_SPEEDUP[key] == 5.0
    assert "ckpt_mirror_us_per_rank" in LOWER_IS_BETTER
    assert TARGET_SPEEDUP["ckpt_mirror_us_per_rank"] == 4.0
    assert "world_build_s" in LOWER_IS_BETTER
    assert "world_peak_mb" in LOWER_IS_BETTER
    assert TARGET_FLOOR["ranks_max_at_60s"] == 1024
    # the inversion: a drop from 4 us to 1 us must read as a 4x speedup
    ratios = _speedup({"fd_scan_us_per_rank": 4.0},
                      {"fd_scan_us_per_rank": 1.0})
    assert ratios["fd_scan_us_per_rank"] == 4.0


def test_sweep_parallel_speedup_null_on_single_core(monkeypatch):
    """1-core boxes report null, not a meaningless 1.0 baseline."""
    from repro.perf import bench

    monkeypatch.setattr(bench.os, "cpu_count", lambda: 1)
    assert bench.bench_sweep_scaling() is None


def test_scenario_ladder_runs_a_recovery_at_small_scale():
    wall = scaling.scenario_wall_s(16, "vectorized")
    assert wall > 0.0


def test_smoke_passes_at_reduced_scale(capsys):
    assert scaling.run_smoke(workers=16, wall_cap_s=60.0,
                             bulk_capacity=512) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "1 recovery" in out
