"""Batched ping-sweep equivalence: the single-callback round-priced path
must reproduce the sequential callback-chained sweep exactly — same
per-probe timings, same dead sets, same completion time — including when
targets die mid-sweep, and its lazy result sequence must behave like the
reference tuple list."""

import pytest

from repro.sim import Simulator, WaitEvent
from repro.cluster import Machine, MachineSpec, TransportParams
from repro.cluster.transport import SweepResults


def make_machine(n_nodes=8, error_timeout=3.5):
    sim = Simulator()
    spec = MachineSpec(
        n_nodes=n_nodes,
        procs_per_node=1,
        transport_params=TransportParams(error_timeout=error_timeout),
    )
    return sim, Machine(sim, spec)


def run_sweep(batched, n_nodes=8, width=1, kills=(), pre_broken=(),
              targets=None):
    """One sweep from rank 0; returns (ok, [tuples], end_time)."""
    sim, m = make_machine(n_nodes=n_nodes)
    for rank in pre_broken:
        m.kill_process(rank)
    for t, rank in kills:
        sim.schedule(t, lambda r=rank: m.kill_process(r))
    if targets is None:
        targets = list(range(1, n_nodes))

    def prober():
        if pre_broken:
            # one earlier probe per pre-broken target teaches rank 0's
            # transport the channel is broken (the fast-fail case)
            for rank in pre_broken:
                ev = m.transport.post_ping(0, rank)
                yield WaitEvent(ev, timeout=10.0)
        ev = m.transport.post_ping_sweep(0, targets, width=width,
                                         batched=batched)
        ok, (success, results) = yield WaitEvent(ev, timeout=120.0)
        return ok and success, list(results), sim.now

    p = sim.spawn(prober())
    sim.run()
    return p.result


@pytest.mark.parametrize("width", [1, 3])
def test_all_alive_matches_sequential(width):
    assert (run_sweep(batched=True, width=width)
            == run_sweep(batched=False, width=width))


@pytest.mark.parametrize("width", [1, 3])
def test_dead_before_sweep_matches_sequential(width):
    kw = dict(width=width, kills=[(0.0, 3), (0.0, 5)])
    batched = run_sweep(batched=True, **kw)
    sequential = run_sweep(batched=False, **kw)
    assert batched == sequential
    dead = [r for r, alive, _t0, _t1 in batched[1] if not alive]
    assert dead == [3, 5]


@pytest.mark.parametrize("width", [1, 3])
def test_mid_sweep_death_matches_sequential(width):
    # rank 6 dies while its own probe is in flight: the batched fixed
    # point must stretch the schedule exactly like the sequential chain
    # does (death re-arms the finalize past the first estimate).  The
    # kill time is read off an all-alive run so it always lands inside
    # rank 6's probe window regardless of the timing parameters.
    _, alive_results, _ = run_sweep(batched=True, width=width)
    t0, t1 = next((s, e) for r, _a, s, e in alive_results if r == 6)
    kw = dict(width=width, kills=[((t0 + t1) / 2, 6)])
    batched = run_sweep(batched=True, **kw)
    sequential = run_sweep(batched=False, **kw)
    assert batched == sequential
    assert [r for r, alive, _, _ in batched[1] if not alive] == [6]


def test_known_broken_channel_fast_fails_identically():
    kw = dict(kills=[(0.0, 2)], pre_broken=(2,))
    assert run_sweep(batched=True, **kw) == run_sweep(batched=False, **kw)


def test_partitioned_target_counts_as_dead():
    sim, m = make_machine()
    m.network.isolate_node(4)

    def prober():
        ev = m.transport.post_ping_sweep(0, [1, 4, 6], batched=True)
        ok, (success, results) = yield WaitEvent(ev, timeout=60.0)
        return ok and success, [(r, alive) for r, alive, _, _ in results]

    p = sim.spawn(prober())
    sim.run()
    ok, flags = p.result
    assert ok and flags == [(1, True), (4, False), (6, True)]


def test_empty_sweep_succeeds_immediately():
    ok, results, end = run_sweep(batched=True, targets=[])
    assert ok and results == [] and end == 0.0


def test_sweep_results_sequence_protocol():
    ok, _, _ = run_sweep(batched=True)
    sim, m = make_machine()
    sim.schedule(0.0, lambda: m.kill_process(2))
    holder = []

    def prober():
        ev = m.transport.post_ping_sweep(0, [1, 2, 3], batched=True)
        _ok, (_success, results) = yield WaitEvent(ev, timeout=60.0)
        holder.append(results)

    sim.spawn(prober())
    sim.run()
    res = holder[0]
    assert isinstance(res, SweepResults)
    assert len(res) == 3
    assert res.failed == [2]
    assert res[0][0] == 1 and res[-1][0] == 3
    assert res[1][1] is False
    assert res[0:2] == list(res)[0:2]
    assert res == list(res)  # equal to its own tuple materialization
