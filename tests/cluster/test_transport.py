"""Tests for the transport layer: RDMA, ping, control, kill semantics."""

import pytest

from repro.sim import Simulator, Sleep, WaitEvent
from repro.cluster import Machine, MachineSpec, TransportParams


def make_machine(n_nodes=4, procs_per_node=1, error_timeout=3.5):
    sim = Simulator()
    spec = MachineSpec(
        n_nodes=n_nodes,
        procs_per_node=procs_per_node,
        transport_params=TransportParams(error_timeout=error_timeout),
    )
    return sim, Machine(sim, spec)


def test_rdma_applies_at_target_and_completes():
    sim, m = make_machine()
    target_memory = {"x": 0}

    def writer():
        ev = m.transport.post_rdma(0, 1, 1024, lambda: target_memory.__setitem__("x", 99))
        ok, (success, _) = yield WaitEvent(ev, timeout=1.0)
        return (ok, success, target_memory["x"])

    p = sim.spawn(writer())
    sim.run()
    assert p.result == (True, True, 99)


def test_rdma_to_dead_process_never_completes():
    sim, m = make_machine()
    m.kill_process(1)

    def writer():
        ev = m.transport.post_rdma(0, 1, 1024, lambda: None)
        ok, _ = yield WaitEvent(ev, timeout=2.0)
        return ok

    p = sim.spawn(writer())
    sim.run()
    assert p.result is False  # only timeouts, no error — paper's worker view


def test_rdma_target_dies_in_flight_not_applied():
    sim, m = make_machine()
    applied = []

    def writer():
        ev = m.transport.post_rdma(0, 1, 10**9, lambda: applied.append(1))
        ok, _ = yield WaitEvent(ev, timeout=5.0)
        return ok

    p = sim.spawn(writer())
    # the 1 GB transfer takes ~0.3s; kill the target at 0.1s, mid-flight
    sim.schedule(0.1, lambda: m.kill_process(1))
    sim.run()
    assert p.result is False
    assert applied == []


def test_ping_healthy_returns_quickly():
    sim, m = make_machine()

    def pinger():
        ev = m.transport.post_ping(0, 1)
        ok, (alive, _) = yield WaitEvent(ev, timeout=1.0)
        return (ok, alive, sim.now)

    p = sim.spawn(pinger())
    sim.run()
    ok, alive, t = p.result
    assert ok and alive
    assert 0.001 <= t < 0.01  # ~1 ms ping overhead dominates


def test_ping_dead_process_errors_after_error_timeout():
    sim, m = make_machine(error_timeout=3.5)
    m.kill_process(2)

    def pinger():
        ev = m.transport.post_ping(0, 2)
        ok, (alive, _) = yield WaitEvent(ev, timeout=10.0)
        return (ok, alive, sim.now)

    p = sim.spawn(pinger())
    sim.run()
    ok, alive, t = p.result
    assert ok and not alive
    assert t == pytest.approx(3.5, abs=0.1)


def test_second_ping_to_broken_target_fails_fast():
    sim, m = make_machine()
    m.kill_process(2)
    times = []

    def pinger():
        for _ in range(2):
            t0 = sim.now
            ev = m.transport.post_ping(0, 2)
            yield WaitEvent(ev, timeout=10.0)
            times.append(sim.now - t0)

    sim.spawn(pinger())
    sim.run()
    assert times[0] == pytest.approx(3.5, abs=0.1)
    assert times[1] < 0.01


def test_forget_broken_restores_full_ping():
    sim, m = make_machine()
    m.kill_process(2)

    def pinger():
        ev = m.transport.post_ping(0, 2)
        yield WaitEvent(ev, timeout=10.0)
        m.transport.forget_broken(0, 2)
        t0 = sim.now
        ev = m.transport.post_ping(0, 2)
        ok, (alive, _) = yield WaitEvent(ev, timeout=10.0)
        return (alive, sim.now - t0)

    p = sim.spawn(pinger())
    sim.run()
    alive, dt = p.result
    assert not alive
    assert dt == pytest.approx(3.5, abs=0.1)


def test_ping_across_broken_link_errors_false_positive_case():
    """A healthy process behind a cut link looks failed to the pinger."""
    sim, m = make_machine()
    m.network.break_link(m.node_of(0), m.node_of(3))

    def pinger():
        ev = m.transport.post_ping(0, 3)
        ok, (alive, _) = yield WaitEvent(ev, timeout=10.0)
        return alive

    p = sim.spawn(pinger())
    sim.run()
    assert p.result is False
    assert m.alive(3)  # ... but the process is actually alive


def test_control_message_delivered_to_channel():
    sim, m = make_machine()
    got = []

    def receiver():
        ep = m.transport.endpoint(1)
        ok, msg = yield from ep.inbox("hello").get(timeout=1.0)
        got.append((ok, msg.src, msg.kind, msg.payload))

    def sender():
        ev = m.transport.post_control(0, 1, "hello", {"a": 1})
        ok, _ = yield WaitEvent(ev, timeout=1.0)
        return ok

    sim.spawn(receiver())
    p = sim.spawn(sender())
    sim.run()
    assert p.result is True
    assert got == [(True, 0, "hello", {"a": 1})]


def test_control_to_dead_process_never_acks():
    sim, m = make_machine()
    m.kill_process(1)

    def sender():
        ev = m.transport.post_control(0, 1, "hello", None)
        ok, _ = yield WaitEvent(ev, timeout=2.0)
        return ok

    p = sim.spawn(sender())
    sim.run()
    assert p.result is False


def test_kill_request_fail_stops_target():
    sim, m = make_machine()

    def victim():
        yield Sleep(100.0)

    vp = sim.spawn(victim())
    m.bind_process(2, vp)

    def killer():
        ev = m.transport.post_kill(0, 2)
        ok, _ = yield WaitEvent(ev, timeout=1.0)
        return ok

    p = sim.spawn(killer())
    sim.run()
    assert p.result is True
    assert not m.alive(2)
    assert not vp.alive


def test_kill_already_dead_is_success():
    sim, m = make_machine()
    m.kill_process(2)

    def killer():
        ev = m.transport.post_kill(0, 2)
        ok, _ = yield WaitEvent(ev, timeout=1.0)
        return ok

    p = sim.spawn(killer())
    sim.run()
    assert p.result is True


def test_kill_across_broken_link_does_not_kill():
    sim, m = make_machine()
    m.network.break_link(m.node_of(0), m.node_of(3))

    def killer():
        ev = m.transport.post_kill(0, 3)
        ok, _ = yield WaitEvent(ev, timeout=1.0)
        return ok

    sim.spawn(killer())
    sim.run()
    assert m.alive(3)  # unreachable: this source cannot enforce the kill


def test_duplicate_rank_registration_rejected():
    sim, m = make_machine()
    with pytest.raises(ValueError):
        m.transport.register(0, 0)
