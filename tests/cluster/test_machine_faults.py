"""Tests for machine assembly and fault injection."""

import numpy as np
import pytest

from repro.sim import Simulator, Sleep
from repro.cluster import (
    FaultInjector,
    FaultPlan,
    KillNode,
    KillProcess,
    Machine,
    MachineSpec,
    exponential_node_failures,
)


def test_rank_placement_round_robin_by_node():
    sim = Simulator()
    m = Machine(sim, MachineSpec(n_nodes=3, procs_per_node=2))
    assert m.n_ranks == 6
    assert m.node_of(0) == 0 and m.node_of(1) == 0
    assert m.node_of(2) == 1 and m.node_of(5) == 2
    assert m.ranks_on(1) == [2, 3]


def test_kill_process_marks_dead_and_kills_coroutine():
    sim = Simulator()
    m = Machine(sim, MachineSpec(n_nodes=2))
    stages = []

    def worker():
        stages.append("start")
        yield Sleep(100.0)
        stages.append("unreachable")

    p = sim.spawn(worker())
    m.bind_process(1, p)
    sim.schedule(1.0, lambda: m.kill_process(1))
    sim.run()
    assert stages == ["start"]
    assert not m.alive(1)
    assert m.alive(0)
    assert m.alive_ranks() == [0]


def test_kill_process_idempotent_and_notifies_listeners():
    sim = Simulator()
    m = Machine(sim, MachineSpec(n_nodes=2))
    deaths = []
    m.on_death(deaths.append)
    m.kill_process(1)
    m.kill_process(1)
    assert deaths == [1]


def test_kill_node_kills_all_ranks_and_wipes_store():
    sim = Simulator()
    m = Machine(sim, MachineSpec(n_nodes=2, procs_per_node=3))
    m.node(1).local_store["ckpt"] = b"data"
    m.kill_node(1)
    assert not m.node(1).alive
    assert m.node(1).local_store == {}
    assert m.alive_ranks() == [0, 1, 2]


def test_fault_plan_builder_and_ordering():
    plan = (
        FaultPlan()
        .kill_node(5.0, 1)
        .kill_process(2.0, 3)
        .break_link(1.0, 0, 1)
        .heal_link(4.0, 0, 1)
    )
    times = [e.time for e in plan.sorted_events()]
    assert times == [1.0, 2.0, 4.0, 5.0]
    assert len(plan) == 4


def test_fault_injector_applies_at_exact_times():
    sim = Simulator()
    m = Machine(sim, MachineSpec(n_nodes=4))
    log = []
    plan = FaultPlan().kill_process(2.0, 1).kill_node(5.0, 3)
    inj = FaultInjector(sim, m, plan, on_inject=lambda e: log.append((sim.now, type(e).__name__)))
    inj.arm()
    sim.run(until=3.0)
    assert not m.alive(1)
    assert m.alive(3)
    sim.run()
    assert not m.node(3).alive
    assert log == [(2.0, "KillProcess"), (5.0, "KillNode")]
    assert [type(e) for e in inj.injected] == [KillProcess, KillNode]


def test_link_fault_via_injector_breaks_reachability():
    sim = Simulator()
    m = Machine(sim, MachineSpec(n_nodes=4))
    plan = FaultPlan().break_link(1.0, 0, 2).heal_link(3.0, 0, 2)
    FaultInjector(sim, m, plan).arm()
    sim.run(until=2.0)
    assert not m.network.reachable(0, 2)
    sim.run()
    assert m.network.reachable(0, 2)


def test_exponential_failures_reproducible_and_bounded():
    def gen(seed):
        rng = np.random.default_rng(seed)
        return exponential_node_failures(rng, n_nodes=100, mttf_node=50.0,
                                         horizon=10.0, max_failures=3)

    a, b = gen(1), gen(1)
    assert [(e.time, e.node_id) for e in a.events] == [(e.time, e.node_id) for e in b.events]
    assert len(a) <= 3
    assert all(e.time < 10.0 for e in a.events)
    times = [e.time for e in a.sorted_events()]
    assert times == sorted(times)


def test_exponential_failures_rejects_bad_mttf():
    with pytest.raises(ValueError):
        exponential_node_failures(np.random.default_rng(0), 4, 0.0, 1.0)


def test_fault_event_describe_strings():
    assert "rank=3" in KillProcess(time=1.0, rank=3).describe()
    assert "node" in KillNode(time=2.0, node_id=1).describe()
