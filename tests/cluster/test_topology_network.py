"""Tests for topologies and the dynamic network model."""

import numpy as np
import pytest

from repro.cluster import Network, NetworkParams, TwoLevelTopology, UniformTopology


def test_uniform_topology_symmetric():
    topo = UniformTopology(latency=2e-6, bandwidth=1e9)
    assert topo.latency(0, 5) == topo.latency(5, 0) == 2e-6
    assert topo.bandwidth(1, 2) == 1e9


def test_uniform_loopback_cheaper():
    topo = UniformTopology()
    assert topo.latency(3, 3) < topo.latency(3, 4)
    assert topo.bandwidth(3, 3) > topo.bandwidth(3, 4)


def test_two_level_same_switch_cheaper():
    topo = TwoLevelTopology(nodes_per_switch=4)
    same = topo.latency(0, 3)   # both under switch 0
    cross = topo.latency(0, 4)  # switch 0 vs switch 1
    assert same < cross
    assert topo.switch_of(3) == 0
    assert topo.switch_of(4) == 1


def test_two_level_rejects_bad_switch_size():
    with pytest.raises(ValueError):
        TwoLevelTopology(nodes_per_switch=0)


def test_transfer_time_alpha_beta():
    net = Network(UniformTopology(latency=1e-6, bandwidth=1e9),
                  NetworkParams(per_message_overhead=0.0))
    t_small = net.transfer_time(0, 1, 0)
    t_big = net.transfer_time(0, 1, 10**9)
    assert t_small == pytest.approx(1e-6)
    assert t_big == pytest.approx(1.0 + 1e-6)


def test_transfer_time_includes_overhead():
    net = Network(UniformTopology(latency=1e-6, bandwidth=1e9),
                  NetworkParams(per_message_overhead=5e-6))
    assert net.transfer_time(0, 1, 0) == pytest.approx(6e-6)


def test_jitter_bounded_and_reproducible():
    def draw(seed):
        net = Network(
            UniformTopology(latency=1e-6, bandwidth=1e9),
            NetworkParams(jitter=0.1, per_message_overhead=0.0),
            rng=np.random.default_rng(seed),
        )
        return [net.transfer_time(0, 1, 1000) for _ in range(100)]

    a, b = draw(3), draw(3)
    assert a == b
    base = 1e-6 + 1000 / 1e9
    assert all(0.9 * base <= t <= 1.1 * base for t in a)
    assert len(set(a)) > 1  # jitter actually varies


def test_break_and_heal_link():
    net = Network()
    assert net.reachable(0, 1)
    net.break_link(0, 1)
    assert not net.reachable(0, 1)
    assert not net.reachable(1, 0)  # bidirectional
    assert net.reachable(0, 2)     # other paths unaffected
    net.heal_link(1, 0)            # order-insensitive key
    assert net.reachable(0, 1)


def test_isolate_node_cuts_all_links():
    net = Network()
    net.isolate_node(2)
    assert not net.reachable(2, 0)
    assert not net.reachable(5, 2)
    assert net.reachable(0, 1)
    net.rejoin_node(2)
    assert net.reachable(2, 0)


def test_loopback_always_reachable():
    net = Network()
    net.isolate_node(4)
    assert net.reachable(4, 4)
