#!/usr/bin/env python3
"""Repo entry point for ftlint (adds ``src`` to ``sys.path``).

Usage: ``python tools/ftlint.py src tests`` — see ``ANALYSIS.md``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.ftlint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
