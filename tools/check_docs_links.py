#!/usr/bin/env python3
"""Verify that the docs' internal references resolve.

Checks, for each markdown file given (default: the top-level docs):

* inline markdown links ``[text](target)`` whose target is not an
  external URL or a pure anchor must point at an existing file or
  directory (relative to the doc's location);
* inline-code references to markdown files (`` `SOMETHING.md` ``) must
  exist — the docs cross-reference each other this way.

Fenced code blocks are ignored.  Exit status 0 when everything
resolves, 1 otherwise (one line per broken reference).

Usage::

    python tools/check_docs_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_DOCS = [
    "README.md", "ARCHITECTURE.md", "OBSERVABILITY.md", "EXPERIMENTS.md",
    "DESIGN.md", "CHANGELOG.md", "ANALYSIS.md", "CHECKPOINTS.md",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_MD_RE = re.compile(r"`([A-Za-z0-9_./-]+\.md)`")
EXTERNAL = ("http://", "https://", "mailto:")


def strip_fences(text: str) -> str:
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_file(path: Path) -> list:
    text = strip_fences(path.read_text(encoding="utf-8"))
    errors = []
    targets = set()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        targets.add(target.split("#")[0])
    for match in CODE_MD_RE.finditer(text):
        targets.add(match.group(1))
    for target in sorted(t for t in targets if t):
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken reference "
                          f"-> {target}")
    return errors


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    files = [Path(a).resolve() for a in argv] if argv else [
        REPO_ROOT / name for name in DEFAULT_DOCS
    ]
    errors = []
    for path in files:
        if not path.exists():
            errors.append(f"missing doc: {path}")
            continue
        errors.extend(check_file(path))
    for err in errors:
        print(err)
    if not errors:
        print(f"OK: {len(files)} doc(s), all internal references resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
