"""Table I regeneration: FD ping-scan time and detection latency vs nodes.

Paper shape targets: scan time linear at ~1 ms per pinged process
(0.010 s at 8 nodes -> 0.255 s at 256); detection+ack flat around ~5 s
regardless of node count (scan period 3 s + channel-error timeout).
"""

import math

import pytest

from repro.experiments.report import format_table
from repro.experiments.table1 import (
    HEADERS,
    as_rows,
    measure_detection,
    measure_scan_time,
    run_table1,
)

from conftest import bench_scale

NODES = (8, 16, 32, 64) if bench_scale() == "small" else (8, 16, 32, 64, 128, 256)
RUNS = 3 if bench_scale() == "small" else 10


@pytest.mark.parametrize("n_nodes", NODES)
def test_ping_scan_time(sim_benchmark, n_nodes):
    scan = sim_benchmark(measure_scan_time, n_nodes)
    sim_benchmark.extra_info["virtual_scan_time_s"] = round(scan, 5)
    # ~1 ms per pinged process + ~2 ms setup
    expected = 0.002 + 0.001 * (n_nodes - 1)
    assert scan == pytest.approx(expected, rel=0.15)


@pytest.mark.parametrize("n_nodes", NODES)
def test_detection_latency(sim_benchmark, n_nodes):
    latency = sim_benchmark(measure_detection, n_nodes, seed=n_nodes)
    sim_benchmark.extra_info["virtual_detection_s"] = round(latency, 3)
    # flat in node count: scan phase U(0,3) + 3.5 s error timeout (+ scan)
    assert 3.4 <= latency <= 8.5


def test_table1_full(sim_benchmark, capsys):
    rows = sim_benchmark(run_table1, NODES, RUNS)
    with capsys.disabled():
        print()
        print(format_table(HEADERS, as_rows(rows),
                           title=f"Table I (runs={RUNS})"))
    scans = [r.avg_scan_time for r in rows]
    # linear growth in node count ...
    ratio = (scans[-1] - scans[0]) / (NODES[-1] - NODES[0])
    assert ratio == pytest.approx(0.001, rel=0.15)
    # ... while detection latency stays flat
    means = [r.detection_mean for r in rows]
    assert max(means) - min(means) < 2.5
    for r in rows:
        assert r.detection_std < 2.0
