"""Figure 4 regeneration: the seven runtime scenarios, as benchmarks.

Each benchmark runs one scenario's full simulation; the paper-relevant
numbers (virtual runtime and its decomposition) land in ``extra_info``.
``test_figure4_table`` prints the complete figure as a table.

Paper shape targets (Sect. VI): CP and HC overhead ~0; each failure adds a
roughly constant overhead (detection + re-init + redo-work); k
simultaneous failures cost ~one failure with the threaded FD.
"""

import pytest

from repro.experiments.figure4 import (
    HEADERS,
    as_rows,
    default_spec,
    kill_schedule,
    run_bare,
    run_figure4,
)
from repro.experiments.common import run_ft_scenario
from repro.experiments.report import format_table

from conftest import bench_scale

SPEC = default_spec("tiny" if bench_scale() == "small" else "paper")


def _info(bench, outcome):
    bench.extra_info["virtual_runtime_s"] = round(outcome.total_runtime, 3)
    for key, value in outcome.components().items():
        bench.extra_info[f"virtual_{key}_s"] = round(value, 3)
    return outcome


def test_bar1_baseline_no_hc_no_cp(sim_benchmark):
    total = sim_benchmark(run_bare, SPEC, False)
    sim_benchmark.extra_info["virtual_runtime_s"] = round(total, 3)


def test_bar2_no_hc_with_cp(sim_benchmark):
    total = sim_benchmark(run_bare, SPEC, True)
    sim_benchmark.extra_info["virtual_runtime_s"] = round(total, 3)
    baseline = run_bare(SPEC, False)
    assert total <= baseline * 1.001  # checkpointing ~free (paper: 0.01%)


def test_bar3_with_hc_with_cp(sim_benchmark):
    outcome = sim_benchmark(run_ft_scenario, "with HC, with CP", SPEC)
    _info(sim_benchmark, outcome)
    assert outcome.n_recoveries == 0


@pytest.mark.parametrize("k", [1, 2, 3])
def test_bars_4_to_6_sequential_failures(sim_benchmark, k):
    outcome = sim_benchmark(
        run_ft_scenario, f"{k} fail recovery", SPEC,
        kill_times=kill_schedule(SPEC, k),
    )
    _info(sim_benchmark, outcome)
    assert outcome.n_recoveries == k
    assert outcome.redo_work_time > 0
    assert outcome.detection_time > 0


def test_bar7_three_simultaneous_failures(sim_benchmark):
    outcome = sim_benchmark(
        run_ft_scenario, "3 sim. fail recovery", SPEC,
        kill_times=kill_schedule(SPEC, 3, simultaneous=True),
        fd_threads=8,
    )
    _info(sim_benchmark, outcome)
    assert outcome.n_recoveries == 1  # one scan caught all three


def test_figure4_table(sim_benchmark, capsys):
    """The whole figure in one go, printed as the paper's bar data."""
    outcomes = sim_benchmark(run_figure4, SPEC)
    with capsys.disabled():
        print()
        print(format_table(
            HEADERS, as_rows(outcomes),
            title=f"Figure 4 ({SPEC.n_workers} workers, "
                  f"{SPEC.n_iterations} iterations)",
        ))
    base = outcomes[2].total_runtime
    per_failure = outcomes[3].total_runtime - base
    assert outcomes[4].total_runtime - base == pytest.approx(
        2 * per_failure, rel=0.35)
    assert outcomes[6].total_runtime <= outcomes[3].total_runtime * 1.1
