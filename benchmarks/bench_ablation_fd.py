"""Ablation: FD strategy comparison (paper Sect. IV-A b, qualitative).

Shape targets: the dedicated FD sends zero worker-side pings and adds zero
failure-free overhead; all-to-all sends O(p^2) pings per period and adds
measurable overhead; the neighbor ring sits in between.
"""

from repro.experiments.ablations import run_fd_strategy_comparison
from repro.experiments.report import format_table


def test_fd_strategy_comparison(sim_benchmark, capsys):
    outcomes = sim_benchmark(run_fd_strategy_comparison, 32, 60, 0.414, 3.0)
    with capsys.disabled():
        print()
        print(format_table(
            ["strategy", "runtime[s]", "overhead[%]", "pings",
             "detect latency[s]"],
            [[o.strategy, o.runtime, o.overhead_pct, o.pings_total,
              o.detection_latency] for o in outcomes],
            title="FD strategies (32 ranks, check every 3 s)"))
    dedicated, all2all, ring = outcomes
    sim_benchmark.extra_info["all_to_all_overhead_pct"] = round(
        all2all.overhead_pct, 3)
    sim_benchmark.extra_info["ring_overhead_pct"] = round(ring.overhead_pct, 3)

    assert dedicated.pings_total == 0
    assert dedicated.overhead_pct == 0.0
    assert all2all.pings_total > 10 * ring.pings_total
    assert all2all.overhead_pct > ring.overhead_pct >= 0.0
    # all strategies do detect the failure eventually
    assert all2all.detection_latency is not None
    assert ring.detection_latency is not None
