"""Wall-clock throughput of the simulation substrate itself.

The DES kernel's event rate bounds how big a cluster/iteration count the
paper-scale experiments can replay; these benchmarks track it.
"""

import pytest

from repro.sim import Channel, Simulator, Sleep
from repro.gaspi import run_gaspi, AllreduceOp


def test_event_throughput(benchmark):
    """Raw heap throughput: 100k timer events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 100_000


def test_process_switch_throughput(benchmark):
    """Generator-process context switches: 20 procs x 5k sleeps."""

    def run():
        sim = Simulator()

        def proc():
            for _ in range(5000):
                yield Sleep(1.0)

        for _ in range(20):
            sim.spawn(proc())
        sim.run()
        return sim.now

    assert benchmark(run) == 5000.0


def test_channel_pingpong(benchmark):
    def run():
        sim = Simulator()
        a, b = Channel("a"), Channel("b")

        def left():
            for _ in range(10_000):
                a.put(1)
                yield from b.get()

        def right():
            for _ in range(10_000):
                yield from a.get()
                b.put(1)

        sim.spawn(left())
        sim.spawn(right())
        sim.run()

    benchmark(run)


def test_gaspi_allreduce_round(benchmark):
    """A full GASPI world doing 200 allreduces on 32 ranks."""
    import numpy as np

    def run():
        def main(ctx):
            for step in range(200):
                ret, _ = yield from ctx.allreduce(
                    np.array([float(step)]), AllreduceOp.SUM
                )
            return ctx.now

        return run_gaspi(main, n_ranks=32).result(0)

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
