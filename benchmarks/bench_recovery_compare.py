"""Extension benchmark: non-shrinking (paper) vs ULFM shrinking recovery.

Shape targets: ULFM detects faster (communication-triggered, ~error
timeout) while the paper's FD adds scan latency; both reconstruction
costs grow linearly with rank count; the shrinking scheme additionally
forces a domain redistribution the non-shrinking scheme avoids.
"""

import pytest

from repro.experiments.recovery_compare import HEADERS, as_rows, run_comparison
from repro.experiments.report import format_table


def test_recovery_comparison(sim_benchmark, capsys):
    sizes = (8, 16, 32, 64)
    rows = sim_benchmark(run_comparison, sizes)
    with capsys.disabled():
        print()
        print(format_table(HEADERS, as_rows(rows),
                           title="Non-shrinking vs shrinking recovery"))
    for row in rows:
        # communication-triggered detection beats the periodic scan
        assert row.ulfm_detection < row.gaspi_detection
        # both schemes' reconstruction grows with size (checked pairwise)
    rebuilds = [r.gaspi_reconstruction for r in rows]
    shrinks = [r.ulfm_reconstruction for r in rows]
    assert rebuilds == sorted(rebuilds)
    assert shrinks == sorted(shrinks)
    # linear growth of the GASPI group commit (rebuild dominated by it)
    assert rebuilds[-1] / rebuilds[0] == pytest.approx(
        sizes[-1] / sizes[0], rel=0.35)
    sim_benchmark.extra_info["gaspi_rebuild_64"] = round(rebuilds[-1], 3)
    sim_benchmark.extra_info["ulfm_shrink_64"] = round(shrinks[-1], 3)
