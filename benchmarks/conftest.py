"""Benchmark-suite configuration.

Simulation benchmarks measure *wall* time of the harness (one round — the
simulations are deterministic) and attach the *virtual-time* results the
paper reports as ``extra_info``, so ``--benchmark-only`` output carries
both.  Set ``REPRO_BENCH_SCALE=paper`` to run the Figure-4/Table-I benches
at full paper scale (minutes of wall time) instead of the fast presets.
"""

import os

import pytest


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture
def sim_benchmark(benchmark):
    """Run a deterministic simulation once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    run.extra_info = benchmark.extra_info
    return run
