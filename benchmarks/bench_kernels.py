"""Wall-clock microbenchmarks of the numerical kernels (pytest-benchmark).

These measure the *host* performance of the library's hot paths — the CSR
spMVM, the QL tridiagonal eigensolver, matrix generation and checkpoint
serialisation — the pieces a user pays for in real time.
"""

import numpy as np
import pytest

from repro.checkpoint import pack_checkpoint, unpack_checkpoint
from repro.solvers import lanczos_sequential, ql_eigenvalues
from repro.spmvm import CSRMatrix, RowPartition
from repro.spmvm.comm_setup import split_columns
from repro.spmvm.matgen import GrapheneSheet, Laplacian2D


@pytest.fixture(scope="module")
def graphene_matrix():
    return GrapheneSheet(120, 120, disorder=1.0, seed=0).full()  # 28.8k rows


def test_csr_spmv(benchmark, graphene_matrix):
    x = np.random.default_rng(0).standard_normal(graphene_matrix.n_cols)
    y = benchmark(graphene_matrix.spmv, x)
    assert y.shape == (graphene_matrix.n_rows,)
    benchmark.extra_info["nnz"] = graphene_matrix.nnz
    benchmark.extra_info["mflop_per_call"] = round(
        2 * graphene_matrix.nnz / 1e6, 2)


def test_csr_from_coo(benchmark):
    rng = np.random.default_rng(1)
    n, nnz = 20000, 200000
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    mat = benchmark(CSRMatrix.from_coo, rows, cols, vals, (n, n))
    assert mat.nnz <= nnz


def test_ql_eigenvalues(benchmark):
    rng = np.random.default_rng(2)
    n = 2000
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    eig = benchmark(ql_eigenvalues, d, e)
    assert eig.shape == (n,)
    assert eig.sum() == pytest.approx(d.sum(), rel=1e-8)


def test_lanczos_sequential(benchmark, graphene_matrix):
    alphas, betas = benchmark(lanczos_sequential, graphene_matrix, 50)
    assert len(alphas) == 50


def test_graphene_generation(benchmark):
    gen = GrapheneSheet(200, 200, disorder=1.0, seed=3)  # 80k rows
    block = benchmark(gen.generate_rows, 0, 20000)
    assert block.n_rows == 20000


def test_comm_setup_split(benchmark):
    gen = Laplacian2D(300, 300)
    partition = RowPartition(gen.n_rows, 16)
    block = gen.generate_rows(*partition.range_of(7))
    remapped, plan = benchmark(split_columns, block, partition, 7)
    assert plan.halo_size > 0


def test_checkpoint_pack(benchmark):
    payload = {
        "v_prev": np.random.default_rng(4).standard_normal(500_000),
        "v_cur": np.random.default_rng(5).standard_normal(500_000),
        "alpha": np.arange(3500.0),
        "beta": np.arange(3500.0),
    }
    blob = benchmark(pack_checkpoint, payload)
    assert len(blob) > 8_000_000
    benchmark.extra_info["mb"] = round(len(blob) / 1e6, 2)


def test_checkpoint_unpack(benchmark):
    payload = {"v": np.random.default_rng(6).standard_normal(1_000_000)}
    blob = pack_checkpoint(payload)
    out = benchmark(unpack_checkpoint, blob)
    assert np.array_equal(out["v"], payload["v"])


def test_checkpoint_pack_into_reused_buffer(benchmark):
    """The zero-copy staging path CheckpointLib uses per write."""
    from repro.checkpoint import pack_checkpoint_into, packed_size

    payload = {
        "v_prev": np.random.default_rng(4).standard_normal(500_000),
        "v_cur": np.random.default_rng(5).standard_normal(500_000),
        "alpha": np.arange(3500.0),
        "beta": np.arange(3500.0),
    }
    buf = bytearray(packed_size(payload))
    written = benchmark(pack_checkpoint_into, payload, buf)
    assert written == len(buf) > 8_000_000


def test_checkpoint_unpack_zero_copy(benchmark):
    payload = {"v": np.random.default_rng(6).standard_normal(1_000_000)}
    blob = pack_checkpoint(payload)
    out = benchmark(unpack_checkpoint, blob, copy=False)
    assert np.array_equal(out["v"], payload["v"])
