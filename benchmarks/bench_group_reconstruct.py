"""Ablation: gaspi_group_commit blocking cost vs group size (OHF2).

The paper calls the commit's blocking cost "non-negligible"; the model
(calibrated at ~27 ms/rank) puts the 256-rank rebuild at ~7 s — the bulk
of the measured ~10 s re-initialisation overhead.
"""

import pytest

from repro.experiments.ablations import run_group_commit_scaling
from repro.experiments.report import format_table


def test_group_commit_scaling(sim_benchmark, capsys):
    sizes = (8, 16, 32, 64, 128, 256)
    rows = sim_benchmark(run_group_commit_scaling, sizes)
    with capsys.disabled():
        print()
        print(format_table(["group size", "commit[s]"], rows,
                           title="gaspi_group_commit scaling"))
    times = dict(rows)
    sim_benchmark.extra_info["commit_256_s"] = round(times[256], 3)
    # linear scaling (the connection-establishment model)
    base = 0.050
    assert (times[256] - base) / (times[8] - base) == pytest.approx(32, rel=0.05)
    # the 256-rank commit dominates the paper's ~10 s re-init overhead
    assert 5.0 <= times[256] <= 10.0
