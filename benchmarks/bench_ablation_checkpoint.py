"""Ablations around checkpointing (paper Sect. IV-E / VI claims).

* interval sweep: redo-work shrinks with the interval; because the
  neighbor-level checkpoint is nearly free, frequent checkpointing wins;
* destination: neighbor-level blocks the application for ~nothing, while
  synchronous PFS-level checkpoints cost orders of magnitude more.
"""

import pytest

from repro.experiments.ablations import (
    run_checkpoint_destination,
    run_checkpoint_interval_sweep,
)
from repro.experiments.report import format_table
from repro.workloads import scaled_spec


def test_checkpoint_interval_sweep(sim_benchmark, capsys):
    spec = scaled_spec(workers=16, iterations=400, name="bench-cp-sweep")
    outcomes = sim_benchmark(run_checkpoint_interval_sweep, spec,
                             (25, 50, 100, 200, 400))
    with capsys.disabled():
        print()
        print(format_table(
            ["interval", "runtime[s]", "redo-work[s]", "checkpoints"],
            [[o.interval, o.runtime, o.redo_work, o.checkpoints_taken]
             for o in outcomes],
            title="Checkpoint interval sweep (one failure)"))
    redo = [o.redo_work for o in outcomes]
    assert redo[0] < redo[-1]          # shorter interval => less redo
    runtimes = [o.runtime for o in outcomes]
    assert min(runtimes) == runtimes[0]  # frequent CP wins (CP ~free)
    sim_benchmark.extra_info["best_interval"] = outcomes[0].interval


def test_checkpoint_destination(sim_benchmark, capsys):
    outcomes = sim_benchmark(run_checkpoint_destination)
    with capsys.disabled():
        print()
        print(format_table(
            ["destination", "blocked[s]", "overhead[%]"],
            [[o.destination, o.checkpoint_time_total, o.overhead_pct]
             for o in outcomes],
            title="Checkpoint destination"))
    neighbor, pfs = outcomes
    sim_benchmark.extra_info["neighbor_overhead_pct"] = round(
        neighbor.overhead_pct, 4)
    sim_benchmark.extra_info["pfs_overhead_pct"] = round(pfs.overhead_pct, 4)
    # neighbor-level ~free (paper: 0.01%); PFS markedly more expensive
    assert neighbor.overhead_pct < 0.1
    assert pfs.overhead_pct > 5 * neighbor.overhead_pct
