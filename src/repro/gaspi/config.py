"""Configuration of the GASPI runtime instance."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gaspi.collectives import CollectiveCosts


@dataclass
class GaspiConfig:
    """Knobs of one GASPI world.

    ``n_queues`` defaults to GPI-2's 16; the paper's threaded fault detector
    monitors pings "in parallel on different communication queues", which the
    FT layer implements by issuing concurrent pings up to its thread count.
    """

    n_queues: int = 16
    queue_depth: int = 4096
    n_notifications: int = 1024
    collective_costs: CollectiveCosts = field(default_factory=CollectiveCosts)
    #: virtual seconds of local CPU time charged per posted one-sided op
    #: (descriptor preparation); keeps million-op runs honest but cheap.
    post_overhead: float = 0.2e-6
    #: attach the runtime protocol sanitizer (``repro.gaspi.sanitize``)
    #: to the world; also switched on globally by ``REPRO_SANITIZE=1``.
    #: Catches double-posted live notifications, posts after
    #: ``QUEUE_FULL`` without drain, and segment use-after-free/OOB at
    #: the moment they happen, raising ``SanitizerError``.
    sanitize: bool = False
    #: force the historical eager construction path: every context
    #: materialises its queue table, state vector, private ``group_all``
    #: membership and segment buffers at build time instead of on first
    #: touch.  Only useful as the reference side of equivalence tests —
    #: virtual-time behaviour is identical either way.
    eager_world: bool = False
