"""The collective engine: matches collective calls across ranks.

Collectives in GASPI are timed-out and must be retried with identical
parameters after a timeout.  The engine keys each collective *instance* by
``(kind, group identity, sequence)``; a rank's arrival is idempotent, so a
retry after timeout re-joins the same pending instance.  When the last
member arrives the instance completes for everyone at

    ``max(arrival time) + cost(kind, group size, payload)``

with costs from :class:`CollectiveCosts`.  A member that never arrives
(because it failed) leaves the instance pending forever — the survivors
only ever see ``GASPI_TIMEOUT``, which is precisely the failure mode the
paper's fault detector exists to resolve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim import Event, Simulator
from repro.gaspi.constants import AllreduceOp
from repro.gaspi.errors import GaspiUsageError
from repro.gaspi.groups import _Members


@dataclass
class CollectiveCosts:
    """Timing model of collective operations (see DESIGN.md calibration).

    * barrier/allreduce: dissemination pattern, ``ceil(log2 p)`` rounds.
    * group_commit: GPI-2 (re-)establishes connection state per member —
      the dominant, *linear-in-p* cost the paper observes as OHF2
      (~27 ms/rank → ≈ 7 s at 256 ranks).
    """

    round_latency: float = 10.0e-6
    bandwidth: float = 3.2e9
    commit_per_rank: float = 0.027
    commit_base: float = 0.050

    def __post_init__(self) -> None:
        # collective costs are pure in (p, nbytes); memoize — the spMVM
        # loop pays one allreduce per iteration with identical arguments.
        self._barrier_cache: Dict[int, float] = {}
        self._allreduce_cache: Dict[Tuple[int, int], float] = {}

    def barrier(self, p: int) -> float:
        cost = self._barrier_cache.get(p)
        if cost is None:
            cost = max(1, math.ceil(math.log2(max(2, p)))) * self.round_latency
            self._barrier_cache[p] = cost
        return cost

    def allreduce(self, p: int, nbytes: int) -> float:
        key = (p, nbytes)
        cost = self._allreduce_cache.get(key)
        if cost is None:
            rounds = max(1, math.ceil(math.log2(max(2, p))))
            cost = rounds * (self.round_latency + nbytes / self.bandwidth)
            self._allreduce_cache[key] = cost
        return cost

    def commit(self, p: int) -> float:
        return self.commit_base + self.commit_per_rank * p


def _reduce(op: AllreduceOp, contributions: List[np.ndarray]) -> np.ndarray:
    stack = np.stack(contributions)
    if op is AllreduceOp.MIN:
        return stack.min(axis=0)
    if op is AllreduceOp.MAX:
        return stack.max(axis=0)
    if op is AllreduceOp.SUM:
        return stack.sum(axis=0)
    raise GaspiUsageError(f"unknown allreduce op {op!r}")  # pragma: no cover


class _Instance:
    """One in-flight collective instance."""

    __slots__ = ("members", "arrived", "events", "finished")

    def __init__(self, members: Tuple[int, ...]) -> None:
        self.members = members
        self.arrived: Dict[int, Any] = {}
        self.events: Dict[int, Event] = {}
        self.finished = False


class CollectiveEngine:
    """World-global matcher for barrier / allreduce / group_commit."""

    def __init__(self, sim: Simulator, costs: Optional[CollectiveCosts] = None) -> None:
        self.sim = sim
        self.costs = costs or CollectiveCosts()
        self._instances: Dict[Tuple, _Instance] = {}

    # ------------------------------------------------------------------
    def arrive(
        self,
        kind: str,
        group_identity: Tuple,
        seq: int,
        rank: int,
        members: Tuple[int, ...],
        contribution: Any = None,
        finisher: Optional[Callable[[List[Any]], Any]] = None,
        cost: float = 0.0,
    ) -> Event:
        """Join collective instance ``(kind, group_identity, seq)``.

        Returns this rank's completion event (stable across retries).  When
        the final member arrives, ``finisher`` combines the contributions
        (in member order) into the shared result and every member's event
        fires ``cost`` seconds later.
        """
        # interned memberships carry a shared set — O(1) instead of an
        # O(p) tuple scan, which a timed-out commit retries p times
        if isinstance(members, _Members):
            if rank not in members.member_set():
                raise GaspiUsageError(
                    f"rank {rank} not a member of {group_identity}")
        elif rank not in members:
            raise GaspiUsageError(f"rank {rank} not a member of {group_identity}")
        key = (kind, group_identity, seq)
        inst = self._instances.get(key)
        if inst is None:
            inst = _Instance(members)
            self._instances[key] = inst
        # interned memberships make the match an identity check; the
        # content compare only runs for non-interned callers
        elif inst.members is not members and inst.members != members:
            raise GaspiUsageError(
                f"collective {key} called with mismatched membership: "
                f"{inst.members} vs {members}"
            )

        event = inst.events.get(rank)
        if event is None:
            # unnamed: formatting a per-arrival name is measurable on the
            # once-per-iteration allreduce path and only aids debugging
            event = Event()
            inst.events[rank] = event
        if rank not in inst.arrived:
            inst.arrived[rank] = contribution

        if not inst.finished and len(inst.arrived) == len(inst.members):
            inst.finished = True
            ordered = [inst.arrived[m] for m in inst.members]
            result = finisher(ordered) if finisher is not None else None

            def complete() -> None:
                for member in inst.members:
                    ev = inst.events.get(member)
                    if ev is None:
                        ev = Event()
                        inst.events[member] = ev
                    ev.succeed(result)
                self._instances.pop(key, None)

            self.sim.schedule(cost, complete)
        return event

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of collective instances still waiting for members."""
        return len(self._instances)

    _finishers: Dict[AllreduceOp, Callable] = {}

    @staticmethod
    def reduce_finisher(op: AllreduceOp) -> Callable[[List[np.ndarray]], np.ndarray]:
        fin = CollectiveEngine._finishers.get(op)
        if fin is None:
            fin = lambda contributions: _reduce(op, contributions)
            CollectiveEngine._finishers[op] = fin
        return fin
