"""Exceptions for *local programming errors* in GASPI usage.

Runtime conditions (timeouts, dead peers) are reported through
:class:`repro.gaspi.constants.ReturnCode` as in the C API; conditions that
can only arise from incorrect calls (bad offsets, unknown segments, invalid
notification values) raise :class:`GaspiUsageError` instead — in Python an
exception is a far clearer signal for a bug than an error code.
"""


class GaspiUsageError(Exception):
    """A GASPI procedure was called with locally-invalid arguments."""
