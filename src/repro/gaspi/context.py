"""Per-rank GASPI handle: the API the application generators program to.

Blocking procedures are generators (call with ``yield from``) returning a
:class:`ReturnCode` (possibly inside a tuple); non-blocking posts are plain
methods.  Timeouts are virtual seconds; ``GASPI_BLOCK`` blocks forever and
``GASPI_TEST`` only polls.  This mirrors the C API shape used throughout
the paper's listings, e.g.::

    ret = yield from ctx.proc_ping(rem_id, GASPI_BLOCK)
    if ret is ReturnCode.ERROR:
        avoid_list[rem_id] = 1
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Generator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim import WaitEvent
from repro.gaspi.constants import (
    GASPI_BLOCK,
    AllreduceOp,
    HealthState,
    ReturnCode,
)
from repro.gaspi.errors import GaspiUsageError
from repro.gaspi.groups import Group
from repro.gaspi.queues import Queue
from repro.gaspi.segments import Segment, SegmentTable
from repro.gaspi.state import StateVector

if TYPE_CHECKING:  # pragma: no cover
    from repro.gaspi.runtime import GaspiWorld
    from repro.obs.tracer import TracerLike
    from repro.sim import Event

#: one ``(segment_id, offset, size, remote_segment, remote_offset)`` entry
#: of a list operation.
ListEntry = Tuple[int, int, int, int, int]


def _clip_timeout(timeout: float) -> Optional[float]:
    """Map a GASPI timeout to the kernel's (None = forever)."""
    if timeout is None:
        raise GaspiUsageError("timeout must be a number, GASPI_BLOCK or GASPI_TEST")
    if math.isinf(timeout):
        return None
    if timeout < 0:
        raise GaspiUsageError(f"negative timeout {timeout}")
    return timeout


class GaspiContext:
    """One rank's view of the GASPI world."""

    def __init__(self, world: "GaspiWorld", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.segments = SegmentTable()
        self.state_vector = StateVector(world.n_ranks)
        #: queue table, built on first queue touch (most ranks of a large
        #: world never post before their first wait/purge)
        self._queues: Optional[List[Queue]] = None
        self._n_queues = world.config.n_queues
        #: flyweight: every context shares the world's interned all-ranks
        #: membership; only the collective sequence number is private
        self.group_all = Group.from_members(tag=-1, members=world.members_all)
        if world.config.eager_world:
            # reference construction path: materialise everything the
            # flyweight scheme defers (equivalence-test baseline)
            self.group_all = Group(tag=-1)
            self.group_all.add_many(range(world.n_ranks))
            self.group_all.committed = True
            self._queue_table()
            self.state_vector.snapshot()

    # ------------------------------------------------------------------
    # identity / environment
    # ------------------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        """``gaspi_proc_num``."""
        return self.world.n_ranks

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.world.sim.now

    @property
    def tracer(self) -> "TracerLike":
        """This job's structured tracer (``repro.obs``; no-op by default)."""
        return self.world.sim.tracer

    @property
    def n_queues(self) -> int:
        return self._n_queues

    def _queue_table(self) -> List[Queue]:
        queues = self._queues
        if queues is None:
            depth = self.world.config.queue_depth
            queues = self._queues = [
                Queue(i, depth) for i in range(self._n_queues)
            ]
        return queues

    def _queue(self, queue_id: int) -> Queue:
        queues = self._queues
        if queues is None:
            queues = self._queue_table()
        if not (0 <= queue_id < len(queues)):
            raise GaspiUsageError(f"queue {queue_id} outside [0, {len(queues)})")
        return queues[queue_id]

    def _remote(self, rank: int) -> "GaspiContext":
        if not (0 <= rank < self.world.n_ranks):
            raise GaspiUsageError(f"rank {rank} outside [0, {self.world.n_ranks})")
        return self.world.contexts[rank]

    # ------------------------------------------------------------------
    # segments
    # ------------------------------------------------------------------
    def segment_create(self, segment_id: int, size: int) -> Segment:
        """``gaspi_segment_create`` (registration is implicit here)."""
        san = self.world.sanitizer
        if san is not None:
            san.on_segment_create(self.rank, segment_id)
        return self.segments.create(
            segment_id, size, self.world.config.n_notifications,
            eager=self.world.config.eager_world,
        )

    def segment_create_pooled(self, segment_id: int, size: int) -> Segment:
        """Create a segment backed by the world's shared arena.

        For per-rank data-plane windows of identical shape (checkpoint
        mirror/replica staging): the backing bytes come from one pooled
        allocation per ``(segment_id, size)`` across all ranks, grown in
        a single pass on first touch, instead of one private buffer per
        rank.  Semantics match :meth:`segment_create` exactly.
        """
        world = self.world
        if world.config.eager_world:
            return self.segment_create(segment_id, size)
        arena = world.arena
        n_slots = world.n_ranks
        index = self.rank

        def backing() -> np.ndarray:
            return arena.slot(segment_id, size, n_slots, index)

        san = world.sanitizer
        if san is not None:
            san.on_segment_create(self.rank, segment_id)
        return self.segments.create(
            segment_id, size, world.config.n_notifications, backing=backing
        )

    def segment(self, segment_id: int) -> Segment:
        san = self.world.sanitizer
        if san is not None:
            san.on_segment_access(self.rank, segment_id, "segment")
        return self.segments.get(segment_id)

    def segment_view(self, segment_id: int, dtype: Any, offset: int = 0,
                     count: Optional[int] = None) -> np.ndarray:
        """Zero-copy typed view into a local segment (``gaspi_segment_ptr``)."""
        san = self.world.sanitizer
        if san is None:
            return self.segments.get(segment_id).view(dtype, offset, count)
        san.on_segment_access(self.rank, segment_id, "segment_view")
        segment = self.segments.get(segment_id)
        san.on_segment_view(self.rank, segment, dtype, offset, count)
        return segment.view(dtype, offset, count)

    # ------------------------------------------------------------------
    # one-sided communication (non-blocking posts)
    # ------------------------------------------------------------------
    def _san_post(self, queue_full: bool, queue_id: int) -> bool:
        """Sanitizer bookkeeping for one posting attempt.

        Returns ``queue_full`` unchanged so posting methods can write
        ``if self._san_post(queue.full, queue_id): return QUEUE_FULL``.
        """
        san = self.world.sanitizer
        if san is not None:
            if queue_full:
                san.on_queue_full(self.rank, queue_id)
            else:
                san.on_post(self.rank, queue_id)
        return queue_full

    def write(self, segment_id: int, offset: int, size: int, dst_rank: int,
              remote_segment: int, remote_offset: int, queue_id: int = 0) -> ReturnCode:
        """``gaspi_write``: one-sided put, completion tracked on the queue."""
        queue = self._queue(queue_id)
        if self._san_post(queue.full, queue_id):
            return ReturnCode.QUEUE_FULL
        data = self.segments.get(segment_id).read_bytes(offset, size)
        self._remote(dst_rank)  # validate rank early

        def apply() -> None:
            self.world.contexts[dst_rank].segments.get(remote_segment).write_bytes(
                remote_offset, data
            )

        done = self.world.transport.post_rdma(self.rank, dst_rank, size, apply)
        queue.post(done)
        return ReturnCode.SUCCESS

    def read(self, segment_id: int, offset: int, size: int, src_rank: int,
             remote_segment: int, remote_offset: int, queue_id: int = 0) -> ReturnCode:
        """``gaspi_read``: one-sided get into the local segment."""
        queue = self._queue(queue_id)
        if self._san_post(queue.full, queue_id):
            return ReturnCode.QUEUE_FULL
        local = self.segments.get(segment_id)
        local.check_range(offset, size)
        self._remote(src_rank)

        def apply() -> bytes:
            return self.world.contexts[src_rank].segments.get(remote_segment).read_bytes(
                remote_offset, size
            )

        done = self.world.transport.post_rdma(self.rank, src_rank, size, apply)
        done.add_callback(lambda ev: local.write_bytes(offset, ev.value[1]))
        queue.post(done)
        return ReturnCode.SUCCESS

    def notify(self, dst_rank: int, remote_segment: int, notification_id: int,
               value: int = 1, queue_id: int = 0) -> ReturnCode:
        """``gaspi_notify``: set a notification slot on the remote segment."""
        queue = self._queue(queue_id)
        if self._san_post(queue.full, queue_id):
            return ReturnCode.QUEUE_FULL
        if value == 0:
            raise GaspiUsageError("notification value must be non-zero")
        san = self.world.sanitizer
        if san is not None:
            san.on_notify(self.rank, dst_rank, remote_segment,
                          notification_id, value)
        self._remote(dst_rank)

        def apply() -> None:
            self.world.contexts[dst_rank].segments.get(remote_segment).notifications.post(
                notification_id, value
            )

        done = self.world.transport.post_rdma(self.rank, dst_rank, 8, apply)
        queue.post(done)
        return ReturnCode.SUCCESS

    def write_notify(self, segment_id: int, offset: int, size: int, dst_rank: int,
                     remote_segment: int, remote_offset: int, notification_id: int,
                     value: int = 1, queue_id: int = 0) -> ReturnCode:
        """``gaspi_write_notify``: fused put + notification (data first)."""
        queue = self._queue(queue_id)
        if self._san_post(queue.full, queue_id):
            return ReturnCode.QUEUE_FULL
        if value == 0:
            raise GaspiUsageError("notification value must be non-zero")
        san = self.world.sanitizer
        if san is not None:
            san.on_notify(self.rank, dst_rank, remote_segment,
                          notification_id, value)
        data = self.segments.get(segment_id).read_bytes(offset, size)
        self._remote(dst_rank)

        def apply() -> None:
            remote = self.world.contexts[dst_rank].segments.get(remote_segment)
            remote.write_bytes(remote_offset, data)
            remote.notifications.post(notification_id, value)

        done = self.world.transport.post_rdma(self.rank, dst_rank, size + 8, apply)
        queue.post(done)
        return ReturnCode.SUCCESS

    def write_list(self, entries: Sequence[ListEntry], dst_rank: int,
                   queue_id: int = 0,
                   modeled_bytes: Optional[int] = None) -> ReturnCode:
        """``gaspi_write_list``: several puts to one rank as one request.

        ``entries`` is a sequence of
        ``(segment_id, offset, size, remote_segment, remote_offset)``
        tuples; data of all entries travels as a single transport operation
        with a vectorized time model — one latency, one per-message
        overhead, sum-of-bytes bandwidth (GPI-2 fuses list operations into
        one work request).  ``modeled_bytes`` overrides the byte count the
        time model charges (used by the checkpoint library, whose staged
        payload is a placeholder for a nominally larger blob).
        """
        queue = self._queue(queue_id)
        if self._san_post(queue.full, queue_id):
            return ReturnCode.QUEUE_FULL
        if not entries:
            raise GaspiUsageError("write_list needs at least one entry")
        self._remote(dst_rank)
        snapshots = []
        sizes = []
        for segment_id, offset, size, remote_segment, remote_offset in entries:
            snapshots.append(
                (remote_segment, remote_offset,
                 self.segments.get(segment_id).read_bytes(offset, size))
            )
            sizes.append(size)

        def apply() -> None:
            target = self.world.contexts[dst_rank].segments
            for remote_segment, remote_offset, data in snapshots:
                target.get(remote_segment).write_bytes(remote_offset, data)

        model = sizes if modeled_bytes is None else (modeled_bytes,)
        done = self.world.transport.post_rdma_list(
            self.rank, dst_rank, model, apply,
            doorbell=queue_id, n_writes=len(sizes),
        )
        queue.post(done)
        return ReturnCode.SUCCESS

    def write_list_notify(self, entries: Sequence[ListEntry], dst_rank: int,
                          notify_segment: int,
                          notifications: Union[Tuple[int, int],
                                               Sequence[Tuple[int, int]]],
                          queue_id: int = 0,
                          modeled_bytes: Optional[int] = None) -> ReturnCode:
        """``gaspi_write_list_notify``: batched puts + notifications, fused.

        All entry payloads and the notification flags travel as **one**
        transport operation; every byte of data lands before any flag
        becomes visible — the same write-then-notify ordering a chain of
        sequential ``write_notify`` calls guarantees, at a fraction of the
        simulated (and simulation) cost.

        ``notifications`` is a single ``(notification_id, value)`` pair or
        a list of such pairs, posted on ``notify_segment`` of the target in
        ascending id order.
        """
        queue = self._queue(queue_id)
        if self._san_post(queue.full, queue_id):
            return ReturnCode.QUEUE_FULL
        if not entries:
            raise GaspiUsageError("write_list_notify needs at least one entry")
        if isinstance(notifications, tuple):
            notifications = [notifications]
        notifications = [(int(nid), int(value)) for nid, value in notifications]
        if not notifications:
            raise GaspiUsageError("write_list_notify needs a notification")
        for _nid, value in notifications:
            if value == 0:
                raise GaspiUsageError("notification value must be non-zero")
        san = self.world.sanitizer
        if san is not None:
            for nid, value in notifications:
                san.on_notify(self.rank, dst_rank, notify_segment, nid, value)
        self._remote(dst_rank)
        snapshots = []
        sizes = []
        for segment_id, offset, size, remote_segment, remote_offset in entries:
            snapshots.append(
                (remote_segment, remote_offset,
                 self.segments.get(segment_id).read_bytes(offset, size))
            )
            sizes.append(size)
        sizes.append(8 * len(notifications))

        def apply() -> None:
            target = self.world.contexts[dst_rank].segments
            for remote_segment, remote_offset, data in snapshots:
                target.get(remote_segment).write_bytes(remote_offset, data)
            target.get(notify_segment).notifications.post_many(notifications)

        model = (
            sizes if modeled_bytes is None
            else (modeled_bytes, 8 * len(notifications))
        )
        done = self.world.transport.post_rdma_list(
            self.rank, dst_rank, model, apply,
            doorbell=queue_id, n_writes=len(snapshots),
        )
        queue.post(done)
        return ReturnCode.SUCCESS

    def write_round(self, segment_id: int, offset: int, size: int,
                    dst_ranks: Sequence[int], remote_segment: int,
                    remote_offset: int, queue_id: int = 0) -> ReturnCode:
        """Round-priced broadcast put: one local range to many ranks.

        Virtual-time equivalent of calling :meth:`write` once per rank in
        ``dst_ranks`` within one tick — data lands at each target at its
        own delivery latency, liveness re-checked per target — but the fan
        costs one queue slot and O(1) simulator events on a uniform fabric
        (:meth:`Transport.post_rdma_round`).  The single completion fires
        only when *every* target took the data; a dead target hangs it, so
        ``wait`` returns ``TIMEOUT`` exactly like the per-target loop.
        This is the notice-broadcast fast path of the FT control block.
        """
        queue = self._queue(queue_id)
        if self._san_post(queue.full, queue_id):
            return ReturnCode.QUEUE_FULL
        if not dst_ranks:
            raise GaspiUsageError("write_round needs at least one target")
        for dst_rank in dst_ranks:
            self._remote(dst_rank)
        data = self.segments.get(segment_id).read_bytes(offset, size)

        def apply(dst_rank: int) -> None:
            self.world.contexts[dst_rank].segments.get(remote_segment).write_bytes(
                remote_offset, data
            )

        done = self.world.transport.post_rdma_round(
            self.rank, list(dst_ranks), size, apply
        )
        queue.post(done)
        return ReturnCode.SUCCESS

    def read_list(self, entries: Sequence[ListEntry], src_rank: int,
                  queue_id: int = 0,
                  modeled_bytes: Optional[int] = None) -> ReturnCode:
        """``gaspi_read_list``: several gets from one rank as one request.

        ``modeled_bytes`` overrides the byte count the time model charges
        (mirroring :meth:`write_list`; the replicated checkpoint backend
        fetches a staged placeholder priced as its full replica share).
        """
        queue = self._queue(queue_id)
        if self._san_post(queue.full, queue_id):
            return ReturnCode.QUEUE_FULL
        if not entries:
            raise GaspiUsageError("read_list needs at least one entry")
        self._remote(src_rank)
        local_targets = []
        for segment_id, offset, size, remote_segment, remote_offset in entries:
            local = self.segments.get(segment_id)
            local.check_range(offset, size)
            local_targets.append((local, offset))
        remote_specs = [(e[3], e[4], e[2]) for e in entries]

        def apply() -> List[bytes]:
            source = self.world.contexts[src_rank].segments
            return [
                source.get(seg).read_bytes(off, size)
                for seg, off, size in remote_specs
            ]

        model: Sequence[int] = (
            [e[2] for e in entries] if modeled_bytes is None
            else (modeled_bytes,)
        )
        done = self.world.transport.post_rdma_list(
            self.rank, src_rank, model, apply,
            doorbell=queue_id,
        )

        def land(ev: "Event") -> None:
            for (local, offset), data in zip(local_targets, ev.value[1]):
                local.write_bytes(offset, data)

        done.add_callback(land)
        queue.post(done)
        return ReturnCode.SUCCESS

    def segment_delete(self, segment_id: int) -> None:
        """``gaspi_segment_delete``: unregister a local segment."""
        san = self.world.sanitizer
        if san is not None:
            # a second delete of the same id is itself use-after-free
            san.on_segment_access(self.rank, segment_id, "segment_delete")
        self.segments.delete(segment_id)
        if san is not None:
            san.on_segment_delete(self.rank, segment_id)

    def wait(self, queue_id: int = 0, timeout: float = GASPI_BLOCK,
             ) -> Generator[Any, Any, ReturnCode]:
        """``gaspi_wait``: flush the queue (generator).

        Blocks until every operation outstanding at call time completed;
        returns ``TIMEOUT`` otherwise — operations stuck on dead targets
        stay queued (purge them in recovery with :meth:`queue_purge`).

        Fast path: an already-drained queue returns without yielding to
        the kernel at all, and a non-empty one blocks exactly **once** on
        an aggregate drain event instead of once per outstanding op.
        """
        san = self.world.sanitizer
        if san is not None:
            san.on_queue_relief(self.rank, queue_id)
        drained = self._queue(queue_id).drain_event()
        if drained is None:
            return ReturnCode.SUCCESS
        ok, _ = yield WaitEvent(drained, _clip_timeout(timeout))
        return ReturnCode.SUCCESS if ok else ReturnCode.TIMEOUT

    def queue_purge(self, queue_id: int = 0) -> int:
        """GPI-2 FT extension ``gaspi_queue_purge``: drop stuck operations."""
        san = self.world.sanitizer
        if san is not None:
            san.on_queue_relief(self.rank, queue_id)
        return self._queue(queue_id).purge()

    def queue_size(self, queue_id: int = 0) -> int:
        return self._queue(queue_id).size

    def queue(self, queue_id: int = 0) -> Queue:
        """The queue object itself, like :meth:`segment` for segments.

        The vectorized checkpoint fast path posts pre-built completion
        events straight onto the queue; handing out the handle keeps
        that bypass on the public capability surface (FT011) instead of
        reaching through ``_queue``.
        """
        return self._queue(queue_id)

    def queue_create(self) -> int:
        """GPI-2 ``gaspi_queue_create``: add a queue, returning its id.

        The paper's threaded FD monitors pings "on different communication
        queues"; applications create extras the same way.
        """
        queues = self._queue_table()
        if len(queues) >= 1024:
            raise GaspiUsageError("queue limit (1024) reached")
        queue_id = len(queues)
        queues.append(Queue(queue_id, self.world.config.queue_depth))
        self._n_queues = len(queues)
        return queue_id

    def queue_delete(self, queue_id: int) -> None:
        """GPI-2 ``gaspi_queue_delete``: only the most recent queue, and
        only when it has no outstanding operations."""
        queue = self._queue(queue_id)
        queues = self._queue_table()
        if queue_id != len(queues) - 1:
            raise GaspiUsageError("only the last-created queue can be deleted")
        if queue_id < self.world.config.n_queues:
            raise GaspiUsageError("the initial queues cannot be deleted")
        if queue.size:
            raise GaspiUsageError(
                f"queue {queue_id} still has {queue.size} outstanding ops"
            )
        queues.pop()
        self._n_queues = len(queues)

    # ------------------------------------------------------------------
    # notifications (consumer side)
    # ------------------------------------------------------------------
    def notify_waitsome(self, segment_id: int, first: int, num: int,
                        timeout: float = GASPI_BLOCK,
                        ) -> Generator[Any, Any, Tuple[ReturnCode, int]]:
        """``gaspi_notify_waitsome`` (generator).

        Returns ``(ReturnCode, notification_id)``; the id is -1 on timeout.
        """
        board = self.segments.get(segment_id).notifications
        pending = board.pending_in(first, num)
        if pending >= 0:
            return (ReturnCode.SUCCESS, pending)
        limit = _clip_timeout(timeout)
        event = board.subscribe(first, num)
        ok, nid = yield WaitEvent(event, limit)
        if not ok:
            board.unsubscribe(event)
            return (ReturnCode.TIMEOUT, -1)
        return (ReturnCode.SUCCESS, int(nid))

    def notify_reset(self, segment_id: int, notification_id: int) -> int:
        """``gaspi_notify_reset``: consume and clear a slot, return old value."""
        old = self.segments.get(segment_id).notifications.reset(notification_id)
        san = self.world.sanitizer
        if san is not None:
            san.on_notify_reset(self.rank, segment_id, notification_id, old)
        return old

    def notify_reset_many(self, segment_id: int,
                          notification_ids: Sequence[int]) -> List[int]:
        """Batched ``gaspi_notify_reset``: consume several slots at once.

        Returns the old values in the order the ids were given.
        """
        olds = self.segments.get(segment_id).notifications.reset_many(
            notification_ids
        )
        san = self.world.sanitizer
        if san is not None:
            for notification_id, old in zip(notification_ids, olds):
                san.on_notify_reset(self.rank, segment_id,
                                    notification_id, old)
        return olds

    # ------------------------------------------------------------------
    # passive communication
    # ------------------------------------------------------------------
    def passive_send(self, dst_rank: int, payload: Any, nbytes: int = 256,
                     timeout: float = GASPI_BLOCK,
                     ) -> Generator[Any, Any, ReturnCode]:
        """``gaspi_passive_send`` (generator): two-sided, CPU-involving send."""
        self._remote(dst_rank)
        done = self.world.transport.post_control(
            self.rank, dst_rank, "passive", payload, nbytes
        )
        ok, _ = yield WaitEvent(done, _clip_timeout(timeout))
        return ReturnCode.SUCCESS if ok else ReturnCode.TIMEOUT

    def passive_receive(self, timeout: float = GASPI_BLOCK,
                        ) -> Generator[Any, Any, Tuple[ReturnCode, int, Any]]:
        """``gaspi_passive_receive`` (generator).

        Returns ``(ReturnCode, src_rank, payload)``.
        """
        inbox = self.world.transport.endpoint(self.rank).inbox("passive")
        ok, msg = yield from inbox.get(_clip_timeout(timeout))
        if not ok:
            return (ReturnCode.TIMEOUT, -1, None)
        return (ReturnCode.SUCCESS, msg.src, msg.payload)

    # ------------------------------------------------------------------
    # global atomics (on int64 cells of remote segments)
    # ------------------------------------------------------------------
    def atomic_fetch_add(
        self, dst_rank: int, segment_id: int, offset: int,
        delta: int, timeout: float = GASPI_BLOCK,
    ) -> Generator[Any, Any, Tuple[ReturnCode, Optional[int]]]:
        """``gaspi_atomic_fetch_add`` (generator): returns ``(ret, old)``."""
        self._check_atomic(offset)
        self._remote(dst_rank)

        def apply() -> int:
            cell = self.world.contexts[dst_rank].segments.get(segment_id).view(
                np.int64, offset, 1
            )
            old = int(cell[0])
            cell[0] = old + delta
            return old

        done = self.world.transport.post_rdma(self.rank, dst_rank, 8, apply)
        ok, res = yield WaitEvent(done, _clip_timeout(timeout))
        if not ok:
            return (ReturnCode.TIMEOUT, None)
        return (ReturnCode.SUCCESS, res[1])

    def atomic_compare_swap(
        self, dst_rank: int, segment_id: int, offset: int,
        comparator: int, new_value: int, timeout: float = GASPI_BLOCK,
    ) -> Generator[Any, Any, Tuple[ReturnCode, Optional[int]]]:
        """``gaspi_atomic_compare_swap`` (generator): returns ``(ret, old)``."""
        self._check_atomic(offset)
        self._remote(dst_rank)

        def apply() -> int:
            cell = self.world.contexts[dst_rank].segments.get(segment_id).view(
                np.int64, offset, 1
            )
            old = int(cell[0])
            if old == comparator:
                cell[0] = new_value
            return old

        done = self.world.transport.post_rdma(self.rank, dst_rank, 8, apply)
        ok, res = yield WaitEvent(done, _clip_timeout(timeout))
        if not ok:
            return (ReturnCode.TIMEOUT, None)
        return (ReturnCode.SUCCESS, res[1])

    @staticmethod
    def _check_atomic(offset: int) -> None:
        if offset % 8 != 0:
            raise GaspiUsageError(f"atomic offset {offset} not 8-byte aligned")

    # ------------------------------------------------------------------
    # groups and collectives
    # ------------------------------------------------------------------
    def group_create(self, tag: int = 0) -> Group:
        """``gaspi_group_create``; pass the recovery epoch as ``tag``."""
        return Group(tag=tag)

    @staticmethod
    def group_add(group: Group, rank: int) -> None:
        """``gaspi_group_add``."""
        group.add(rank)

    @staticmethod
    def group_add_many(group: Group, ranks: Sequence[int]) -> None:
        """Batched ``gaspi_group_add``: ingest a whole membership array.

        Same validation semantics as per-rank :meth:`group_add` at O(n)
        total cost — the vectorized group-rebuild path.
        """
        group.add_many(ranks)

    def group_commit(self, group: Group, timeout: float = GASPI_BLOCK,
                     ) -> Generator[Any, Any, ReturnCode]:
        """``gaspi_group_commit`` (generator): blocking collective.

        Its cost is linear in group size (connection establishment) — the
        dominant part of the paper's OHF2 rebuild overhead.
        """
        if self.rank not in group:
            raise GaspiUsageError(f"rank {self.rank} commits group it is not part of")
        costs = self.world.engine.costs
        event = self.world.engine.arrive(
            "commit", group.identity(), group.coll_seq, self.rank,
            group.members, cost=costs.commit(group.size),
        )
        ok, _ = yield WaitEvent(event, _clip_timeout(timeout))
        if not ok:
            return ReturnCode.TIMEOUT
        group.coll_seq += 1
        group.committed = True
        return ReturnCode.SUCCESS

    @staticmethod
    def group_delete(group: Group) -> None:
        """``gaspi_group_delete``: the handle must not be used afterwards."""
        group.committed = False

    def barrier(self, group: Optional[Group] = None,
                timeout: float = GASPI_BLOCK,
                ) -> Generator[Any, Any, ReturnCode]:
        """``gaspi_barrier`` (generator)."""
        group = group or self.group_all
        group.require_committed()
        if self.rank not in group:
            raise GaspiUsageError(f"rank {self.rank} not in group")
        costs = self.world.engine.costs
        event = self.world.engine.arrive(
            "barrier", group.identity(), group.coll_seq, self.rank,
            group.members, cost=costs.barrier(group.size),
        )
        ok, _ = yield WaitEvent(event, _clip_timeout(timeout))
        if not ok:
            return ReturnCode.TIMEOUT
        group.coll_seq += 1
        return ReturnCode.SUCCESS

    def allreduce(
        self, values: Any, op: AllreduceOp, group: Optional[Group] = None,
        timeout: float = GASPI_BLOCK,
    ) -> Generator[Any, Any, Tuple[ReturnCode, Optional[np.ndarray]]]:
        """``gaspi_allreduce`` (generator): returns ``(ret, reduced array)``."""
        group = group or self.group_all
        group.require_committed()
        if self.rank not in group:
            raise GaspiUsageError(f"rank {self.rank} not in group")
        contribution = np.array(values, copy=True)
        costs = self.world.engine.costs
        event = self.world.engine.arrive(
            "allreduce", group.identity(), group.coll_seq, self.rank,
            group.members, contribution=contribution,
            finisher=self.world.engine.reduce_finisher(op),
            cost=costs.allreduce(group.size, contribution.nbytes),
        )
        ok, result = yield WaitEvent(event, _clip_timeout(timeout))
        if not ok:
            return (ReturnCode.TIMEOUT, None)
        group.coll_seq += 1
        return (ReturnCode.SUCCESS, result)

    # ------------------------------------------------------------------
    # fault tolerance surface
    # ------------------------------------------------------------------
    def proc_ping(self, dst_rank: int, timeout: float = GASPI_BLOCK,
                  ) -> Generator[Any, Any, ReturnCode]:
        """GPI-2 extension ``gaspi_proc_ping`` (generator).

        ``SUCCESS`` from a live, reachable peer; ``ERROR`` once the
        transport diagnosed a broken channel (also marking the peer
        ``CORRUPT`` in the local state vector); ``TIMEOUT`` if the caller's
        own patience ran out first.
        """
        self._remote(dst_rank)
        done = self.world.transport.post_ping(self.rank, dst_rank)
        ok, res = yield WaitEvent(done, _clip_timeout(timeout))
        if not ok:
            return ReturnCode.TIMEOUT
        alive, _ = res
        if alive:
            return ReturnCode.SUCCESS
        self.state_vector.mark_corrupt(dst_rank)
        return ReturnCode.ERROR

    def proc_ping_post(self, dst_rank: int) -> "Event":
        """Post a ping without blocking; returns its completion event.

        The event fires with ``(alive, None)`` once the transport resolves
        the probe.  This is how the paper's *threaded* fault detector
        monitors "one-sided pings in parallel on different communication
        queues": post several, then harvest.  Unlike :meth:`proc_ping`, the
        state vector is *not* updated automatically — call
        :meth:`note_ping_result` with the outcome.
        """
        self._remote(dst_rank)
        return self.world.transport.post_ping(self.rank, dst_rank)

    def proc_ping_sweep(
        self, targets: Sequence[int], width: int = 1,
        timeout: float = GASPI_BLOCK, batched: bool = True,
    ) -> Generator[
        Any, Any,
        Tuple[ReturnCode, Optional[List[Tuple[int, bool, float, float]]]],
    ]:
        """Batched ``gaspi_proc_ping`` over a whole round (generator).

        Probes ``targets`` with at most ``width`` pings in flight (the FD's
        ``fd_threads`` knob) but blocks the caller **once** for the entire
        sweep rather than once per probe.  Returns ``(ReturnCode, results)``
        with ``results`` a list of ``(target, alive, t_start, t_end)``
        tuples in ``targets`` order; dead targets are marked ``CORRUPT`` in
        the state vector exactly as :meth:`proc_ping` would have.  On
        ``TIMEOUT`` the results are ``None`` and no state is updated.
        ``batched=False`` forces the callback-chained scalar sweep (the
        retained reference implementation).
        """
        if targets and not (0 <= min(targets)
                            and max(targets) < self.world.n_ranks):
            for dst_rank in targets:  # reuse _remote's exact error text
                self._remote(dst_rank)
        done = self.world.transport.post_ping_sweep(
            self.rank, targets, width, batched=batched
        )
        ok, res = yield WaitEvent(done, _clip_timeout(timeout))
        if not ok:
            return (ReturnCode.TIMEOUT, None)
        _ok, results = res
        failed = getattr(results, "failed", None)
        if failed is None:  # plain tuple list from the sequential sweep
            failed = [r for r, alive, _t0, _t1 in results if not alive]
        for dst_rank in failed:
            self.state_vector.mark_corrupt(dst_rank)
        return (ReturnCode.SUCCESS, results)

    def note_ping_result(self, dst_rank: int, alive: bool) -> ReturnCode:
        """Record a harvested ping outcome in the state vector."""
        if alive:
            return ReturnCode.SUCCESS
        self.state_vector.mark_corrupt(dst_rank)
        return ReturnCode.ERROR

    def proc_kill(self, dst_rank: int, timeout: float = GASPI_BLOCK,
                  ) -> Generator[Any, Any, ReturnCode]:
        """GPI-2 extension ``gaspi_proc_kill`` (generator).

        Forces the target to die if it is reachable from here (the recovery
        protocol has *every* healthy rank issue the kill, so any working
        path enforces it — this is how false-positive detections are made
        safe).  Returns ``SUCCESS`` also for already-dead targets.
        """
        self._remote(dst_rank)
        done = self.world.transport.post_kill(self.rank, dst_rank)
        ok, _ = yield WaitEvent(done, _clip_timeout(timeout))
        if not ok:
            return ReturnCode.TIMEOUT
        self.state_vector.mark_corrupt(dst_rank)
        return ReturnCode.SUCCESS

    def state_vec_get(self) -> np.ndarray:
        """``gaspi_state_vec_get``: copy of the local health vector."""
        return self.state_vector.snapshot()

    def health_of(self, rank: int) -> HealthState:
        return self.state_vector.state_of(rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GaspiContext rank={self.rank}/{self.world.n_ranks}>"
