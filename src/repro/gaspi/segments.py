"""Segments: the registered, remotely-accessible memory of each rank.

A GASPI segment is a contiguous block of memory that one-sided operations
from any rank can read and write.  Here a segment is a NumPy ``uint8``
buffer plus a :class:`NotificationBoard`.  Applications view slices of the
buffer with ``Segment.view(dtype, offset, count)`` — a zero-copy NumPy view,
so a remote write is immediately visible to the owner (exactly the PGAS
property the paper's failure-acknowledgment flags rely on).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

import numpy as np

from repro.gaspi.errors import GaspiUsageError
from repro.gaspi.notifications import NotificationBoard


class Segment:
    """One registered memory block owned by one rank."""

    __slots__ = ("segment_id", "size", "buf", "notifications")

    def __init__(self, segment_id: int, size: int, n_notifications: int = 1024) -> None:
        if size <= 0:
            raise GaspiUsageError(f"segment size must be positive, got {size}")
        self.segment_id = segment_id
        self.size = int(size)
        self.buf = np.zeros(self.size, dtype=np.uint8)
        self.notifications = NotificationBoard(n_notifications)

    # ------------------------------------------------------------------
    def check_range(self, offset: int, nbytes: int) -> None:
        """Validate an access window (raises on out-of-range)."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise GaspiUsageError(
                f"access [{offset}, {offset + nbytes}) outside segment "
                f"{self.segment_id} of size {self.size}"
            )

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        """Snapshot ``nbytes`` at ``offset`` (bounds-checked).

        Returns an immutable copy — the right call when the bytes must
        survive later segment writes (e.g. an in-flight RDMA payload).
        For a zero-copy window consumed immediately, use
        :meth:`read_view`.
        """
        self.check_range(offset, nbytes)
        return self.buf[offset : offset + nbytes].tobytes()

    def read_view(self, offset: int, nbytes: int) -> memoryview:
        """Zero-copy byte window at ``offset`` (bounds-checked).

        The view aliases live segment memory: remote writes landing after
        this call are visible through it.  Use it for one-pass consumers
        — streaming a checkpoint straight out of the segment with
        ``pack_checkpoint_into`` / ``unpack_checkpoint`` moves the bytes
        exactly once.
        """
        self.check_range(offset, nbytes)
        return memoryview(self.buf)[offset : offset + nbytes]

    def write_view(self, offset: int, nbytes: int) -> memoryview:
        """Writable zero-copy byte window at ``offset`` (bounds-checked).

        The writing counterpart of :meth:`read_view`: the caller copies
        its payload straight into live segment memory (``view[:] = src``)
        with one memcpy and no intermediate array wrapping — the shape
        a doorbell-coalesced delivery callback wants.
        """
        self.check_range(offset, nbytes)
        return memoryview(self.buf)[offset : offset + nbytes]

    def write_bytes(self, offset: int, data: Any) -> None:
        """Copy ``data`` into the segment at ``offset`` (bounds-checked).

        ``data`` is any C-contiguous buffer — ``bytes``, ``bytearray``,
        ``memoryview`` or numpy array — written without intermediate
        conversion copies, so a caller-staged buffer moves bytes once.
        """
        src = np.frombuffer(data, dtype=np.uint8)
        self.check_range(offset, src.nbytes)
        self.buf[offset : offset + src.nbytes] = src

    def view(self, dtype: Any, offset: int = 0,
             count: Optional[int] = None) -> np.ndarray:
        """Zero-copy typed view into the segment.

        ``count`` is in elements of ``dtype``; ``None`` extends to the end
        of the segment (truncated to whole elements).
        """
        dt = np.dtype(dtype)
        if count is None:
            count = (self.size - offset) // dt.itemsize
        nbytes = count * dt.itemsize
        self.check_range(offset, nbytes)
        return self.buf[offset : offset + nbytes].view(dt)


class SegmentTable:
    """The set of segments registered by one rank."""

    def __init__(self) -> None:
        self._segments: Dict[int, Segment] = {}

    def create(self, segment_id: int, size: int, n_notifications: int = 1024) -> Segment:
        if segment_id in self._segments:
            raise GaspiUsageError(f"segment {segment_id} already exists")
        seg = Segment(segment_id, size, n_notifications)
        self._segments[segment_id] = seg
        return seg

    def get(self, segment_id: int) -> Segment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise GaspiUsageError(f"segment {segment_id} does not exist") from None

    def find(self, segment_id: int) -> Optional[Segment]:
        """The segment if registered, else ``None`` (non-raising lookup)."""
        return self._segments.get(segment_id)

    def delete(self, segment_id: int) -> None:
        if segment_id not in self._segments:
            raise GaspiUsageError(f"segment {segment_id} does not exist")
        del self._segments[segment_id]

    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self._segments

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments.values())

    def __len__(self) -> int:
        return len(self._segments)
