"""Segments: the registered, remotely-accessible memory of each rank.

A GASPI segment is a contiguous block of memory that one-sided operations
from any rank can read and write.  Here a segment is a NumPy ``uint8``
buffer plus a :class:`NotificationBoard`.  Applications view slices of the
buffer with ``Segment.view(dtype, offset, count)`` — a zero-copy NumPy view,
so a remote write is immediately visible to the owner (exactly the PGAS
property the paper's failure-acknowledgment flags rely on).

World construction is flyweight: a segment's backing buffer and its
notification board are built on first touch, not at registration.  Two
sharing schemes keep a 4096-rank world's setup O(world) instead of
O(ranks):

* an **arena** (:class:`SegmentArena`, one per :class:`GaspiWorld`) backs
  all same-shaped per-rank segments — e.g. every rank's checkpoint mirror
  window — with one pooled allocation grown in a single pass;
* a **template** (read-only array adopted via :meth:`Segment.adopt_template`)
  serves reads of a segment whose initial content is identical on every
  rank — e.g. the FT control block — and is copied on first write.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Set, Tuple, Union

import numpy as np

from repro.gaspi.errors import GaspiUsageError
from repro.gaspi.notifications import NotificationBoard

#: a segment's backing store: a concrete buffer (e.g. an arena slot view)
#: or a zero-argument provider called on first materialisation.
Backing = Union[np.ndarray, Callable[[], np.ndarray]]


class SegmentArena:
    """One pooled backing store for a world's same-shaped rank segments.

    Per-rank data planes (checkpoint mirror windows, replica landing
    windows) used to allocate one private buffer per rank — O(ranks)
    allocations dominating world construction at 4096 ranks.  The arena
    allocates **one** pool per ``(segment_id, slot size)`` shape in a
    single pass, on the first touch of any slot, and hands out aligned
    zero-copy slices.  A slot handed out twice (delete + re-create) is
    re-zeroed so a recycled slot is indistinguishable from a fresh
    buffer.
    """

    #: slot stride alignment (bytes); keeps typed views on slot starts
    #: aligned regardless of the requested slot size
    ALIGN = 64

    __slots__ = ("_pools", "_handed", "allocations")

    def __init__(self) -> None:
        self._pools: Dict[Tuple[int, int], np.ndarray] = {}
        self._handed: Set[Tuple[int, int, int]] = set()
        #: number of pool allocations performed (regression-tested to be
        #: O(distinct segment shapes), never O(ranks))
        self.allocations = 0

    def slot(self, key: int, slot_size: int, n_slots: int,
             index: int) -> np.ndarray:
        """The ``index``-th slot of the ``(key, slot_size)`` pool."""
        if not (0 <= index < n_slots):
            raise GaspiUsageError(
                f"arena slot {index} outside [0, {n_slots}) for key {key}")
        pool_key = (key, slot_size)
        pool = self._pools.get(pool_key)
        stride = -(-slot_size // self.ALIGN) * self.ALIGN
        if pool is None:
            pool = np.zeros(stride * n_slots, dtype=np.uint8)
            self._pools[pool_key] = pool
            self.allocations += 1
        start = index * stride
        view = pool[start:start + slot_size]
        handed_key = (key, slot_size, index)
        if handed_key in self._handed:
            view[:] = 0
        else:
            self._handed.add(handed_key)
        return view


class Segment:
    """One registered memory block owned by one rank.

    The buffer materialises on first touch: reads of a pristine segment
    are served from the (shared, read-only) template when one was
    adopted, or synthesised as zeros; the first write — local or via a
    remote one-sided delivery — allocates/copies the private buffer.
    """

    __slots__ = ("segment_id", "size", "_buf", "_backing", "_template",
                 "_n_notifications", "_notifications", "_cells64")

    def __init__(self, segment_id: int, size: int,
                 n_notifications: int = 1024,
                 backing: Optional[Backing] = None,
                 eager: bool = False) -> None:
        if size <= 0:
            raise GaspiUsageError(f"segment size must be positive, got {size}")
        self.segment_id = segment_id
        self.size = int(size)
        self._buf: Optional[np.ndarray] = None
        self._backing = backing
        self._template: Optional[np.ndarray] = None
        self._n_notifications = n_notifications
        self._notifications: Optional[NotificationBoard] = None
        self._cells64: Optional[np.ndarray] = None
        if eager:
            self._materialize()
            _ = self.notifications

    # ------------------------------------------------------------------
    # lazy backing stores
    # ------------------------------------------------------------------
    def _materialize(self) -> np.ndarray:
        backing = self._backing
        if backing is None:
            buf = np.zeros(self.size, dtype=np.uint8)
        elif callable(backing):
            buf = backing()
        else:
            buf = backing
        if buf.nbytes != self.size:
            raise GaspiUsageError(
                f"segment {self.segment_id} backing has {buf.nbytes} bytes, "
                f"expected {self.size}")
        template = self._template
        if template is not None:
            buf[:] = template.view(np.uint8)
        self._buf = buf
        self._backing = None
        self._cells64 = None  # template views must not outlive pristinity
        return buf

    @property
    def buf(self) -> np.ndarray:
        """The private backing buffer (materialises on first access)."""
        buf = self._buf
        if buf is None:
            buf = self._materialize()
        return buf

    @property
    def pristine(self) -> bool:
        """True while no buffer was materialised (no write ever landed)."""
        return self._buf is None

    def adopt_template(self, template: np.ndarray) -> None:
        """Serve reads from a shared read-only array until first write.

        The template must hold the segment's initial content; every rank
        whose segment content starts identical can adopt the *same*
        array, so a 4096-rank world holds one copy instead of 4096.
        """
        if self._buf is not None:
            raise GaspiUsageError(
                f"segment {self.segment_id} already materialised")
        if template.nbytes != self.size:
            raise GaspiUsageError(
                f"template has {template.nbytes} bytes, expected {self.size}")
        self._template = template
        self._cells64 = None

    def cells64(self) -> np.ndarray:
        """Cached whole-segment ``int64`` view (control-block fast path).

        Pristine segments return a **read-only** view of the shared
        template; writers must go through :attr:`buf` (or any write
        method), which materialises and invalidates this cache.
        """
        cells = self._cells64
        if cells is None:
            base: np.ndarray
            if self._buf is not None:
                base = self._buf
            elif self._template is not None:
                base = self._template.view(np.uint8)
            else:
                base = self.buf
            cells = base.view(np.int64)
            self._cells64 = cells
        return cells

    @property
    def notifications(self) -> NotificationBoard:
        """The notification board, built on first touch."""
        board = self._notifications
        if board is None:
            board = self._notifications = NotificationBoard(
                self._n_notifications)
        return board

    # ------------------------------------------------------------------
    def check_range(self, offset: int, nbytes: int) -> None:
        """Validate an access window (raises on out-of-range)."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise GaspiUsageError(
                f"access [{offset}, {offset + nbytes}) outside segment "
                f"{self.segment_id} of size {self.size}"
            )

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        """Snapshot ``nbytes`` at ``offset`` (bounds-checked).

        Returns an immutable copy — the right call when the bytes must
        survive later segment writes (e.g. an in-flight RDMA payload).
        For a zero-copy window consumed immediately, use
        :meth:`read_view`.
        """
        self.check_range(offset, nbytes)
        buf = self._buf
        if buf is None:
            template = self._template
            if template is None:
                return bytes(nbytes)
            return template.view(np.uint8)[offset:offset + nbytes].tobytes()
        return buf[offset:offset + nbytes].tobytes()

    def read_view(self, offset: int, nbytes: int) -> memoryview:
        """Zero-copy byte window at ``offset`` (bounds-checked).

        The view aliases live segment memory: remote writes landing after
        this call are visible through it.  Use it for one-pass consumers
        — streaming a checkpoint straight out of the segment with
        ``pack_checkpoint_into`` / ``unpack_checkpoint`` moves the bytes
        exactly once.
        """
        self.check_range(offset, nbytes)
        return memoryview(self.buf)[offset:offset + nbytes]

    def write_view(self, offset: int, nbytes: int) -> memoryview:
        """Writable zero-copy byte window at ``offset`` (bounds-checked).

        The writing counterpart of :meth:`read_view`: the caller copies
        its payload straight into live segment memory (``view[:] = src``)
        with one memcpy and no intermediate array wrapping — the shape
        a doorbell-coalesced delivery callback wants.
        """
        self.check_range(offset, nbytes)
        return memoryview(self.buf)[offset:offset + nbytes]

    def write_bytes(self, offset: int, data: Any) -> None:
        """Copy ``data`` into the segment at ``offset`` (bounds-checked).

        ``data`` is any C-contiguous buffer — ``bytes``, ``bytearray``,
        ``memoryview`` or numpy array — written without intermediate
        conversion copies, so a caller-staged buffer moves bytes once.
        """
        src = np.frombuffer(data, dtype=np.uint8)
        self.check_range(offset, src.nbytes)
        self.buf[offset:offset + src.nbytes] = src

    def view(self, dtype: Any, offset: int = 0,
             count: Optional[int] = None) -> np.ndarray:
        """Zero-copy typed view into the segment.

        ``count`` is in elements of ``dtype``; ``None`` extends to the end
        of the segment (truncated to whole elements).
        """
        dt = np.dtype(dtype)
        if count is None:
            count = (self.size - offset) // dt.itemsize
        nbytes = count * dt.itemsize
        self.check_range(offset, nbytes)
        return self.buf[offset:offset + nbytes].view(dt)


class SegmentTable:
    """The set of segments registered by one rank."""

    def __init__(self) -> None:
        self._segments: Dict[int, Segment] = {}

    def create(self, segment_id: int, size: int, n_notifications: int = 1024,
               backing: Optional[Backing] = None,
               eager: bool = False) -> Segment:
        if segment_id in self._segments:
            raise GaspiUsageError(f"segment {segment_id} already exists")
        seg = Segment(segment_id, size, n_notifications,
                      backing=backing, eager=eager)
        self._segments[segment_id] = seg
        return seg

    def get(self, segment_id: int) -> Segment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise GaspiUsageError(f"segment {segment_id} does not exist") from None

    def find(self, segment_id: int) -> Optional[Segment]:
        """The segment if registered, else ``None`` (non-raising lookup)."""
        return self._segments.get(segment_id)

    def delete(self, segment_id: int) -> None:
        if segment_id not in self._segments:
            raise GaspiUsageError(f"segment {segment_id} does not exist")
        del self._segments[segment_id]

    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self._segments

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments.values())

    def __len__(self) -> int:
        return len(self._segments)
