"""GASPI constants: timeout sentinels, return codes, health states."""

from __future__ import annotations

import enum
import math

#: Block until the procedure completes (GASPI's ``GASPI_BLOCK``).
GASPI_BLOCK: float = math.inf
#: Do not block at all, only test (GASPI's ``GASPI_TEST``).
GASPI_TEST: float = 0.0


class ReturnCode(enum.Enum):
    """Return value of every GASPI procedure (``gaspi_return_t``)."""

    SUCCESS = 0
    TIMEOUT = 1
    ERROR = 2
    QUEUE_FULL = 3

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "ReturnCode must be compared explicitly (e.g. ret is ReturnCode.SUCCESS); "
            "truthiness would silently treat TIMEOUT as true"
        )


class HealthState(enum.IntEnum):
    """Entries of the error state vector (``gaspi_state_vec``)."""

    HEALTHY = 0   # GASPI_STATE_HEALTHY
    CORRUPT = 1   # GASPI_STATE_CORRUPT


class AllreduceOp(enum.Enum):
    """Reduction operators for ``gaspi_allreduce``."""

    MIN = "min"
    MAX = "max"
    SUM = "sum"
