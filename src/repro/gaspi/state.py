"""The error state vector (``gaspi_state_vec``).

Each rank keeps a local vector with one health entry per rank.  The vector
is updated after every erroneous non-local operation (here: failed pings
and kill-confirmed deaths) and queried with ``state_vec_get`` to tell a
mere timeout apart from a broken peer.
"""

from __future__ import annotations

import numpy as np

from repro.gaspi.constants import HealthState
from repro.gaspi.errors import GaspiUsageError


class StateVector:
    """Per-rank local view of every rank's health."""

    __slots__ = ("_states",)

    def __init__(self, n_ranks: int) -> None:
        if n_ranks <= 0:
            raise GaspiUsageError("state vector needs at least one rank")
        self._states = np.full(n_ranks, HealthState.HEALTHY, dtype=np.uint8)

    def mark_corrupt(self, rank: int) -> None:
        self._check(rank)
        self._states[rank] = HealthState.CORRUPT

    def state_of(self, rank: int) -> HealthState:
        self._check(rank)
        return HealthState(int(self._states[rank]))

    def snapshot(self) -> np.ndarray:
        """Copy of the vector (what ``gaspi_state_vec_get`` returns)."""
        return self._states.copy()

    def corrupt_ranks(self) -> list:
        return [int(r) for r in np.nonzero(self._states != HealthState.HEALTHY)[0]]

    def _check(self, rank: int) -> None:
        if not (0 <= rank < len(self._states)):
            raise GaspiUsageError(f"rank {rank} outside [0, {len(self._states)})")
