"""The error state vector (``gaspi_state_vec``).

Each rank keeps a local vector with one health entry per rank.  The vector
is updated after every erroneous non-local operation (here: failed pings
and kill-confirmed deaths) and queried with ``state_vec_get`` to tell a
mere timeout apart from a broken peer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gaspi.constants import HealthState
from repro.gaspi.errors import GaspiUsageError


class StateVector:
    """Per-rank local view of every rank's health.

    The backing array is allocated on first touch: only ranks that
    actually observe an error (in practice the fault detector) pay for
    an ``n_ranks``-wide vector, so a 4096-rank world does not allocate
    4096 × 4096 health cells at construction.
    """

    __slots__ = ("_n_ranks", "_lazy_states")

    def __init__(self, n_ranks: int) -> None:
        if n_ranks <= 0:
            raise GaspiUsageError("state vector needs at least one rank")
        self._n_ranks = int(n_ranks)
        self._lazy_states: Optional[np.ndarray] = None

    @property
    def _states(self) -> np.ndarray:
        states = self._lazy_states
        if states is None:
            states = self._lazy_states = np.full(
                self._n_ranks, HealthState.HEALTHY, dtype=np.uint8)
        return states

    def mark_corrupt(self, rank: int) -> None:
        self._check(rank)
        self._states[rank] = HealthState.CORRUPT

    def state_of(self, rank: int) -> HealthState:
        self._check(rank)
        if self._lazy_states is None:
            return HealthState.HEALTHY
        return HealthState(int(self._states[rank]))

    def snapshot(self) -> np.ndarray:
        """Copy of the vector (what ``gaspi_state_vec_get`` returns)."""
        return self._states.copy()

    def corrupt_ranks(self) -> list:
        if self._lazy_states is None:
            return []
        return [int(r) for r in np.nonzero(self._states != HealthState.HEALTHY)[0]]

    def _check(self, rank: int) -> None:
        if not (0 <= rank < self._n_ranks):
            raise GaspiUsageError(f"rank {rank} outside [0, {self._n_ranks})")
