"""GASPI world assembly and program launcher.

:func:`run_gaspi` is the ``gaspi_run``/``mpiexec`` equivalent: it builds a
simulated cluster, creates one :class:`GaspiContext` per rank, spawns each
rank's main generator as a DES process, arms the fault plan, runs the
simulation and collects per-rank results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from repro.obs.tracer import NULL_TRACER, active_tracer
from repro.sim import Process, Simulator
from repro.cluster import FaultInjector, FaultPlan, Machine, MachineSpec
from repro.cluster.transport import Transport
from repro.gaspi.collectives import CollectiveEngine
from repro.gaspi.config import GaspiConfig
from repro.gaspi.context import GaspiContext
from repro.gaspi.groups import _Members
from repro.gaspi.sanitize import Sanitizer, env_enabled
from repro.gaspi.segments import SegmentArena

MainFn = Callable[[GaspiContext], Generator]


class GaspiWorld:
    """Everything shared by the ranks of one GASPI job.

    Construction is flyweight: the all-ranks membership is interned
    *once* here and shared by every context's ``group_all`` (contexts
    keep private collective sequence numbers, only the membership tuple
    and its set are shared), and :attr:`arena` pools the backing buffers
    of same-shaped per-rank segments so building 4096 contexts performs
    O(world) allocations, not O(ranks).
    """

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        config: Optional[GaspiConfig] = None,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.config = config or GaspiConfig()
        self.engine = CollectiveEngine(sim, self.config.collective_costs)
        #: the interned all-ranks membership every ``group_all`` shares
        self.members_all = _Members.intern(tuple(range(machine.n_ranks)))
        #: pooled backing store for per-rank data-plane segments
        self.arena = SegmentArena()
        #: runtime protocol monitor (``None`` unless requested — every
        #: context hook is gated on a single ``is not None`` test)
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer(self)
            if self.config.sanitize or env_enabled() else None
        )
        self.contexts: Dict[int, GaspiContext] = {}
        for rank in range(machine.n_ranks):
            self.contexts[rank] = GaspiContext(self, rank)

    @property
    def n_ranks(self) -> int:
        return self.machine.n_ranks

    @property
    def transport(self) -> Transport:
        return self.machine.transport

    def context(self, rank: int) -> GaspiContext:
        return self.contexts[rank]

    # ------------------------------------------------------------------
    def launch(self, rank: int, gen: Generator, name: str = "") -> Process:
        """Spawn a generator as (part of) the process behind ``rank``.

        The process is bound to the rank on the machine, so a fail-stop of
        the rank kills it.  Used for rank mains and for helper threads
        (e.g. the checkpoint library's copy thread).
        """
        proc = self.sim.spawn(gen, name=name or f"rank{rank}")
        self.machine.bind_process(rank, proc)
        return proc


@dataclass
class GaspiRun:
    """Outcome of one simulated job."""

    world: GaspiWorld
    procs: Dict[int, Process]
    injected: list = field(default_factory=list)

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    @property
    def machine(self) -> Machine:
        return self.world.machine

    def result(self, rank: int) -> Any:
        return self.procs[rank].result

    @property
    def results(self) -> Dict[int, Any]:
        return {rank: proc.result for rank, proc in self.procs.items()}

    @property
    def elapsed(self) -> float:
        return self.world.sim.now


def run_gaspi(
    main: MainFn,
    n_ranks: int = 4,
    procs_per_node: int = 1,
    machine_spec: Optional[MachineSpec] = None,
    config: Optional[GaspiConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    until: Optional[float] = None,
    sim: Optional[Simulator] = None,
) -> GaspiRun:
    """Build and run a GASPI job; returns the :class:`GaspiRun`.

    ``main(ctx)`` must return the rank's generator.  If ``machine_spec`` is
    given it wins over ``n_ranks``/``procs_per_node``.
    """
    sim = sim or Simulator()
    # adopt the process-wide tracer (repro.obs) for this job, unless the
    # caller already attached one to an explicitly supplied simulator
    if sim.tracer is NULL_TRACER:
        tracer = active_tracer()
        if tracer is not NULL_TRACER:
            sim.tracer = tracer
    if machine_spec is None:
        if n_ranks % procs_per_node != 0:
            raise ValueError("n_ranks must be a multiple of procs_per_node")
        machine_spec = MachineSpec(
            n_nodes=n_ranks // procs_per_node, procs_per_node=procs_per_node
        )
    machine = Machine(sim, machine_spec)
    world = GaspiWorld(sim, machine, config)

    procs: Dict[int, Process] = {}
    for rank in range(world.n_ranks):
        procs[rank] = world.launch(rank, main(world.context(rank)), name=f"rank{rank}")

    injector = None
    if fault_plan is not None:
        injector = FaultInjector(sim, machine, fault_plan)
        injector.arm()

    sim.run(until=until)
    return GaspiRun(
        world=world,
        procs=procs,
        injected=list(injector.injected) if injector else [],
    )
