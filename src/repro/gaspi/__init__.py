"""GASPI/GPI-2 emulation over the simulated cluster.

This package reproduces the communication API the paper's application is
written against: the GASPI specification's segments, queues, one-sided
communication with notifications, passive communication, global atomics,
groups and timed-out collectives, plus the error state vector and the two
GPI-2 extensions the authors rely on (``proc_ping`` and ``proc_kill``).

The central object is :class:`GaspiContext` — one per rank, handed to the
rank's main generator by :func:`run_gaspi`.  Every potentially blocking
procedure takes a timeout (``GASPI_BLOCK`` blocks forever, ``GASPI_TEST``
polls) and is a generator: call it as ``ret = yield from ctx.barrier(...)``.

Example::

    from repro.gaspi import run_gaspi, GASPI_BLOCK, ReturnCode

    def main(ctx):
        ret = yield from ctx.barrier(ctx.group_all, GASPI_BLOCK)
        assert ret is ReturnCode.SUCCESS
        return ctx.rank

    result = run_gaspi(n_ranks=4, main=main)
"""

from repro.gaspi.constants import (
    GASPI_BLOCK,
    GASPI_TEST,
    ReturnCode,
    HealthState,
    AllreduceOp,
)
from repro.gaspi.errors import GaspiUsageError
from repro.gaspi.segments import Segment, SegmentTable
from repro.gaspi.notifications import NotificationBoard
from repro.gaspi.queues import Queue
from repro.gaspi.groups import Group
from repro.gaspi.collectives import CollectiveEngine, CollectiveCosts
from repro.gaspi.state import StateVector
from repro.gaspi.config import GaspiConfig
from repro.gaspi.context import GaspiContext
from repro.gaspi.runtime import GaspiWorld, GaspiRun, run_gaspi
from repro.gaspi.sanitize import Sanitizer, SanitizerError

__all__ = [
    "GASPI_BLOCK",
    "GASPI_TEST",
    "ReturnCode",
    "HealthState",
    "AllreduceOp",
    "GaspiUsageError",
    "Segment",
    "SegmentTable",
    "NotificationBoard",
    "Queue",
    "Group",
    "CollectiveEngine",
    "CollectiveCosts",
    "StateVector",
    "GaspiConfig",
    "GaspiContext",
    "GaspiWorld",
    "GaspiRun",
    "run_gaspi",
    "Sanitizer",
    "SanitizerError",
]
