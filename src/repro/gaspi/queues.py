"""Communication queues: completion tracking for one-sided operations.

Posting a one-sided operation attaches its transport completion event to a
queue; ``gaspi_wait`` flushes the queue — it blocks until every operation
outstanding *at call time* has completed, or the timeout elapses.  An
operation whose target died never completes, so the queue keeps returning
``GASPI_TIMEOUT``: exactly what the paper's workers observe while talking
to a failed rank.  ``queue_purge`` (a GPI-2 fault-tolerance extension)
drops such stuck operations during recovery.
"""

from __future__ import annotations

from typing import Any, List

from repro.sim import Event
from repro.gaspi.errors import GaspiUsageError


class Queue:
    """One communication queue of one rank."""

    __slots__ = ("queue_id", "depth", "_outstanding")

    def __init__(self, queue_id: int, depth: int = 4096) -> None:
        if depth <= 0:
            raise GaspiUsageError("queue depth must be positive")
        self.queue_id = queue_id
        self.depth = depth
        self._outstanding: List[Event] = []

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of not-yet-completed operations."""
        self._reap()
        return len(self._outstanding)

    @property
    def full(self) -> bool:
        # reaping only shrinks the queue: fewer raw entries than the depth
        # can never be full, so the common case skips the reap entirely
        if len(self._outstanding) < self.depth:
            return False
        return self.size >= self.depth

    def post(self, completion: Event) -> None:
        """Attach a posted operation's completion event."""
        self._outstanding.append(completion)

    def purge(self) -> int:
        """Drop every outstanding operation (GPI-2 ``gaspi_queue_purge``).

        Returns how many operations were dropped.  Used by the recovery
        path to clear operations stuck on dead targets.
        """
        self._reap()
        dropped = len(self._outstanding)
        self._outstanding = []
        return dropped

    def snapshot(self) -> List[Event]:
        """Operations outstanding right now (the set ``wait`` must flush)."""
        self._reap()
        return list(self._outstanding)

    def drain_event(self) -> "Event | None":
        """One event firing when everything outstanding *now* completes.

        Returns ``None`` when the queue is already drained (the flush fast
        path: no blocking needed at all), the lone completion event when a
        single op is pending, or an aggregate event counting down the
        snapshot otherwise.  A ``wait`` built on this blocks **once** per
        flush instead of once per op.
        """
        self._reap()
        pending = self._outstanding
        if not pending:
            return None
        if len(pending) == 1:
            return pending[0]
        drained = Event(name=f"q{self.queue_id}.drain")
        remaining = len(pending)

        def _one_done(_value: Any) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                drained.succeed(None)

        for ev in pending:
            ev.add_callback(_one_done)
        return drained

    def _reap(self) -> None:
        self._outstanding = [ev for ev in self._outstanding if not ev.fired]
