"""Runtime protocol sanitizer: the dynamic twin of ftlint's flow rules.

ftlint's FT007–FT010 prove protocol discipline over *paths the parser
can see*; this module asserts the same invariants over the paths a run
actually takes.  When enabled (``REPRO_SANITIZE=1``, the ``sanitize``
field of :class:`~repro.gaspi.config.GaspiConfig`, or the ``sanitize``
pytest marker), every :class:`~repro.gaspi.context.GaspiContext` call
reports into one world-level :class:`Sanitizer`, which raises
:class:`SanitizerError` — and emits a ``sanitizer_violation`` trace
event — the moment a rank breaks the contract:

``double_post``
    re-posting a *live* notification id with the same value (the first
    flag has not been consumed by ``notify_reset``); posting a
    different value is legitimate tag supersession (the spMVM
    overwrites a stale halo tag by design).
``post_after_full``
    posting on a queue that previously returned ``QUEUE_FULL`` without
    an intervening ``wait``/``queue_purge`` on that queue — the
    paper's Listing-1 discipline (flush, then retry).
``reset_never_posted``
    ``notify_reset`` consuming a slot (old value 0) that no rank ever
    posted toward — waiting on a notification nobody sends.
``segment_use_after_free``
    any access to a segment id after ``segment_delete`` with no
    re-creating ``segment_create`` (the FT008 recovery-epoch rebind
    discipline).
``segment_oob``
    a ``segment_view`` whose ``offset``/``count`` reach past the end
    of the segment.

The sanitizer is pure bookkeeping on dict/set lookups, costs nothing
when disabled (``world.sanitizer is None`` — one attribute test per
call), and never alters virtual-time behaviour when enabled.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.gaspi.runtime import GaspiWorld
    from repro.gaspi.segments import Segment

__all__ = ["SanitizerError", "Sanitizer", "Violation", "env_enabled"]

ENV_FLAG = "REPRO_SANITIZE"


def env_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """Is the sanitizer requested via ``REPRO_SANITIZE``?"""
    env = environ if environ is not None else dict(os.environ)
    return env.get(ENV_FLAG, "").strip() not in ("", "0", "false", "off")


class SanitizerError(AssertionError):
    """A GASPI protocol violation caught at runtime.

    Subclasses :class:`AssertionError` so a violating test fails like a
    broken assertion rather than erroring, and so production code that
    legitimately catches ``GaspiError``/``SimError`` never swallows it.
    """


#: one recorded violation: kind, virtual time, rank, detail fields
Violation = Tuple[str, float, int, Dict[str, Any]]


class Sanitizer:
    """World-level monitor for the GASPI protocol invariants."""

    def __init__(self, world: "GaspiWorld") -> None:
        self.world = world
        self.violations: List[Violation] = []
        #: live (unconsumed) notifications: (dst, segment, id) -> value
        self._live: Dict[Tuple[int, int, int], int] = {}
        #: every (dst, segment, id) ever posted toward
        self._posted: Set[Tuple[int, int, int]] = set()
        #: (rank, queue) pairs that saw QUEUE_FULL and owe a flush
        self._owing_flush: Set[Tuple[int, int]] = set()
        #: (rank, segment) deleted and not re-created
        self._freed: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    def _violate(self, kind: str, rank: int, **details: Any) -> None:
        now = self.world.sim.now
        self.violations.append((kind, now, rank, details))
        tracer = self.world.sim.tracer
        if tracer.enabled:
            tracer.emit(now, rank, "sanitizer_violation", kind=kind,
                        **details)
        detail = ", ".join(f"{key}={value}"
                           for key, value in sorted(details.items()))
        raise SanitizerError(
            f"GASPI protocol violation [{kind}] on rank {rank} "
            f"at t={now:.6g}: {detail}"
        )

    # ------------------------------------------------------------------
    # queue discipline
    # ------------------------------------------------------------------
    def on_queue_full(self, rank: int, queue_id: int) -> None:
        """A posting call just returned ``QUEUE_FULL``."""
        self._owing_flush.add((rank, queue_id))

    def on_post(self, rank: int, queue_id: int) -> None:
        """A posting call is about to occupy a slot on ``queue_id``."""
        if (rank, queue_id) in self._owing_flush:
            self._violate(
                "post_after_full", rank, queue=queue_id,
                hint="call wait()/queue_purge() after QUEUE_FULL "
                     "before posting again (paper Listing 1)",
            )

    def on_queue_relief(self, rank: int, queue_id: int) -> None:
        """``wait``/``queue_purge`` on ``queue_id``: the debt is paid."""
        self._owing_flush.discard((rank, queue_id))

    # ------------------------------------------------------------------
    # notifications
    # ------------------------------------------------------------------
    def on_notify(self, rank: int, dst_rank: int, segment_id: int,
                  notification_id: int, value: int) -> None:
        """A notification is being posted toward ``dst_rank``."""
        key = (dst_rank, segment_id, notification_id)
        if self._live.get(key) == value:
            self._violate(
                "double_post", rank, dst=dst_rank, segment=segment_id,
                notification=notification_id, value=value,
                hint="the previous identical post has not been consumed "
                     "by notify_reset",
            )
        self._live[key] = value
        self._posted.add(key)

    def on_notify_reset(self, rank: int, segment_id: int,
                        notification_id: int, old_value: int) -> None:
        """``notify_reset`` consumed a slot on the local segment."""
        key = (rank, segment_id, notification_id)
        if old_value == 0 and key not in self._posted:
            self._violate(
                "reset_never_posted", rank, segment=segment_id,
                notification=notification_id,
                hint="consuming a notification no rank ever posted",
            )
        self._live.pop(key, None)

    # ------------------------------------------------------------------
    # segment epochs
    # ------------------------------------------------------------------
    def on_segment_create(self, rank: int, segment_id: int) -> None:
        self._freed.discard((rank, segment_id))

    def on_segment_delete(self, rank: int, segment_id: int) -> None:
        self._freed.add((rank, segment_id))

    def on_segment_access(self, rank: int, segment_id: int,
                          op: str) -> None:
        """Any use of a local segment id (lookup, view, data source)."""
        if (rank, segment_id) in self._freed:
            self._violate(
                "segment_use_after_free", rank, segment=segment_id, op=op,
                hint="segment_delete without a rebinding segment_create "
                     "(recovery-epoch discipline, ftlint FT008)",
            )

    def on_segment_view(self, rank: int, segment: "Segment", dtype: Any,
                        offset: int, count: Optional[int]) -> None:
        """Bounds-check a typed view before it is taken."""
        itemsize = int(np.dtype(dtype).itemsize)
        end = offset + (count * itemsize if count is not None else 0)
        if offset < 0 or end > segment.size or offset > segment.size:
            self._violate(
                "segment_oob", rank, segment=segment.segment_id,
                offset=offset, count=count,
                size=segment.size,
                hint="view reaches past the end of the segment",
            )
