"""Groups: GASPI's analogue of MPI communicators.

A group is built locally (``group_create`` + ``group_add``) and becomes
usable only after the *collective* ``group_commit`` — whose blocking nature
is the paper's second recovery overhead (OHF2).  Identity across ranks is
by (tag, membership): all ranks of an SPMD program build the "same" group
with the same member set; the FT layer passes the recovery epoch as tag so
that successive reconstructions never collide in the collective engine.

Membership is backed by a set (O(1) duplicate checks) plus the insertion
list, with the sorted view cached between mutations — at paper scale the
recovery path adds hundreds of ranks per rebuild and the collective engine
reads ``members`` once per arrival, so both operations must stay cheap.
:meth:`Group.add_many` ingests a whole rank array in one call (the
vectorized rebuild path of ``repro.ft.recovery``).
"""

from __future__ import annotations

from typing import (Dict, FrozenSet, Iterable, List, Optional, Set, Tuple,
                    Union, cast)

from repro.gaspi.errors import GaspiUsageError


class _Members(tuple):
    """Membership tuple with a cached hash, interned per distinct set.

    Collective instance keys embed the group's membership, and the
    engine hashes that key on every dict operation.  A plain tuple
    recomputes an O(n) hash per lookup, which turns one collective into
    O(n²) work across its arrivals at 2048+ ranks.  Interning yields one
    object per distinct membership — equal keys hit the per-element
    identity fast path of tuple comparison — and the cached hash makes
    every subsequent key hash O(1).  Content equality with plain tuples
    is inherited from ``tuple``, so group identities still compare by
    value (and matching degrades gracefully to content equality if an
    interned instance is ever dropped from the table).
    """

    _hash: int
    _set: Optional[FrozenSet[int]]
    _interned: Dict[Tuple[int, ...], "_Members"] = {}

    def __new__(cls, ranks: Iterable[int]) -> "_Members":
        self = super().__new__(cls, ranks)
        self._hash = tuple.__hash__(self)
        self._set = None
        return self

    def __hash__(self) -> int:
        return self._hash

    def member_set(self) -> FrozenSet[int]:
        """The membership as a set, built once per interned instance.

        Flyweight groups (:meth:`Group.from_members`) delegate their
        O(1) containment checks here, so a world with 4096 contexts
        holds one shared set instead of 4096 private copies.
        """
        cached = self._set
        if cached is None:
            cached = self._set = frozenset(self)
        return cached

    @classmethod
    def intern(cls, ranks: Tuple[int, ...]) -> "_Members":
        cached = cls._interned.get(ranks)
        if cached is None:
            if len(cls._interned) >= 4096:
                # safe to drop: matching falls back to content equality
                cls._interned.clear()
            cached = cls(ranks)
            cls._interned[ranks] = cached
        return cached


class Group:
    """A (possibly not yet committed) ordered set of ranks."""

    __slots__ = ("tag", "_members", "_member_set", "_sorted", "committed",
                 "coll_seq")

    def __init__(self, tag: int = 0) -> None:
        self.tag = tag
        self._members: Union[List[int], _Members] = []
        self._member_set: Optional[Set[int]] = set()
        self._sorted: Optional[Tuple[int, ...]] = None
        self.committed = False
        #: per-rank collective sequence number on this group; incremented
        #: only on collective *success* so timed-out calls retry the same
        #: collective instance (GASPI's retry-with-same-parameters rule).
        self.coll_seq = 0

    @classmethod
    def from_members(cls, tag: int, members: _Members,
                     committed: bool = True) -> "Group":
        """Flyweight constructor over a pre-sorted interned membership.

        The group *shares* the interned tuple and its lazily built
        member set instead of materialising a private list/set — O(1)
        per context where ``add_many(range(n))`` was O(n), which is what
        lets a 4096-rank world build all its ``group_all`` instances
        from a single membership object.  A later mutation (``add`` on a
        deleted/uncommitted group) detaches via copy-on-write.
        """
        group = cls.__new__(cls)
        group.tag = tag
        group._members = members
        group._member_set = None
        group._sorted = members
        group.committed = committed
        group.coll_seq = 0
        return group

    def _own_members(self) -> Set[int]:
        """Copy-on-write: detach from a shared interned membership."""
        self._members = list(self._members)
        self._member_set = set(self._members)
        return self._member_set

    def adopt_members(self, members: _Members) -> None:
        """Fill an empty group by adopting a shared interned membership.

        ``members`` must be in ascending rank order (the interned form
        every producer of whole-group memberships emits).  The group
        shares the tuple and its set, so a 2048-rank recovery's group
        rebuild on every survivor is O(1) after the one interning pass
        instead of O(n) per rank; mutation later detaches (COW).
        """
        if self.committed:
            raise GaspiUsageError("cannot adopt members on a committed group")
        if len(self._members):
            raise GaspiUsageError("cannot adopt members on a non-empty group")
        self._members = members
        self._member_set = None
        self._sorted = members

    # ------------------------------------------------------------------
    def add(self, rank: int) -> None:
        """Add a rank (``gaspi_group_add``); only before commit."""
        if self.committed:
            raise GaspiUsageError("cannot add ranks to a committed group")
        if rank < 0:
            raise GaspiUsageError(f"invalid rank {rank}")
        member_set = self._member_set
        if member_set is None:
            member_set = self._own_members()
        if rank in member_set:
            raise GaspiUsageError(f"rank {rank} already in group")
        cast(List[int], self._members).append(rank)
        member_set.add(rank)
        self._sorted = None

    def add_many(self, ranks: Iterable[int]) -> None:
        """Add a whole batch of ranks in one call.

        Semantically identical to calling :meth:`add` per rank (same
        validation, same failure on duplicates) but O(n) instead of the
        historical O(n^2) membership scans — the fast path of the
        vectorized group rebuild.
        """
        if self.committed:
            raise GaspiUsageError("cannot add ranks to a committed group")
        batch = [int(r) for r in ranks]
        if not batch:
            return
        if min(batch) < 0:
            bad = min(batch)
            raise GaspiUsageError(f"invalid rank {bad}")
        batch_set = set(batch)
        if len(batch_set) != len(batch):
            seen: Set[int] = set()
            for r in batch:
                if r in seen:
                    raise GaspiUsageError(f"rank {r} already in group")
                seen.add(r)
        member_set = self._member_set
        if member_set is None:
            member_set = self._own_members()
        overlap = batch_set & member_set
        if overlap:
            raise GaspiUsageError(f"rank {min(overlap)} already in group")
        cast(List[int], self._members).extend(batch)
        member_set |= batch_set
        self._sorted = None

    @property
    def members(self) -> Tuple[int, ...]:
        """Membership in deterministic (sorted) order.

        Returns the interned :class:`_Members` instance — every group
        with the same membership (across all ranks) shares one tuple
        object, so collective-key hashing and matching stay O(1).
        """
        if self._sorted is None:
            self._sorted = _Members.intern(tuple(sorted(self._members)))
        return self._sorted

    @property
    def size(self) -> int:
        return len(self._members)

    def __contains__(self, rank: int) -> bool:
        member_set = self._member_set
        if member_set is None:
            return rank in cast(_Members, self._members).member_set()
        return rank in member_set

    def identity(self) -> Tuple:
        """Cross-rank identity used to match collective instances."""
        return (self.tag, self.members)

    def require_committed(self) -> None:
        if not self.committed:
            raise GaspiUsageError("group used before gaspi_group_commit")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "committed" if self.committed else "building"
        return f"<Group tag={self.tag} {state} members={self.members}>"
