"""Groups: GASPI's analogue of MPI communicators.

A group is built locally (``group_create`` + ``group_add``) and becomes
usable only after the *collective* ``group_commit`` — whose blocking nature
is the paper's second recovery overhead (OHF2).  Identity across ranks is
by (tag, membership): all ranks of an SPMD program build the "same" group
with the same member set; the FT layer passes the recovery epoch as tag so
that successive reconstructions never collide in the collective engine.

Membership is backed by a set (O(1) duplicate checks) plus the insertion
list, with the sorted view cached between mutations — at paper scale the
recovery path adds hundreds of ranks per rebuild and the collective engine
reads ``members`` once per arrival, so both operations must stay cheap.
:meth:`Group.add_many` ingests a whole rank array in one call (the
vectorized rebuild path of ``repro.ft.recovery``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.gaspi.errors import GaspiUsageError


class _Members(tuple):
    """Membership tuple with a cached hash, interned per distinct set.

    Collective instance keys embed the group's membership, and the
    engine hashes that key on every dict operation.  A plain tuple
    recomputes an O(n) hash per lookup, which turns one collective into
    O(n²) work across its arrivals at 2048+ ranks.  Interning yields one
    object per distinct membership — equal keys hit the per-element
    identity fast path of tuple comparison — and the cached hash makes
    every subsequent key hash O(1).  Content equality with plain tuples
    is inherited from ``tuple``, so group identities still compare by
    value (and matching degrades gracefully to content equality if an
    interned instance is ever dropped from the table).
    """

    _hash: int
    _interned: Dict[Tuple[int, ...], "_Members"] = {}

    def __new__(cls, ranks: Iterable[int]) -> "_Members":
        self = super().__new__(cls, ranks)
        self._hash = tuple.__hash__(self)
        return self

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def intern(cls, ranks: Tuple[int, ...]) -> "_Members":
        cached = cls._interned.get(ranks)
        if cached is None:
            if len(cls._interned) >= 4096:
                # safe to drop: matching falls back to content equality
                cls._interned.clear()
            cached = cls(ranks)
            cls._interned[ranks] = cached
        return cached


class Group:
    """A (possibly not yet committed) ordered set of ranks."""

    __slots__ = ("tag", "_members", "_member_set", "_sorted", "committed",
                 "coll_seq")

    def __init__(self, tag: int = 0) -> None:
        self.tag = tag
        self._members: List[int] = []
        self._member_set: Set[int] = set()
        self._sorted: Optional[Tuple[int, ...]] = None
        self.committed = False
        #: per-rank collective sequence number on this group; incremented
        #: only on collective *success* so timed-out calls retry the same
        #: collective instance (GASPI's retry-with-same-parameters rule).
        self.coll_seq = 0

    # ------------------------------------------------------------------
    def add(self, rank: int) -> None:
        """Add a rank (``gaspi_group_add``); only before commit."""
        if self.committed:
            raise GaspiUsageError("cannot add ranks to a committed group")
        if rank < 0:
            raise GaspiUsageError(f"invalid rank {rank}")
        if rank in self._member_set:
            raise GaspiUsageError(f"rank {rank} already in group")
        self._members.append(rank)
        self._member_set.add(rank)
        self._sorted = None

    def add_many(self, ranks: Iterable[int]) -> None:
        """Add a whole batch of ranks in one call.

        Semantically identical to calling :meth:`add` per rank (same
        validation, same failure on duplicates) but O(n) instead of the
        historical O(n^2) membership scans — the fast path of the
        vectorized group rebuild.
        """
        if self.committed:
            raise GaspiUsageError("cannot add ranks to a committed group")
        batch = [int(r) for r in ranks]
        if not batch:
            return
        if min(batch) < 0:
            bad = min(batch)
            raise GaspiUsageError(f"invalid rank {bad}")
        batch_set = set(batch)
        if len(batch_set) != len(batch):
            seen: Set[int] = set()
            for r in batch:
                if r in seen:
                    raise GaspiUsageError(f"rank {r} already in group")
                seen.add(r)
        overlap = batch_set & self._member_set
        if overlap:
            raise GaspiUsageError(f"rank {min(overlap)} already in group")
        self._members.extend(batch)
        self._member_set |= batch_set
        self._sorted = None

    @property
    def members(self) -> Tuple[int, ...]:
        """Membership in deterministic (sorted) order.

        Returns the interned :class:`_Members` instance — every group
        with the same membership (across all ranks) shares one tuple
        object, so collective-key hashing and matching stay O(1).
        """
        if self._sorted is None:
            self._sorted = _Members.intern(tuple(sorted(self._members)))
        return self._sorted

    @property
    def size(self) -> int:
        return len(self._members)

    def __contains__(self, rank: int) -> bool:
        return rank in self._member_set

    def identity(self) -> Tuple:
        """Cross-rank identity used to match collective instances."""
        return (self.tag, self.members)

    def require_committed(self) -> None:
        if not self.committed:
            raise GaspiUsageError("group used before gaspi_group_commit")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "committed" if self.committed else "building"
        return f"<Group tag={self.tag} {state} members={self.members}>"
