"""Groups: GASPI's analogue of MPI communicators.

A group is built locally (``group_create`` + ``group_add``) and becomes
usable only after the *collective* ``group_commit`` — whose blocking nature
is the paper's second recovery overhead (OHF2).  Identity across ranks is
by (tag, membership): all ranks of an SPMD program build the "same" group
with the same member set; the FT layer passes the recovery epoch as tag so
that successive reconstructions never collide in the collective engine.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.gaspi.errors import GaspiUsageError


class Group:
    """A (possibly not yet committed) ordered set of ranks."""

    __slots__ = ("tag", "_members", "committed", "coll_seq")

    def __init__(self, tag: int = 0) -> None:
        self.tag = tag
        self._members: List[int] = []
        self.committed = False
        #: per-rank collective sequence number on this group; incremented
        #: only on collective *success* so timed-out calls retry the same
        #: collective instance (GASPI's retry-with-same-parameters rule).
        self.coll_seq = 0

    # ------------------------------------------------------------------
    def add(self, rank: int) -> None:
        """Add a rank (``gaspi_group_add``); only before commit."""
        if self.committed:
            raise GaspiUsageError("cannot add ranks to a committed group")
        if rank < 0:
            raise GaspiUsageError(f"invalid rank {rank}")
        if rank in self._members:
            raise GaspiUsageError(f"rank {rank} already in group")
        self._members.append(rank)

    @property
    def members(self) -> Tuple[int, ...]:
        """Membership in deterministic (sorted) order."""
        return tuple(sorted(self._members))

    @property
    def size(self) -> int:
        return len(self._members)

    def __contains__(self, rank: int) -> bool:
        return rank in self._members

    def identity(self) -> Tuple:
        """Cross-rank identity used to match collective instances."""
        return (self.tag, self.members)

    def require_committed(self) -> None:
        if not self.committed:
            raise GaspiUsageError("group used before gaspi_group_commit")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "committed" if self.committed else "building"
        return f"<Group tag={self.tag} {state} members={self.members}>"
