"""Notifications: GASPI's remote-completion flags.

Each segment owns an array of notification slots.  ``gaspi_notify`` (and the
fused ``gaspi_write_notify``) set a *non-zero* value in a slot of the remote
segment; the owner waits with ``notify_waitsome`` over a slot range and then
atomically consumes the value with ``notify_reset``.  This is the mechanism
the paper's spMVM library uses to learn its halo values have landed.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.sim import Event
from repro.gaspi.errors import GaspiUsageError


class NotificationBoard:
    """Notification slots of one segment plus their waiters."""

    __slots__ = ("values", "_waiters")

    def __init__(self, n_slots: int) -> None:
        if n_slots <= 0:
            raise GaspiUsageError("need at least one notification slot")
        self.values = np.zeros(n_slots, dtype=np.uint64)
        # (first, num, event) — fired with the lowest pending slot id in range
        self._waiters: List[Tuple[int, int, Event]] = []

    @property
    def n_slots(self) -> int:
        return len(self.values)

    def check_id(self, notification_id: int) -> None:
        if not (0 <= notification_id < self.n_slots):
            raise GaspiUsageError(
                f"notification id {notification_id} outside [0, {self.n_slots})"
            )

    # ------------------------------------------------------------------
    # producer side (executed at message delivery by the transport)
    # ------------------------------------------------------------------
    def post(self, notification_id: int, value: int) -> None:
        """Set a slot (remote ``gaspi_notify`` landing)."""
        self.check_id(notification_id)
        if value == 0:
            raise GaspiUsageError("notification value must be non-zero")
        self.values[notification_id] = value
        self._wake(notification_id)

    def _wake(self, notification_id: int) -> None:
        still_waiting: List[Tuple[int, int, Event]] = []
        for first, num, event in self._waiters:
            if first <= notification_id < first + num:
                event.succeed(notification_id)
            else:
                still_waiting.append((first, num, event))
        self._waiters = still_waiting

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def pending_in(self, first: int, num: int) -> int:
        """Lowest set slot id in ``[first, first+num)``, or -1 if none."""
        self.check_id(first)
        if num <= 0 or first + num > self.n_slots:
            raise GaspiUsageError(f"bad notification range [{first}, {first + num})")
        window = self.values[first : first + num]
        hits = np.nonzero(window)[0]
        return int(first + hits[0]) if hits.size else -1

    def subscribe(self, first: int, num: int) -> Event:
        """Register a waiter on the range (used by ``notify_waitsome``)."""
        event = Event(name=f"notify[{first}:{first + num})")
        self._waiters.append((first, num, event))
        return event

    def unsubscribe(self, event: Event) -> None:
        self._waiters = [(f, n, e) for (f, n, e) in self._waiters if e is not event]

    def reset(self, notification_id: int) -> int:
        """Consume a slot: return its old value and clear it."""
        self.check_id(notification_id)
        old = int(self.values[notification_id])
        self.values[notification_id] = 0
        return old
