"""Notifications: GASPI's remote-completion flags.

Each segment owns an array of notification slots.  ``gaspi_notify`` (and the
fused ``gaspi_write_notify``) set a *non-zero* value in a slot of the remote
segment; the owner waits with ``notify_waitsome`` over a slot range and then
atomically consumes the value with ``notify_reset``.  This is the mechanism
the paper's spMVM library uses to learn its halo values have landed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.sim import Event
from repro.gaspi.errors import GaspiUsageError


class NotificationBoard:
    """Notification slots of one segment plus their waiters.

    The slot array is built on the first post/consume — a board that is
    registered but never notified (most segments of a large world) costs
    one small object, not ``n_slots`` zeroed ``uint64`` cells.
    """

    __slots__ = ("_n_slots", "_values", "_waiters")

    def __init__(self, n_slots: int) -> None:
        if n_slots <= 0:
            raise GaspiUsageError("need at least one notification slot")
        self._n_slots = int(n_slots)
        self._values: Optional[np.ndarray] = None
        # (first, num, event) — fired with the lowest pending slot id in range
        self._waiters: List[Tuple[int, int, Event]] = []

    @property
    def values(self) -> np.ndarray:
        """The slot array, allocated on first touch."""
        values = self._values
        if values is None:
            values = self._values = np.zeros(self._n_slots, dtype=np.uint64)
        return values

    @property
    def n_slots(self) -> int:
        return self._n_slots

    def check_id(self, notification_id: int) -> None:
        if not (0 <= notification_id < self.n_slots):
            raise GaspiUsageError(
                f"notification id {notification_id} outside [0, {self.n_slots})"
            )

    # ------------------------------------------------------------------
    # producer side (executed at message delivery by the transport)
    # ------------------------------------------------------------------
    def post(self, notification_id: int, value: int) -> None:
        """Set a slot (remote ``gaspi_notify`` landing)."""
        self.check_id(notification_id)
        if value == 0:
            raise GaspiUsageError("notification value must be non-zero")
        self.values[notification_id] = value
        self._wake(notification_id)

    def post_many(self, notifications: List[Tuple[int, int]]) -> None:
        """Land a batch of ``(id, value)`` flags in one operation.

        The batch is applied in ascending id order — matching
        ``gaspi_write_list_notify``, whose constituent notifications become
        visible as one ordered group — and waiters are woken once, after
        the whole batch is in place, instead of once per flag.
        """
        for notification_id, value in notifications:
            self.check_id(notification_id)
            if value == 0:
                raise GaspiUsageError("notification value must be non-zero")
        for notification_id, value in sorted(notifications):
            self.values[notification_id] = value
        if self._waiters:
            for notification_id, _value in sorted(notifications):
                self._wake(notification_id)
                if not self._waiters:
                    break

    def _wake(self, notification_id: int) -> None:
        # Detach matching waiters *before* firing them: events resume their
        # waiters inline, and a resumed process may subscribe again for the
        # same span right away — appending to a list still being iterated
        # would wake (and re-wake) the new subscription forever.
        waiters = self._waiters
        fired = [w for w in waiters
                 if w[0] <= notification_id < w[0] + w[1]]
        if not fired:
            return
        self._waiters = [w for w in waiters
                         if not (w[0] <= notification_id < w[0] + w[1])]
        for _first, _num, event in fired:
            event.succeed(notification_id)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def pending_in(self, first: int, num: int) -> int:
        """Lowest set slot id in ``[first, first+num)``, or -1 if none."""
        self.check_id(first)
        if num <= 0 or first + num > self.n_slots:
            raise GaspiUsageError(f"bad notification range [{first}, {first + num})")
        window = self.values[first : first + num]
        hits = np.nonzero(window)[0]
        return int(first + hits[0]) if hits.size else -1

    def subscribe(self, first: int, num: int) -> Event:
        """Register a waiter on the range (used by ``notify_waitsome``)."""
        event = Event(name=f"notify[{first}:{first + num})")
        self._waiters.append((first, num, event))
        return event

    def unsubscribe(self, event: Event) -> None:
        self._waiters = [(f, n, e) for (f, n, e) in self._waiters if e is not event]

    def reset(self, notification_id: int) -> int:
        """Consume a slot: return its old value and clear it."""
        self.check_id(notification_id)
        old = int(self.values[notification_id])
        self.values[notification_id] = 0
        return old

    def reset_many(self, notification_ids: Iterable[int]) -> List[int]:
        """Consume a batch of slots in one operation.

        Returns the old values in the order the ids were given.  Vectorized
        counterpart of calling :meth:`reset` per id — one bounds check pass,
        one fancy-indexed clear.
        """
        ids = np.asarray(list(notification_ids), dtype=np.intp)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n_slots):
            raise GaspiUsageError(
                f"notification id outside [0, {self.n_slots}) in batch reset"
            )
        old = self.values[ids].astype(int).tolist()
        self.values[ids] = 0
        return old
