"""Trace serialisation: JSONL files and ``chrome://tracing`` exports.

Two interchange formats:

* **JSONL** — one event per line, each a flat JSON object with the
  :class:`~repro.obs.tracer.TraceEvent` columns plus a ``task`` label
  identifying which sweep task emitted it.  Append-friendly, greppable,
  and round-trips via :func:`events_from_jsonl`.
* **Chrome trace** — the Trace Event Format consumed by
  ``chrome://tracing`` / Perfetto.  Span events (``dur > 0``) become
  complete (``"ph": "X"``) events, instants become ``"ph": "i"``.
  Each sweep task maps to a ``pid`` (named via metadata events) and each
  rank to a ``tid``, so overlapping scenarios stay visually separate.

Timestamps: trace events are stamped at their *end* in virtual seconds;
Chrome wants start timestamps in microseconds, hence ``ts = (t-dur)*1e6``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, List, Sequence, Tuple

from .tracer import TraceEvent

#: a labelled trace: (task label, events in emission order)
TaskTrace = Tuple[str, Sequence[TraceEvent]]


def event_to_record(ev: TraceEvent, task: str = "") -> dict:
    rec = {"t": ev.t, "rank": ev.rank, "etype": ev.etype, "dur": ev.dur}
    if task:
        rec["task"] = task
    if ev.fields:
        rec["fields"] = ev.fields
    return rec


def write_jsonl(traces: Iterable[TaskTrace], path: str) -> int:
    """Write labelled traces as JSONL; returns the number of lines."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for task, events in traces:
            for ev in events:
                fh.write(json.dumps(event_to_record(ev, task),
                                    sort_keys=True))
                fh.write("\n")
                n += 1
    return n


def events_from_jsonl(path: str) -> List[Tuple[str, TraceEvent]]:
    """Read a JSONL trace back as ``(task, event)`` pairs in file order."""
    out: List[Tuple[str, TraceEvent]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            out.append((rec.get("task", ""),
                        TraceEvent(rec["t"], rec["rank"], rec["etype"],
                                   rec.get("dur", 0.0),
                                   rec.get("fields", {}))))
    return out


def chrome_trace(traces: Iterable[TaskTrace]) -> dict:
    """Build a Trace-Event-Format document from labelled traces."""
    out: List[dict] = []
    for pid, (task, events) in enumerate(traces):
        out.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": task or f"task-{pid}"},
        })
        for ev in events:
            args = {k: _jsonable(v) for k, v in ev.fields.items()}
            tid = max(ev.rank, 0)
            if ev.dur > 0.0:
                out.append({
                    "ph": "X", "name": ev.etype, "cat": "repro",
                    "pid": pid, "tid": tid,
                    "ts": (ev.t - ev.dur) * 1e6, "dur": ev.dur * 1e6,
                    "args": args,
                })
            else:
                out.append({
                    "ph": "i", "name": ev.etype, "cat": "repro",
                    "pid": pid, "tid": tid, "ts": ev.t * 1e6,
                    "s": "t", "args": args,
                })
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(traces: Iterable[TaskTrace], path: str) -> int:
    """Write a ``chrome://tracing``-loadable JSON file; returns #events."""
    doc = chrome_trace(traces)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


def _jsonable(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
