"""repro.obs — structured observability for the failure lifecycle.

* :mod:`repro.obs.tracer` — typed trace events in a ring buffer, the
  module-level active tracer (``install``/``deactivate``/``active_tracer``)
  and the zero-overhead :data:`~repro.obs.tracer.NULL_TRACER` default.
* :mod:`repro.obs.metrics` — counters/gauges/histograms and the standard
  aggregation :func:`~repro.obs.metrics.registry_from_events`.
* :mod:`repro.obs.timeline` — per-failure lifecycle reconstruction
  (detection → rebuild → promote → restore → rollback chains).
* :mod:`repro.obs.export` — JSONL and ``chrome://tracing`` serialisation.

See ``OBSERVABILITY.md`` for the guide and ``python -m repro trace`` for
the CLI entry point.
"""

from .tracer import (  # noqa: F401
    BROADCAST_FLAGS, CKPT_MIRROR, CKPT_WRITE, DETECTION, EVENT_TYPES,
    FAILURE_INJECTED, GROUP_REBUILD, NULL_TRACER, PING, PROC_KILL, RESTORE,
    ROLLBACK, SANITIZER_VIOLATION, SOLVER_ITER, SPARE_PROMOTE, TraceEvent,
    Tracer, NullTracer, active_tracer, deactivate, install,
)
from .metrics import (  # noqa: F401
    Counter, Gauge, Histogram, MetricsRegistry, registry_from_events,
    registry_from_traces,
)
from .timeline import (  # noqa: F401
    FailureRecord, build_timelines, phase_stats, timeline_report,
)
from .export import (  # noqa: F401
    chrome_trace, events_from_jsonl, write_chrome_trace, write_jsonl,
)
