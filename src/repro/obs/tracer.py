"""Structured failure-lifecycle tracing: typed events in a ring buffer.

The paper's claims are *timings of a failure lifecycle* — how long the
ping-based FD takes to notice a dead rank, how long the group rebuild and
rescue promotion cost, what the checkpoints add — so the observability
layer records exactly those moments as typed :class:`TraceEvent` records
with sim-time timestamps and rank attribution.

Design constraints, mirroring the FD's zero-overhead property:

* **The failure-free (and trace-free) path stays free.**  The module-level
  active tracer defaults to :data:`NULL_TRACER`, whose ``emit`` is a
  no-op and whose ``enabled`` flag is ``False``; hot loops guard their
  emission with ``if tracer.enabled:`` so a disabled run performs one
  attribute load per candidate event and allocates nothing.
* **Bounded memory.**  :class:`Tracer` appends into a preallocated ring
  buffer; once full, the oldest events are overwritten and counted in
  :attr:`Tracer.dropped` — a runaway scenario can never exhaust memory.
* **Explicit timestamps.**  Emission sites pass the simulation clock
  (``ctx.now``); events that represent a span pass ``dur`` and are
  stamped at their *end* time, so ``t - dur`` recovers the start.

Event taxonomy (see ``OBSERVABILITY.md`` for the full glossary)::

    ping              one FD probe resolved              (detector)
    failure_injected  a fault-plan event fired           (injector)
    detection         the FD's scan resolved failures    (detector)
    broadcast_flags   failure notice written to ranks    (detector)
    group_rebuild     new group created + committed      (recovery)
    spare_promote     a rescue adopted a failed identity (recovery)
    proc_kill         gaspi_proc_kill of a suspect       (recovery)
    ckpt_write        local checkpoint written           (checkpoint)
    ckpt_mirror       neighbor copy landed               (checkpoint)
    ckpt_scatter      replica copy landed on a holder    (checkpoint)
    restore           checkpoint state restored          (checkpoint/app)
    solver_iter       one solver iteration finished      (solvers)
    rollback          app resumed from restored state    (app)
"""

from __future__ import annotations

from collections import namedtuple
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

# ----------------------------------------------------------------------
# event taxonomy
# ----------------------------------------------------------------------
PING = "ping"
FAILURE_INJECTED = "failure_injected"
DETECTION = "detection"
BROADCAST_FLAGS = "broadcast_flags"
GROUP_REBUILD = "group_rebuild"
SPARE_PROMOTE = "spare_promote"
PROC_KILL = "proc_kill"
CKPT_WRITE = "ckpt_write"
CKPT_MIRROR = "ckpt_mirror"
CKPT_SCATTER = "ckpt_scatter"
RESTORE = "restore"
SOLVER_ITER = "solver_iter"
ROLLBACK = "rollback"
#: emitted by the runtime protocol sanitizer (``repro.gaspi.sanitize``,
#: enabled via ``REPRO_SANITIZE=1``) just before it raises on a protocol
#: violation — double-posted live notification, post after ``QUEUE_FULL``
#: without drain, segment access out of bounds or after free
SANITIZER_VIOLATION = "sanitizer_violation"

EVENT_TYPES = frozenset({
    PING, FAILURE_INJECTED, DETECTION, BROADCAST_FLAGS, GROUP_REBUILD,
    SPARE_PROMOTE, PROC_KILL, CKPT_WRITE, CKPT_MIRROR, CKPT_SCATTER,
    RESTORE, SOLVER_ITER, ROLLBACK, SANITIZER_VIOLATION,
})

#: one trace record: end timestamp (virtual s), emitting physical rank
#: (-1 = not rank-attributable), event type, span duration (0 = instant),
#: and a dict of type-specific fields (``epoch``, ``version``, ...)
TraceEvent = namedtuple("TraceEvent", ("t", "rank", "etype", "dur", "fields"))

#: default ring capacity — enough for every paper-scale scenario's
#: lifecycle events while bounding a runaway ``solver_iter`` stream
DEFAULT_CAPACITY = 1 << 16

#: high-volume event types routed to the (opt-in) bulk ring: at 256+ rank
#: scale the per-probe pings and solver iterations outnumber lifecycle
#: milestones by orders of magnitude and would evict them
BULK_ETYPES = frozenset({PING, SOLVER_ITER})

#: internal ring slot: (global emission sequence, event) — the sequence
#: lets :meth:`Tracer.events` interleave the two rings in emission order
_Slot = Tuple[int, TraceEvent]


class Tracer:
    """Append-only ring buffer of :class:`TraceEvent` records.

    With ``bulk_capacity`` set, high-volume event types
    (:data:`BULK_ETYPES`) are segregated into their own ring of that size,
    so a 4096-rank ping storm can never evict the rare lifecycle
    milestones from the main ring.  Eviction is **never silent**: every
    overwritten event is counted, per event type
    (:attr:`dropped_by_type`), in aggregate (:attr:`dropped`) and for the
    bulk ring alone (:attr:`dropped_bulk`).
    """

    __slots__ = ("_buf", "_capacity", "_n", "_bulk_buf", "_bulk_capacity",
                 "_bulk_n", "_seq", "_dropped_by_type", "_dropped_bulk")

    #: hot-path guard: ``if tracer.enabled: tracer.emit(...)``
    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 bulk_capacity: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if bulk_capacity is not None and bulk_capacity < 1:
            raise ValueError(
                f"bulk_capacity must be positive, got {bulk_capacity}"
            )
        self._buf: List[Optional[_Slot]] = [None] * capacity
        self._capacity = capacity
        self._n = 0  # events ever routed to the main ring
        self._bulk_capacity = bulk_capacity
        self._bulk_buf: List[Optional[_Slot]] = (
            [None] * bulk_capacity if bulk_capacity else []
        )
        self._bulk_n = 0  # events ever routed to the bulk ring
        self._seq = 0  # total events ever emitted (both rings)
        self._dropped_by_type: Dict[str, int] = {}
        self._dropped_bulk = 0

    # ------------------------------------------------------------------
    def emit(self, t: float, rank: int, etype: str, dur: float = 0.0,
             **fields: Any) -> None:
        """Record one event; O(1), overwrites the oldest when full."""
        seq = self._seq
        self._seq = seq + 1
        record = (seq, TraceEvent(t, rank, etype, dur, fields))
        if self._bulk_capacity is not None and etype in BULK_ETYPES:
            slot = self._bulk_n % self._bulk_capacity
            old = self._bulk_buf[slot]
            if old is not None:
                dropped_type = old[1].etype
                self._dropped_by_type[dropped_type] = (
                    self._dropped_by_type.get(dropped_type, 0) + 1
                )
                self._dropped_bulk += 1
            self._bulk_buf[slot] = record
            self._bulk_n += 1
            return
        slot = self._n % self._capacity
        old = self._buf[slot]
        if old is not None:
            dropped_type = old[1].etype
            self._dropped_by_type[dropped_type] = (
                self._dropped_by_type.get(dropped_type, 0) + 1
            )
        self._buf[slot] = record
        self._n += 1

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def bulk_capacity(self) -> Optional[int]:
        """Bulk-ring size (None = single-ring mode)."""
        return self._bulk_capacity

    @property
    def total_emitted(self) -> int:
        """Events ever emitted, including overwritten ones."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events lost to ring wraparound (both rings)."""
        return sum(self._dropped_by_type.values())

    @property
    def dropped_bulk(self) -> int:
        """Events lost from the bulk ring alone."""
        return self._dropped_bulk

    @property
    def dropped_by_type(self) -> Dict[str, int]:
        """Exact per-event-type eviction counts."""
        return dict(self._dropped_by_type)

    def __len__(self) -> int:
        retained = min(self._n, self._capacity)
        if self._bulk_capacity is not None:
            retained += min(self._bulk_n, self._bulk_capacity)
        return retained

    def _ring_slots(self, buf: List[Optional[_Slot]], n: int,
                    cap: int) -> List[_Slot]:
        if n <= cap:
            return [s for s in buf[:n] if s is not None]
        head = n % cap
        return [s for s in buf[head:] + buf[:head] if s is not None]

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first (emission order across rings)."""
        main = self._ring_slots(self._buf, self._n, self._capacity)
        if self._bulk_capacity is None or not self._bulk_n:
            return [event for _seq, event in main]
        bulk = self._ring_slots(self._bulk_buf, self._bulk_n,
                                self._bulk_capacity)
        merged = sorted(main + bulk, key=lambda slot: slot[0])
        return [event for _seq, event in merged]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def clear(self) -> None:
        """Forget everything (capacities are kept)."""
        self._buf = [None] * self._capacity
        self._n = 0
        if self._bulk_capacity is not None:
            self._bulk_buf = [None] * self._bulk_capacity
        self._bulk_n = 0
        self._seq = 0
        self._dropped_by_type = {}
        self._dropped_bulk = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tracer {len(self)}/{self._capacity} events"
                f" (+{self.dropped} dropped)>")


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    A single module-level instance (:data:`NULL_TRACER`) is shared by
    every simulator and context, so the disabled path costs one attribute
    load (``tracer.enabled`` → ``False``) and zero allocations.
    """

    __slots__ = ()

    enabled = False
    capacity = 0
    bulk_capacity: Optional[int] = None
    total_emitted = 0
    dropped = 0
    dropped_bulk = 0
    dropped_by_type: Dict[str, int] = {}

    def emit(self, t: float, rank: int, etype: str, dur: float = 0.0,
             **fields: Any) -> None:
        pass

    def events(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullTracer>"


#: the shared disabled tracer (identity-compared throughout the stack)
NULL_TRACER = NullTracer()

#: anything the stack accepts as "the tracer" — emission sites only touch
#: ``enabled`` and ``emit``, which both classes provide
TracerLike = Union[Tracer, NullTracer]

# ----------------------------------------------------------------------
# the module-level active tracer
# ----------------------------------------------------------------------
_active: TracerLike = NULL_TRACER


def install(tracer: Optional[Tracer] = None,
            capacity: int = DEFAULT_CAPACITY,
            bulk_capacity: Optional[int] = None) -> Tracer:
    """Make ``tracer`` (or a fresh one) the process-wide active tracer.

    Simulations pick the active tracer up at launch (``run_gaspi`` copies
    it onto the simulator), so install *before* starting a run.  Returns
    the installed tracer.  ``bulk_capacity`` sizes the optional separate
    ring for high-volume event types (pings, solver iterations) so they
    cannot evict lifecycle milestones at 256+ rank scale.
    """
    global _active
    if tracer is None:
        tracer = Tracer(capacity=capacity, bulk_capacity=bulk_capacity)
    _active = tracer
    return tracer


def deactivate() -> TracerLike:
    """Restore the disabled default; returns the previously active tracer."""
    global _active
    previous = _active
    _active = NULL_TRACER
    return previous


def active_tracer() -> TracerLike:
    """The currently installed tracer (:data:`NULL_TRACER` when disabled)."""
    return _active
