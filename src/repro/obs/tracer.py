"""Structured failure-lifecycle tracing: typed events in a ring buffer.

The paper's claims are *timings of a failure lifecycle* — how long the
ping-based FD takes to notice a dead rank, how long the group rebuild and
rescue promotion cost, what the checkpoints add — so the observability
layer records exactly those moments as typed :class:`TraceEvent` records
with sim-time timestamps and rank attribution.

Design constraints, mirroring the FD's zero-overhead property:

* **The failure-free (and trace-free) path stays free.**  The module-level
  active tracer defaults to :data:`NULL_TRACER`, whose ``emit`` is a
  no-op and whose ``enabled`` flag is ``False``; hot loops guard their
  emission with ``if tracer.enabled:`` so a disabled run performs one
  attribute load per candidate event and allocates nothing.
* **Bounded memory.**  :class:`Tracer` appends into a preallocated ring
  buffer; once full, the oldest events are overwritten and counted in
  :attr:`Tracer.dropped` — a runaway scenario can never exhaust memory.
* **Explicit timestamps.**  Emission sites pass the simulation clock
  (``ctx.now``); events that represent a span pass ``dur`` and are
  stamped at their *end* time, so ``t - dur`` recovers the start.

Event taxonomy (see ``OBSERVABILITY.md`` for the full glossary)::

    ping              one FD probe resolved              (detector)
    failure_injected  a fault-plan event fired           (injector)
    detection         the FD's scan resolved failures    (detector)
    broadcast_flags   failure notice written to ranks    (detector)
    group_rebuild     new group created + committed      (recovery)
    spare_promote     a rescue adopted a failed identity (recovery)
    proc_kill         gaspi_proc_kill of a suspect       (recovery)
    ckpt_write        local checkpoint written           (checkpoint)
    ckpt_mirror       neighbor copy landed               (checkpoint)
    restore           checkpoint state restored          (checkpoint/app)
    solver_iter       one solver iteration finished      (solvers)
    rollback          app resumed from restored state    (app)
"""

from __future__ import annotations

from collections import namedtuple
from typing import Any, Iterator, List, Optional, Union

# ----------------------------------------------------------------------
# event taxonomy
# ----------------------------------------------------------------------
PING = "ping"
FAILURE_INJECTED = "failure_injected"
DETECTION = "detection"
BROADCAST_FLAGS = "broadcast_flags"
GROUP_REBUILD = "group_rebuild"
SPARE_PROMOTE = "spare_promote"
PROC_KILL = "proc_kill"
CKPT_WRITE = "ckpt_write"
CKPT_MIRROR = "ckpt_mirror"
RESTORE = "restore"
SOLVER_ITER = "solver_iter"
ROLLBACK = "rollback"

EVENT_TYPES = frozenset({
    PING, FAILURE_INJECTED, DETECTION, BROADCAST_FLAGS, GROUP_REBUILD,
    SPARE_PROMOTE, PROC_KILL, CKPT_WRITE, CKPT_MIRROR, RESTORE,
    SOLVER_ITER, ROLLBACK,
})

#: one trace record: end timestamp (virtual s), emitting physical rank
#: (-1 = not rank-attributable), event type, span duration (0 = instant),
#: and a dict of type-specific fields (``epoch``, ``version``, ...)
TraceEvent = namedtuple("TraceEvent", ("t", "rank", "etype", "dur", "fields"))

#: default ring capacity — enough for every paper-scale scenario's
#: lifecycle events while bounding a runaway ``solver_iter`` stream
DEFAULT_CAPACITY = 1 << 16


class Tracer:
    """Append-only ring buffer of :class:`TraceEvent` records."""

    __slots__ = ("_buf", "_capacity", "_n")

    #: hot-path guard: ``if tracer.enabled: tracer.emit(...)``
    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._buf: List[Optional[TraceEvent]] = [None] * capacity
        self._capacity = capacity
        self._n = 0  # total events ever emitted

    # ------------------------------------------------------------------
    def emit(self, t: float, rank: int, etype: str, dur: float = 0.0,
             **fields: Any) -> None:
        """Record one event; O(1), overwrites the oldest when full."""
        n = self._n
        self._buf[n % self._capacity] = TraceEvent(t, rank, etype, dur, fields)
        self._n = n + 1

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def total_emitted(self) -> int:
        """Events ever emitted, including overwritten ones."""
        return self._n

    @property
    def dropped(self) -> int:
        """Events lost to ring wraparound."""
        return max(0, self._n - self._capacity)

    def __len__(self) -> int:
        return min(self._n, self._capacity)

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first (insertion order)."""
        n, cap = self._n, self._capacity
        if n <= cap:
            return [e for e in self._buf[:n]]
        head = n % cap
        return self._buf[head:] + self._buf[:head]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def clear(self) -> None:
        """Forget everything (capacity is kept)."""
        self._buf = [None] * self._capacity
        self._n = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tracer {len(self)}/{self._capacity} events"
                f" (+{self.dropped} dropped)>")


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    A single module-level instance (:data:`NULL_TRACER`) is shared by
    every simulator and context, so the disabled path costs one attribute
    load (``tracer.enabled`` → ``False``) and zero allocations.
    """

    __slots__ = ()

    enabled = False
    capacity = 0
    total_emitted = 0
    dropped = 0

    def emit(self, t: float, rank: int, etype: str, dur: float = 0.0,
             **fields: Any) -> None:
        pass

    def events(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullTracer>"


#: the shared disabled tracer (identity-compared throughout the stack)
NULL_TRACER = NullTracer()

#: anything the stack accepts as "the tracer" — emission sites only touch
#: ``enabled`` and ``emit``, which both classes provide
TracerLike = Union[Tracer, NullTracer]

# ----------------------------------------------------------------------
# the module-level active tracer
# ----------------------------------------------------------------------
_active: TracerLike = NULL_TRACER


def install(tracer: Optional[Tracer] = None,
            capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Make ``tracer`` (or a fresh one) the process-wide active tracer.

    Simulations pick the active tracer up at launch (``run_gaspi`` copies
    it onto the simulator), so install *before* starting a run.  Returns
    the installed tracer.
    """
    global _active
    if tracer is None:
        tracer = Tracer(capacity=capacity)
    _active = tracer
    return tracer


def deactivate() -> TracerLike:
    """Restore the disabled default; returns the previously active tracer."""
    global _active
    previous = _active
    _active = NULL_TRACER
    return previous


def active_tracer() -> TracerLike:
    """The currently installed tracer (:data:`NULL_TRACER` when disabled)."""
    return _active
