"""Failure-timeline reconstruction: events → per-failure lifecycle chains.

This is the paper's Figure 4 decomposition derived from *any* traced run:
each injected failure becomes one :class:`FailureRecord` carrying the
timestamps of its lifecycle milestones

    inject → detection → broadcast → group rebuild → spare promotion
           → restore → rollback

and per-phase latencies between them.  Records are keyed on the recovery
``epoch`` the FD assigns at detection time: every downstream event
(``group_rebuild``, ``spare_promote``, ``restore``, ``rollback``) carries
an ``epoch`` field, so correlation is exact even when failures overlap.
Checkpoint-manager ``restore`` events without an ``epoch`` field (e.g.
reads outside a recovery) are deliberately ignored here — they stay in
the raw trace but belong to no failure chain.

Phase durations are non-negative by construction of the protocol: the
group commit is a collective (all members finish together, after the
detection broadcast), the rescue's promotion is reported at commit
success, and restore/rollback happen after re-initialisation.  The
``repro trace`` CLI asserts this on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .tracer import (BROADCAST_FLAGS, DETECTION, FAILURE_INJECTED,
                     GROUP_REBUILD, RESTORE, ROLLBACK, SPARE_PROMOTE,
                     TraceEvent)

#: phase names in lifecycle order, mapping to FailureRecord properties
PHASES = (
    ("detection_latency_s", "Inject → detected"),
    ("broadcast_s", "Detected → all ranks notified"),
    ("group_rebuild_s", "Notified → new group committed"),
    ("spare_promote_s", "Rebuild span of the promoted rescue"),
    ("restore_s", "Committed → checkpoint restored"),
    ("rollback_s", "Restored → solver resumed"),
)


@dataclass
class FailureRecord:
    """One failure's reconstructed lifecycle."""

    epoch: int
    failed: Tuple[int, ...] = ()
    rescues: Tuple[int, ...] = ()
    scenario: str = ""
    t_injected: Optional[float] = None
    t_detected: Optional[float] = None
    t_broadcast: Optional[float] = None
    t_rebuilt: Optional[float] = None
    promote_dur: Optional[float] = None
    t_restored: Optional[float] = None
    t_rollback: Optional[float] = None
    restore_version: Optional[int] = None

    # -- per-phase latencies (None when an endpoint is missing) --------
    @staticmethod
    def _delta(a: Optional[float], b: Optional[float]) -> Optional[float]:
        return None if a is None or b is None else b - a

    @property
    def detection_latency_s(self) -> Optional[float]:
        return self._delta(self.t_injected, self.t_detected)

    @property
    def broadcast_s(self) -> Optional[float]:
        return self._delta(self.t_detected, self.t_broadcast)

    @property
    def group_rebuild_s(self) -> Optional[float]:
        return self._delta(self.t_broadcast, self.t_rebuilt)

    @property
    def spare_promote_s(self) -> Optional[float]:
        return self.promote_dur

    @property
    def restore_s(self) -> Optional[float]:
        return self._delta(self.t_rebuilt, self.t_restored)

    @property
    def rollback_s(self) -> Optional[float]:
        return self._delta(self.t_restored, self.t_rollback)

    @property
    def total_recovery_s(self) -> Optional[float]:
        """Inject → solver resumed, the paper's per-failure overhead."""
        return self._delta(self.t_injected, self.t_rollback)

    def phases(self) -> Dict[str, Optional[float]]:
        return {name: getattr(self, name) for name, _ in PHASES}

    @property
    def complete(self) -> bool:
        """Full detection→rebuild→promote→restore chain present?"""
        return (self.t_injected is not None
                and self.t_detected is not None
                and self.t_rebuilt is not None
                and (self.promote_dur is not None or not self.rescues)
                and self.t_restored is not None)

    @property
    def nonnegative(self) -> bool:
        return all(v is None or v >= -1e-9 for v in self.phases().values())


def build_timelines(events: Iterable[TraceEvent],
                    scenario: str = "") -> List[FailureRecord]:
    """Reconstruct one :class:`FailureRecord` per detected failure epoch."""
    events = sorted(events, key=lambda e: e.t)
    injected: Dict[int, List[float]] = {}  # rank -> inject times, ascending
    records: Dict[int, FailureRecord] = {}

    for ev in events:
        etype, fields = ev.etype, ev.fields
        if etype == FAILURE_INJECTED:
            injected.setdefault(ev.rank, []).append(ev.t)
            continue
        if etype == DETECTION:
            epoch = fields["epoch"]
            rec = records.setdefault(epoch, FailureRecord(epoch=epoch,
                                                          scenario=scenario))
            rec.failed = tuple(fields.get("failed", ()))
            rec.rescues = tuple(fields.get("rescues", ()))
            rec.t_detected = ev.t
            # the failure this scan caught: for each failed rank, the
            # latest injection at or before detection; the record's
            # t_injected is the earliest of those (first unserved fault)
            times = []
            for rank in rec.failed:
                cands = [t for t in injected.get(rank, ()) if t <= ev.t + 1e-9]
                if cands:
                    times.append(cands[-1])
            rec.t_injected = min(times) if times else None
            continue

        epoch = fields.get("epoch")
        if epoch is None:
            continue  # e.g. manager-level restore outside recovery
        rec = records.setdefault(epoch, FailureRecord(epoch=epoch,
                                                      scenario=scenario))
        if etype == BROADCAST_FLAGS:
            rec.t_broadcast = (ev.t if rec.t_broadcast is None
                               else max(rec.t_broadcast, ev.t))
        elif etype == GROUP_REBUILD:
            # all members commit collectively; keep the last to finish
            rec.t_rebuilt = (ev.t if rec.t_rebuilt is None
                             else max(rec.t_rebuilt, ev.t))
        elif etype == SPARE_PROMOTE:
            rec.promote_dur = max(rec.promote_dur or 0.0, ev.dur)
        elif etype == RESTORE:
            rec.t_restored = (ev.t if rec.t_restored is None
                              else max(rec.t_restored, ev.t))
            if "version" in fields:
                rec.restore_version = fields["version"]
        elif etype == ROLLBACK:
            rec.t_rollback = (ev.t if rec.t_rollback is None
                              else max(rec.t_rollback, ev.t))

    return [records[e] for e in sorted(records)]


def injected_ranks(events: Iterable[TraceEvent]) -> List[int]:
    """Distinct ranks hit by ``failure_injected`` events (rank ≥ 0)."""
    return sorted({ev.rank for ev in events
                   if ev.etype == FAILURE_INJECTED and ev.rank >= 0})


def phase_stats(records: Sequence[FailureRecord]) -> Dict[str, dict]:
    """min/mean/max per phase over a set of failure records."""
    out: Dict[str, dict] = {}
    for name, _ in PHASES + (("total_recovery_s", ""),):
        values = [getattr(r, name) for r in records
                  if getattr(r, name) is not None]
        if values:
            out[name] = {
                "count": len(values),
                "min": min(values),
                "mean": sum(values) / len(values),
                "max": max(values),
            }
    return out


def timeline_report(records: Sequence[FailureRecord],
                    title: str = "Failure timeline") -> str:
    """Human-readable per-failure lifecycle report."""
    lines = [title, "=" * len(title)]
    if not records:
        lines.append("(no failures detected)")
        return "\n".join(lines)
    for rec in records:
        head = (f"epoch {rec.epoch}"
                + (f" [{rec.scenario}]" if rec.scenario else "")
                + f": failed={list(rec.failed)} rescues={list(rec.rescues)}")
        lines.append("")
        lines.append(head)
        lines.append("-" * len(head))
        milestones = [
            ("injected", rec.t_injected), ("detected", rec.t_detected),
            ("broadcast", rec.t_broadcast), ("group rebuilt", rec.t_rebuilt),
            ("restored", rec.t_restored), ("rolled back", rec.t_rollback),
        ]
        for label, t in milestones:
            lines.append(f"  {label:<14} "
                         + (f"t={t:12.4f} s" if t is not None else "—"))
        for name, desc in PHASES:
            v = getattr(rec, name)
            if v is not None:
                lines.append(f"    {name:<22} {v:10.4f} s   ({desc})")
        total = rec.total_recovery_s
        if total is not None:
            lines.append(f"    {'total_recovery_s':<22} {total:10.4f} s")
        if not rec.complete:
            lines.append("    !! incomplete chain")
    return "\n".join(lines)
