"""Counters, gauges and histograms aggregating the trace event stream.

Where :mod:`repro.obs.tracer` records *what happened when*, this module
answers *how much and how long on average*: a :class:`MetricsRegistry`
holds named :class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments,
and :func:`registry_from_events` derives the standard set — per-type event
counts, checkpoint write/mirror duration histograms, and the per-phase
failure-lifecycle latencies (detection / group rebuild / spare promotion /
restore) reconstructed via :mod:`repro.obs.timeline`.

Histograms are streaming (count/total/min/max), not bucketed — the event
stream itself is retained in the trace, so percentile analysis belongs in
post-processing; in-run aggregation only needs O(1) memory.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List

from .tracer import CKPT_MIRROR, CKPT_SCATTER, CKPT_WRITE, TraceEvent


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can move both ways (e.g. outstanding mirror jobs)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution summary: count, total, min, max, mean."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        if not self.count:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create store of named instruments."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls: type) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, dict]:
        """All instruments as plain dicts, name-sorted (JSON-friendly)."""
        return {name: self._instruments[name].snapshot()
                for name in self.names()}


def registry_from_events(events: Iterable[TraceEvent]) -> MetricsRegistry:
    """Aggregate a trace into the standard metric set.

    Produces ``events.<etype>`` counters for every event type seen,
    duration histograms for checkpoint writes and mirrors, and per-phase
    latency histograms (``phase.detection_latency_s`` etc.) from the
    reconstructed failure timelines.
    """
    from .timeline import build_timelines  # local import: timeline uses tracer only

    events = list(events)
    reg = MetricsRegistry()
    for ev in events:
        reg.counter(f"events.{ev.etype}").inc()
        if ev.etype == CKPT_WRITE:
            reg.histogram("ckpt.write_s").observe(ev.dur)
            bytes_ = ev.fields.get("bytes")
            if bytes_:
                reg.counter("ckpt.bytes_written").inc(bytes_)
        elif ev.etype == CKPT_MIRROR:
            reg.histogram("ckpt.mirror_s").observe(ev.dur)
        elif ev.etype == CKPT_SCATTER:
            reg.histogram("ckpt.scatter_s").observe(ev.dur)

    for rec in build_timelines(events):
        for phase, value in rec.phases().items():
            if value is not None:
                reg.histogram(f"phase.{phase}").observe(value)
    return reg


def registry_from_traces(traces: Iterable[Any]) -> MetricsRegistry:
    """Like :func:`registry_from_events`, for multiple tasks' traces.

    Event counts and checkpoint histograms aggregate across all traces,
    but failure timelines are reconstructed *per trace* — recovery epochs
    are only unique within one simulation, so merging event streams first
    would collapse distinct failures that share an epoch number.
    """
    from .timeline import build_timelines

    reg = MetricsRegistry()
    for trace in traces:
        for ev in trace.events:
            reg.counter(f"events.{ev.etype}").inc()
            if ev.etype == CKPT_WRITE:
                reg.histogram("ckpt.write_s").observe(ev.dur)
                bytes_ = ev.fields.get("bytes")
                if bytes_:
                    reg.counter("ckpt.bytes_written").inc(bytes_)
            elif ev.etype == CKPT_MIRROR:
                reg.histogram("ckpt.mirror_s").observe(ev.dur)
            elif ev.etype == CKPT_SCATTER:
                reg.histogram("ckpt.scatter_s").observe(ev.dur)
        for rec in build_timelines(trace.events):
            for phase, value in rec.phases().items():
                if value is not None:
                    reg.histogram(f"phase.{phase}").observe(value)
    return reg
