"""Distributed vectors: local NumPy blocks + team-wide reductions.

Local operations (axpy, scale, copy) are plain vectorised NumPy; global
reductions (dot, norm) go through the team's group allreduce with the
library's standard retry-until-success-or-failure-acknowledged loop.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.gaspi.constants import GASPI_BLOCK, AllreduceOp, ReturnCode
from repro.spmvm.ft_hooks import CommGuard
from repro.spmvm.team import Team


class DistVector:
    """One rank's block of a globally distributed vector."""

    __slots__ = ("team", "local", "guard", "comm_timeout")

    def __init__(self, team: Team, local: np.ndarray,
                 guard: Optional[CommGuard] = None,
                 comm_timeout: float = GASPI_BLOCK) -> None:
        self.team = team
        self.local = np.asarray(local, dtype=np.float64)
        self.guard = guard or CommGuard()
        self.comm_timeout = comm_timeout

    # ------------------------------------------------------------------
    # local (embarrassingly parallel) operations
    # ------------------------------------------------------------------
    def fill(self, value: float) -> "DistVector":
        self.local.fill(value)
        return self

    def copy_from(self, other: "DistVector") -> "DistVector":
        self.local[:] = other.local
        return self

    def scale(self, alpha: float) -> "DistVector":
        self.local *= alpha
        return self

    def axpy(self, alpha: float, x: "DistVector") -> "DistVector":
        """``self += alpha * x``."""
        self.local += alpha * x.local
        return self

    # ------------------------------------------------------------------
    # global reductions (generators)
    # ------------------------------------------------------------------
    def _allreduce_sum(self, partial: float):
        ctx = self.team.ctx
        while True:
            self.guard.assert_healthy()
            ret, total = yield from ctx.allreduce(
                np.array([partial]), AllreduceOp.SUM, self.team.group,
                self.comm_timeout,
            )
            if ret is ReturnCode.SUCCESS:
                return float(total[0])

    def dot(self, other: "DistVector"):
        """Generator: global inner product."""
        partial = float(self.local @ other.local)
        total = yield from self._allreduce_sum(partial)
        return total

    def norm(self):
        """Generator: global 2-norm."""
        partial = float(self.local @ self.local)
        total = yield from self._allreduce_sum(partial)
        return math.sqrt(total)

    def __len__(self) -> int:
        return len(self.local)
