"""Distributed sparse matrix-vector multiplication (spMVM) library.

The reproduction of the paper's application substrate (Sect. V): a
row-block-distributed CSR spMVM whose pre-processing stage determines, per
rank, which right-hand-side entries must be fetched from which owners; the
owners then push those values with one-sided ``write_notify`` before every
multiplication.  The library is fault-tolerance-aware: every blocking
communication call consults a failure-acknowledgment hook and raises
:class:`FailureAcknowledged` so the application can enter its recovery
stage, and the communication setup is serialisable so a rescue process can
restore it from the failed rank's checkpoint instead of redoing the
pre-processing.
"""

from repro.spmvm.csr import CSRMatrix
from repro.spmvm.partition import RowPartition
from repro.spmvm.team import Team
from repro.spmvm.ft_hooks import FailureAcknowledged, CommGuard
from repro.spmvm.comm_setup import CommPlan, build_comm_plan, split_columns
from repro.spmvm.dist_matrix import DistMatrix, distribute_matrix
from repro.spmvm.dist_vector import DistVector
from repro.spmvm.spmv import SpMVMEngine

__all__ = [
    "CSRMatrix",
    "RowPartition",
    "Team",
    "FailureAcknowledged",
    "CommGuard",
    "CommPlan",
    "build_comm_plan",
    "split_columns",
    "DistMatrix",
    "distribute_matrix",
    "DistVector",
    "SpMVMEngine",
]
