"""Generator interface and decomposition-independent hashing utilities."""

from __future__ import annotations

import abc

import numpy as np

from repro.spmvm.csr import CSRMatrix


class RowGenerator(abc.ABC):
    """Produces row blocks of a fixed global matrix on demand.

    Implementations must be *decomposition-independent*: the values of row
    ``r`` may depend only on ``r`` (and the generator's parameters), never
    on which block ``r`` was requested in — otherwise redo-work after a
    recovery would silently change the matrix.
    """

    @property
    @abc.abstractmethod
    def n_rows(self) -> int:
        """Global matrix dimension (matrices here are square)."""

    @abc.abstractmethod
    def generate_rows(self, r0: int, r1: int) -> CSRMatrix:
        """Rows ``[r0, r1)`` as a local CSR block with *global* columns."""

    # ------------------------------------------------------------------
    def full(self) -> CSRMatrix:
        """The whole matrix (test-sized inputs only)."""
        return self.generate_rows(0, self.n_rows)

    def _check_range(self, r0: int, r1: int) -> None:
        if not (0 <= r0 <= r1 <= self.n_rows):
            raise ValueError(f"bad row range [{r0}, {r1}) for {self.n_rows} rows")


def hash_uniform(index: np.ndarray, seed: int, stream: int = 0) -> np.ndarray:
    """Deterministic uniform [0, 1) numbers keyed by integer index.

    A counter-based (splitmix64-style) hash: the draw for an index is a
    pure function of ``(index, seed, stream)``, so any row block reproduces
    the same entries regardless of decomposition — unlike a sequential RNG.
    """
    x = np.asarray(index, dtype=np.uint64).copy()
    # modular 2**64 arithmetic is the point of the mixer — silence overflow
    with np.errstate(over="ignore"):
        x += np.uint64((seed * 0x9E3779B97F4A7C15) % 2**64)
        x += np.uint64(((stream + 1) * 0xD1342543DE82EF95) % 2**64)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return x.astype(np.float64) / float(2**64)
