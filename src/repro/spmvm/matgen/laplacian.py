"""Discrete Laplacian generators (1D tridiagonal, 2D five-point stencil)."""

from __future__ import annotations

import numpy as np

from repro.spmvm.csr import CSRMatrix
from repro.spmvm.matgen.base import RowGenerator


class Laplacian1D(RowGenerator):
    """Tridiagonal ``[-1, 2, -1]`` operator with Dirichlet boundaries."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one grid point")
        self.n = n

    @property
    def n_rows(self) -> int:
        return self.n

    def generate_rows(self, r0: int, r1: int) -> CSRMatrix:
        self._check_range(r0, r1)
        rows, cols, vals = [], [], []
        for local, r in enumerate(range(r0, r1)):
            for c, v in ((r - 1, -1.0), (r, 2.0), (r + 1, -1.0)):
                if 0 <= c < self.n:
                    rows.append(local)
                    cols.append(c)
                    vals.append(v)
        return CSRMatrix.from_coo(rows, cols, vals, (r1 - r0, self.n),
                                  sum_duplicates=False)


class Laplacian2D(RowGenerator):
    """Five-point stencil on an ``nx × ny`` grid, Dirichlet boundaries.

    Row index is ``x * ny + y``; eigenvalues are the classic
    ``4 - 2cos(kx·h) - 2cos(ky·h)`` family, handy for solver validation.
    """

    def __init__(self, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise ValueError("grid must be at least 1x1")
        self.nx_grid = nx
        self.ny_grid = ny

    @property
    def n_rows(self) -> int:
        return self.nx_grid * self.ny_grid

    def generate_rows(self, r0: int, r1: int) -> CSRMatrix:
        self._check_range(r0, r1)
        ny = self.ny_grid
        rows, cols, vals = [], [], []
        for local, r in enumerate(range(r0, r1)):
            x, y = divmod(r, ny)
            rows.append(local)
            cols.append(r)
            vals.append(4.0)
            for cx, cy in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
                if 0 <= cx < self.nx_grid and 0 <= cy < ny:
                    rows.append(local)
                    cols.append(cx * ny + cy)
                    vals.append(-1.0)
        return CSRMatrix.from_coo(rows, cols, vals, (r1 - r0, self.n_rows),
                                  sum_duplicates=False)

    def exact_eigenvalues(self) -> np.ndarray:
        """All eigenvalues in ascending order (for validation)."""
        kx = np.arange(1, self.nx_grid + 1) * np.pi / (self.nx_grid + 1)
        ky = np.arange(1, self.ny_grid + 1) * np.pi / (self.ny_grid + 1)
        lam = (4.0 - 2.0 * np.cos(kx)[:, None] - 2.0 * np.cos(ky)[None, :]).ravel()
        return np.sort(lam)
