"""Reproducible random sparse matrices (hash-based, block-independent)."""

from __future__ import annotations

import numpy as np

from repro.spmvm.csr import CSRMatrix
from repro.spmvm.matgen.base import RowGenerator, hash_uniform


class RandomSparse(RowGenerator):
    """Fixed-degree random sparse matrix with hash-derived pattern.

    Row ``r`` has ``nnz_per_row`` entries at pseudo-random columns (plus a
    dominant diagonal if requested, which keeps the symmetrised matrix
    positive definite for CG tests).  Entry positions/values depend only on
    ``(r, k, seed)``.
    """

    def __init__(self, n: int, nnz_per_row: int = 8, seed: int = 0,
                 diagonal: float = 0.0) -> None:
        if n < 1:
            raise ValueError("matrix must have at least one row")
        if not (0 < nnz_per_row <= n):
            raise ValueError("nnz_per_row must be in [1, n]")
        self.n = n
        self.nnz_per_row = nnz_per_row
        self.seed = seed
        self.diagonal = float(diagonal)

    @property
    def n_rows(self) -> int:
        return self.n

    def generate_rows(self, r0: int, r1: int) -> CSRMatrix:
        self._check_range(r0, r1)
        n_block = r1 - r0
        k = self.nnz_per_row
        row_ids = np.repeat(np.arange(r0, r1, dtype=np.int64), k)
        slot_ids = np.tile(np.arange(k, dtype=np.int64), n_block)
        flat = row_ids * k + slot_ids
        cols = (hash_uniform(flat, self.seed, stream=1) * self.n).astype(np.int64)
        vals = hash_uniform(flat, self.seed, stream=2) * 2.0 - 1.0
        rows = np.repeat(np.arange(n_block, dtype=np.int64), k)
        if self.diagonal:
            rows = np.concatenate([rows, np.arange(n_block, dtype=np.int64)])
            cols = np.concatenate([cols, np.arange(r0, r1, dtype=np.int64)])
            vals = np.concatenate([vals, np.full(n_block, self.diagonal)])
        return CSRMatrix.from_coo(rows, cols, vals, (n_block, self.n),
                                  sum_duplicates=True)

    def symmetrized_full(self) -> CSRMatrix:
        """``(A + A^T) / 2`` of the whole matrix (test-sized inputs only)."""
        dense = self.full().to_dense()
        return CSRMatrix.from_dense((dense + dense.T) / 2.0)
