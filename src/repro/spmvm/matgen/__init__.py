"""On-the-fly matrix generators.

The paper avoids reading its 1.2e8-row matrix from the file system: "a
matrix generation library tool is used to construct the matrix on the fly
... each process allocates its own chunk."  Generators here do the same:
``generate_rows(r0, r1)`` materialises only the requested row block (with
global column indices), deterministically and independently of the block
decomposition.
"""

from repro.spmvm.matgen.base import RowGenerator, hash_uniform
from repro.spmvm.matgen.graphene import GrapheneSheet
from repro.spmvm.matgen.laplacian import Laplacian1D, Laplacian2D
from repro.spmvm.matgen.random import RandomSparse

__all__ = [
    "RowGenerator",
    "hash_uniform",
    "GrapheneSheet",
    "Laplacian1D",
    "Laplacian2D",
    "RandomSparse",
]
