"""Distributed matrix: per-rank block + exchanged communication plan.

``distribute_matrix`` is the paper's distributed pre-processing stage: each
rank generates its own chunk on the fly, determines the RHS indices it
needs from other owners, and the index lists are "communicated to the
respective processes" — here with GASPI passive messages, with an
allreduce first so every owner knows how many requests to expect.

The result is checkpointable (``to_payload``/``from_payload``): a rescue
process restores block + plan from the failed rank's one-time checkpoint
instead of re-running this stage (Sect. V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.gaspi.constants import GASPI_BLOCK, AllreduceOp, ReturnCode
from repro.spmvm.comm_setup import CommPlan, SendSpec, split_columns
from repro.spmvm.csr import CSRMatrix
from repro.spmvm.ft_hooks import CommGuard
from repro.spmvm.matgen.base import RowGenerator
from repro.spmvm.partition import RowPartition
from repro.spmvm.team import Team


@dataclass
class DistMatrix:
    """One logical rank's share of the distributed operator."""

    n_global: int
    n_workers: int
    logical_rank: int
    local: CSRMatrix          # columns remapped: [0,n_local)+halo
    plan: CommPlan
    _partition: Optional[RowPartition] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_local(self) -> int:
        return self.plan.n_local

    @property
    def halo_size(self) -> int:
        return self.plan.halo_size

    def partition(self) -> RowPartition:
        """The (immutable) global row partition; built once and cached."""
        part = self._partition
        if part is None:
            part = self._partition = RowPartition(self.n_global, self.n_workers)
        return part

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, np.ndarray]:
        """Flatten into a checkpointable array mapping."""
        payload = {
            "dm.n_global": np.int64(self.n_global),
            "dm.n_workers": np.int64(self.n_workers),
            "dm.logical_rank": np.int64(self.logical_rank),
            "dm.row_ptr": self.local.row_ptr,
            "dm.col_idx": self.local.col_idx,
            "dm.values": self.local.values,
            "dm.n_cols": np.int64(self.local.n_cols),
        }
        payload.update(self.plan.to_payload("dm.plan"))
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, np.ndarray]) -> "DistMatrix":
        plan = CommPlan.from_payload(payload, "dm.plan")
        local = CSRMatrix(
            n_rows=len(payload["dm.row_ptr"]) - 1,
            n_cols=int(payload["dm.n_cols"]),
            row_ptr=payload["dm.row_ptr"],
            col_idx=payload["dm.col_idx"],
            values=payload["dm.values"],
        )
        return cls(
            n_global=int(payload["dm.n_global"]),
            n_workers=int(payload["dm.n_workers"]),
            logical_rank=int(payload["dm.logical_rank"]),
            local=local,
            plan=plan,
        )


def distribute_matrix(team: Team, generator: RowGenerator,
                      guard: Optional[CommGuard] = None,
                      comm_timeout: float = GASPI_BLOCK):
    """Generator: the distributed pre-processing stage for one rank.

    Must be called collectively by every team member.  Returns this rank's
    :class:`DistMatrix`.
    """
    guard = guard or CommGuard()
    ctx = team.ctx
    n_workers = team.n_workers
    partition = RowPartition(generator.n_rows, n_workers)
    r0, r1 = partition.range_of(team.logical_rank)
    block = generator.generate_rows(r0, r1)
    local, plan = split_columns(block, partition, team.logical_rank)

    # 1. every owner learns how many requesters it has
    requests = np.zeros(n_workers, dtype=np.int64)
    for provider in plan.providers():
        requests[provider] = 1
    while True:
        guard.assert_healthy()
        ret, counts = yield from ctx.allreduce(
            requests, AllreduceOp.SUM, team.group, comm_timeout
        )
        if ret is ReturnCode.SUCCESS:
            break
    n_requesters = int(counts[team.logical_rank])

    # 2. tell each provider which of its columns we need, and where
    for provider in plan.providers():
        spec = plan.recv[provider]
        while True:
            guard.assert_healthy()
            ret = yield from ctx.passive_send(
                team.to_physical(provider),
                ("halo-request", team.logical_rank, spec.cols,
                 plan.n_local + spec.halo_start),  # absolute x-segment slot
                nbytes=8 * (spec.count + 4),
                timeout=comm_timeout,
            )
            if ret is ReturnCode.SUCCESS:
                break

    # 3. collect our requesters and build the send plan
    got = 0
    while got < n_requesters:
        guard.assert_healthy()
        ret, _, payload = yield from ctx.passive_receive(comm_timeout)
        if ret is not ReturnCode.SUCCESS:
            continue
        kind, requester, cols, dest_slot = payload
        assert kind == "halo-request"
        plan.send[int(requester)] = SendSpec(
            local_idx=partition.to_local(team.logical_rank, cols),
            halo_start=int(dest_slot),
        )
        got += 1

    return DistMatrix(
        n_global=generator.n_rows,
        n_workers=n_workers,
        logical_rank=team.logical_rank,
        local=local,
        plan=plan,
    )
