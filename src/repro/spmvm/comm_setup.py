"""spMVM pre-processing: halo discovery and communication plans.

This is the paper's "pre-processing stage" (Sect. V): from its row block,
each rank determines which right-hand-side indices it needs from which
owners (the *receive plan*); the owners learn which of their local values
to push to whom (the *send plan*).  The plans — not the matrix — are what
the rescue process restores from the failed rank's one-time checkpoint so
the expensive pre-processing is never repeated after a failure.

The column space of the local matrix is remapped so that columns
``[0, n_local)`` address the rank's own x-block and ``[n_local,
n_local + halo)`` address received halo values in plan order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.spmvm.csr import CSRMatrix
from repro.spmvm.partition import RowPartition


@dataclass(frozen=True)
class RecvSpec:
    """What I receive from one provider."""

    cols: np.ndarray        # global column ids, sorted
    halo_start: int         # first halo slot these values land in

    @property
    def count(self) -> int:
        return len(self.cols)


@dataclass(frozen=True)
class SendSpec:
    """What I push to one requester."""

    local_idx: np.ndarray   # my local x indices to gather
    #: absolute destination slot in the requester's x segment (the
    #: requester's n_local + its halo offset) — senders need no knowledge
    #: of the requester's layout beyond this number
    halo_start: int

    @property
    def count(self) -> int:
        return len(self.local_idx)


@dataclass
class CommPlan:
    """Complete halo-exchange plan of one logical rank."""

    n_local: int
    halo_cols: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    recv: Dict[int, RecvSpec] = field(default_factory=dict)
    send: Dict[int, SendSpec] = field(default_factory=dict)

    @property
    def halo_size(self) -> int:
        return len(self.halo_cols)

    @property
    def total_send(self) -> int:
        return sum(spec.count for spec in self.send.values())

    def providers(self) -> List[int]:
        return sorted(self.recv)

    def requesters(self) -> List[int]:
        return sorted(self.send)

    # ------------------------------------------------------------------
    # checkpoint (de)serialisation — flat array mapping
    # ------------------------------------------------------------------
    def to_payload(self, prefix: str = "plan") -> Dict[str, np.ndarray]:
        payload: Dict[str, np.ndarray] = {
            f"{prefix}.n_local": np.int64(self.n_local),
            f"{prefix}.halo_cols": self.halo_cols,
            f"{prefix}.recv_ranks": np.array(self.providers(), dtype=np.int64),
            f"{prefix}.send_ranks": np.array(self.requesters(), dtype=np.int64),
        }
        for provider, spec in self.recv.items():
            payload[f"{prefix}.recv.{provider}.cols"] = spec.cols
            payload[f"{prefix}.recv.{provider}.start"] = np.int64(spec.halo_start)
        for requester, spec in self.send.items():
            payload[f"{prefix}.send.{requester}.idx"] = spec.local_idx
            payload[f"{prefix}.send.{requester}.start"] = np.int64(spec.halo_start)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, np.ndarray], prefix: str = "plan") -> "CommPlan":
        plan = cls(
            n_local=int(payload[f"{prefix}.n_local"]),
            halo_cols=np.asarray(payload[f"{prefix}.halo_cols"], dtype=np.int64),
        )
        for provider in np.asarray(payload[f"{prefix}.recv_ranks"], dtype=np.int64):
            provider = int(provider)
            plan.recv[provider] = RecvSpec(
                cols=np.asarray(payload[f"{prefix}.recv.{provider}.cols"], dtype=np.int64),
                halo_start=int(payload[f"{prefix}.recv.{provider}.start"]),
            )
        for requester in np.asarray(payload[f"{prefix}.send_ranks"], dtype=np.int64):
            requester = int(requester)
            plan.send[requester] = SendSpec(
                local_idx=np.asarray(payload[f"{prefix}.send.{requester}.idx"], dtype=np.int64),
                halo_start=int(payload[f"{prefix}.send.{requester}.start"]),
            )
        return plan


def split_columns(
    local: CSRMatrix, partition: RowPartition, my_part: int
) -> Tuple[CSRMatrix, CommPlan]:
    """Remap a row block's global columns to local + halo numbering.

    Returns the remapped matrix and a plan with the receive side filled in
    (send side requires the exchange — see ``distribute_matrix`` — or the
    global :func:`build_comm_plan`).
    """
    r0, r1 = partition.range_of(my_part)
    n_local = r1 - r0
    cols = local.col_idx
    owners = partition.owner(cols) if cols.size else np.zeros(0, dtype=np.int64)
    remote_mask = owners != my_part
    remote_cols = np.unique(cols[remote_mask])
    remote_owners = partition.owner(remote_cols) if remote_cols.size else remote_cols

    # halo order: by provider rank, columns ascending within provider
    order = np.lexsort((remote_cols, remote_owners))
    halo_cols = remote_cols[order]
    halo_owners = remote_owners[order]

    plan = CommPlan(n_local=n_local, halo_cols=halo_cols)
    start = 0
    for provider in np.unique(halo_owners):
        chunk = halo_cols[halo_owners == provider]
        plan.recv[int(provider)] = RecvSpec(cols=chunk, halo_start=start)
        start += len(chunk)

    # remap columns: own block -> [0, n_local); halo -> n_local + slot
    new_cols = np.empty_like(cols)
    own_mask = ~remote_mask
    new_cols[own_mask] = cols[own_mask] - r0
    if halo_cols.size:
        slots = np.searchsorted(halo_cols, cols[remote_mask])
        new_cols[remote_mask] = n_local + slots
    remapped = local.with_columns(new_cols, n_local + len(halo_cols))
    return remapped, plan


def fill_send_plans(plans: Dict[int, CommPlan], partition: RowPartition) -> None:
    """Complete every plan's send side from all ranks' receive sides.

    This is the *global* (single-process) counterpart of the message
    exchange in ``distribute_matrix``; used for tests and sequential runs.
    """
    for requester, plan in plans.items():
        for provider, spec in plan.recv.items():
            plans[provider].send[requester] = SendSpec(
                local_idx=partition.to_local(provider, spec.cols),
                halo_start=plan.n_local + spec.halo_start,
            )


def build_comm_plan(
    blocks: Dict[int, CSRMatrix], partition: RowPartition
) -> Tuple[Dict[int, CSRMatrix], Dict[int, CommPlan]]:
    """Sequentially pre-process every rank's block (reference path)."""
    remapped: Dict[int, CSRMatrix] = {}
    plans: Dict[int, CommPlan] = {}
    for part, block in blocks.items():
        remapped[part], plans[part] = split_columns(block, partition, part)
    fill_send_plans(plans, partition)
    return remapped, plans
