"""Compressed sparse row matrices (self-contained, NumPy-vectorised).

The core library deliberately does not depend on ``scipy.sparse`` — the
paper's stack builds its own spMVM; SciPy is only used in tests as a
reference implementation.  ``spmv`` is fully vectorised (gather +
``bincount`` segmented sum), the idiom recommended by the scientific-Python
performance guides over any per-row loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class CSRMatrix:
    """A CSR matrix with int64 indices and float64 values."""

    __slots__ = ("n_rows", "n_cols", "row_ptr", "col_idx", "values")

    def __init__(self, n_rows: int, n_cols: int, row_ptr: np.ndarray,
                 col_idx: np.ndarray, values: np.ndarray) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.row_ptr = np.ascontiguousarray(row_ptr, dtype=np.int64)
        self.col_idx = np.ascontiguousarray(col_idx, dtype=np.int64)
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self.validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, rows, cols, vals, shape: Tuple[int, int],
                 sum_duplicates: bool = True) -> "CSRMatrix":
        """Build from coordinate triplets (duplicates summed by default)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (len(rows) == len(cols) == len(vals)):
            raise ValueError("COO triplet arrays must have equal length")
        n_rows, n_cols = shape
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ValueError("column index out of range")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and rows.size:
            key_change = np.empty(rows.size, dtype=bool)
            key_change[0] = True
            key_change[1:] = (np.diff(rows) != 0) | (np.diff(cols) != 0)
            group = np.cumsum(key_change) - 1
            vals = np.bincount(group, weights=vals)
            rows = rows[key_change]
            cols = cols[key_change]
        row_ptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(row_ptr, rows + 1, 1)
        np.cumsum(row_ptr, out=row_ptr)
        return cls(n_rows, n_cols, row_ptr, cols, vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        rows, cols = np.nonzero(np.abs(dense) > tol)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape,
                            sum_duplicates=False)

    @classmethod
    def empty(cls, n_rows: int, n_cols: int) -> "CSRMatrix":
        return cls(n_rows, n_cols, np.zeros(n_rows + 1, dtype=np.int64),
                   np.zeros(0, dtype=np.int64), np.zeros(0))

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.row_ptr.shape != (self.n_rows + 1,):
            raise ValueError("row_ptr must have n_rows+1 entries")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.col_idx):
            raise ValueError("row_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if len(self.col_idx) != len(self.values):
            raise ValueError("col_idx and values must have equal length")
        if self.col_idx.size and (
            self.col_idx.min() < 0 or self.col_idx.max() >= self.n_cols
        ):
            raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.row_ptr)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """``y = A @ x`` (vectorised; handles empty rows correctly)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x must have shape ({self.n_cols},), got {x.shape}")
        if self.nnz == 0:
            y = np.zeros(self.n_rows)
        else:
            products = self.values * x[self.col_idx]
            row_of = np.repeat(
                np.arange(self.n_rows, dtype=np.int64), self.row_nnz()
            )
            y = np.bincount(row_of, weights=products, minlength=self.n_rows)
        if out is not None:
            out[:] = y
            return out
        return y

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        row_of = np.repeat(np.arange(self.n_rows), self.row_nnz())
        dense[row_of, self.col_idx] = self.values  # no duplicates post-CSR
        return dense

    def row_block(self, r0: int, r1: int) -> "CSRMatrix":
        """Extract rows ``[r0, r1)`` (column space unchanged)."""
        if not (0 <= r0 <= r1 <= self.n_rows):
            raise ValueError(f"bad row block [{r0}, {r1})")
        lo, hi = self.row_ptr[r0], self.row_ptr[r1]
        return CSRMatrix(
            r1 - r0,
            self.n_cols,
            self.row_ptr[r0 : r1 + 1] - lo,
            self.col_idx[lo:hi],
            self.values[lo:hi],
        )

    def with_columns(self, new_col_idx: np.ndarray, n_cols: int) -> "CSRMatrix":
        """Same pattern/values with relabelled columns (halo remapping)."""
        return CSRMatrix(self.n_rows, n_cols, self.row_ptr, new_col_idx, self.values)

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        """Structural+numeric symmetry check (dense fallback; test-sized)."""
        dense = self.to_dense()
        return bool(np.allclose(dense, dense.T, atol=tol))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CSRMatrix {self.n_rows}x{self.n_cols} nnz={self.nnz}>"
