"""Compressed sparse row matrices (self-contained, NumPy-vectorised).

The core library deliberately does not depend on ``scipy.sparse`` — the
paper's stack builds its own spMVM; SciPy is only used in tests as a
reference implementation.  ``spmv`` is fully vectorised (gather +
``np.add.reduceat`` segmented sum), the idiom recommended by the
scientific-Python performance guides over any per-row loop.

``spmv`` is called once per solver iteration, so it allocates nothing per
call: a gather plan and its scratch buffers are built lazily on first use
and cached on the matrix (matrices are immutable after construction —
``with_columns`` and ``row_block`` build new objects).  Two plan kinds:

* **ELL (padded) plan** — when rows are near-uniform (padding to the
  widest row costs < 25 % extra entries, the case for all the stencil /
  lattice operators in this repo), rows are padded to equal width and the
  product is computed as one gather + multiply + add *per column slice*:
  a handful of streaming passes over contiguous arrays, no segmented
  reduction at all.  ~2.4x faster than the bincount formulation.
* **CSR ``reduceat`` plan** — general fallback: cached segment starts for
  ``np.add.reduceat`` over a reusable ``products`` buffer.

Both paths are bit-for-bit reproducible call-to-call, which is what the
stack's deterministic redo-work after a recovery relies on (rounding may
differ from the old ``bincount`` formulation by ~1 ulp).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: ELL padding acceptance: padded entry count must stay within this
#: factor of nnz, and the padded width within this many columns
_ELL_PAD_LIMIT = 1.25
_ELL_MAX_WIDTH = 32


class CSRMatrix:
    """A CSR matrix with int64 indices and float64 values."""

    __slots__ = ("n_rows", "n_cols", "row_ptr", "col_idx", "values",
                 "_plan", "plan_builds")

    def __init__(self, n_rows: int, n_cols: int, row_ptr: np.ndarray,
                 col_idx: np.ndarray, values: np.ndarray) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.row_ptr = np.ascontiguousarray(row_ptr, dtype=np.int64)
        self.col_idx = np.ascontiguousarray(col_idx, dtype=np.int64)
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self._plan = None
        self.plan_builds = 0  # observable by tests: must stay at 1
        self.validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, rows, cols, vals, shape: Tuple[int, int],
                 sum_duplicates: bool = True) -> "CSRMatrix":
        """Build from coordinate triplets (duplicates summed by default)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (len(rows) == len(cols) == len(vals)):
            raise ValueError("COO triplet arrays must have equal length")
        n_rows, n_cols = shape
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ValueError("column index out of range")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and rows.size:
            key_change = np.empty(rows.size, dtype=bool)
            key_change[0] = True
            key_change[1:] = (np.diff(rows) != 0) | (np.diff(cols) != 0)
            group = np.cumsum(key_change) - 1
            vals = np.bincount(group, weights=vals)
            rows = rows[key_change]
            cols = cols[key_change]
        row_ptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(row_ptr, rows + 1, 1)
        np.cumsum(row_ptr, out=row_ptr)
        return cls(n_rows, n_cols, row_ptr, cols, vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        rows, cols = np.nonzero(np.abs(dense) > tol)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape,
                            sum_duplicates=False)

    @classmethod
    def empty(cls, n_rows: int, n_cols: int) -> "CSRMatrix":
        return cls(n_rows, n_cols, np.zeros(n_rows + 1, dtype=np.int64),
                   np.zeros(0, dtype=np.int64), np.zeros(0))

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.row_ptr.shape != (self.n_rows + 1,):
            raise ValueError("row_ptr must have n_rows+1 entries")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.col_idx):
            raise ValueError("row_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if len(self.col_idx) != len(self.values):
            raise ValueError("col_idx and values must have equal length")
        if self.col_idx.size and (
            self.col_idx.min() < 0 or self.col_idx.max() >= self.n_cols
        ):
            raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.row_ptr)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _gather_plan(self):
        """Build (once) and return the cached spmv execution plan.

        Returns either ``("ell", cols, vals, tmp)`` — per-column-slice
        contiguous gather arrays padded to the widest row — or
        ``("csr", reduce_idx, nonempty, products, nz_out)`` with the
        segment starts for ``np.add.reduceat``.
        """
        plan = self._plan
        if plan is None:
            row_nnz = np.diff(self.row_ptr)
            width = int(row_nnz.max()) if row_nnz.size else 0
            if (0 < width <= _ELL_MAX_WIDTH
                    and self.n_rows * width <= _ELL_PAD_LIMIT * self.nnz):
                plan = self._build_ell_plan(width, row_nnz)
            else:
                plan = self._build_csr_plan()
            self._plan = plan
            self.plan_builds += 1
        return plan

    def _build_ell_plan(self, width: int, row_nnz: np.ndarray):
        """Pad rows to ``width`` and slice column-wise (contiguous).

        Padded slots gather ``x[0]`` against a 0.0 value, contributing
        exactly 0.0; entries keep their CSR (left-to-right) position, so
        each row still sums in CSR order.
        """
        mask = np.arange(width)[None, :] < row_nnz[:, None]
        cols_p = np.zeros((self.n_rows, width), dtype=np.int64)
        vals_p = np.zeros((self.n_rows, width))
        cols_p[mask] = self.col_idx
        vals_p[mask] = self.values
        cols = [np.ascontiguousarray(cols_p[:, j]) for j in range(width)]
        vals = [np.ascontiguousarray(vals_p[:, j]) for j in range(width)]
        return ("ell", cols, vals, np.empty(self.n_rows))

    def _build_csr_plan(self):
        """Segment starts for ``np.add.reduceat`` over the products buffer.

        Empty rows cannot be passed to ``reduceat`` directly (a start equal
        to the next start makes it *read* one element instead of summing an
        empty segment), so the plan keeps only the non-empty rows' starts —
        strictly increasing and all < nnz — and scatters the segment sums
        back through ``nonempty``.  When every row is non-empty ``nonempty``
        is None and ``reduceat`` writes straight into the caller's output.
        """
        row_ptr = self.row_ptr
        starts = row_ptr[:-1]
        nonempty = np.nonzero(starts != row_ptr[1:])[0]
        if nonempty.size == self.n_rows:
            return ("csr", starts, None, np.empty(self.nnz), None)
        return ("csr", row_ptr[nonempty], nonempty, np.empty(self.nnz),
                np.empty(nonempty.size))

    def spmv(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """``y = A @ x`` (vectorised, allocation-free with ``out=``)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x must have shape ({self.n_cols},), got {x.shape}")
        if out is None:
            out = np.empty(self.n_rows)
        elif out.shape != (self.n_rows,):
            raise ValueError(
                f"out must have shape ({self.n_rows},), got {out.shape}"
            )
        if self.nnz == 0:
            out[:] = 0.0
            return out
        plan = self._gather_plan()
        if plan[0] == "ell":
            _, cols, vals, tmp = plan
            np.take(x, cols[0], out=tmp)
            np.multiply(tmp, vals[0], out=out)
            for j in range(1, len(cols)):
                np.take(x, cols[j], out=tmp)
                np.multiply(tmp, vals[j], out=tmp)
                np.add(out, tmp, out=out)
        else:
            _, reduce_idx, nonempty, products, nz_out = plan
            np.take(x, self.col_idx, out=products)
            np.multiply(products, self.values, out=products)
            if nonempty is None:
                np.add.reduceat(products, reduce_idx, out=out)
            else:
                np.add.reduceat(products, reduce_idx, out=nz_out)
                out[:] = 0.0
                out[nonempty] = nz_out
        return out

    def _row_of(self) -> np.ndarray:
        """Row index of every stored entry (O(nnz); cold paths only)."""
        return np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_nnz())

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        dense[self._row_of(), self.col_idx] = self.values  # no dups post-CSR
        return dense

    def row_block(self, r0: int, r1: int) -> "CSRMatrix":
        """Extract rows ``[r0, r1)`` (column space unchanged)."""
        if not (0 <= r0 <= r1 <= self.n_rows):
            raise ValueError(f"bad row block [{r0}, {r1})")
        lo, hi = self.row_ptr[r0], self.row_ptr[r1]
        return CSRMatrix(
            r1 - r0,
            self.n_cols,
            self.row_ptr[r0 : r1 + 1] - lo,
            self.col_idx[lo:hi],
            self.values[lo:hi],
        )

    def with_columns(self, new_col_idx: np.ndarray, n_cols: int) -> "CSRMatrix":
        """Same pattern/values with relabelled columns (halo remapping)."""
        return CSRMatrix(self.n_rows, n_cols, self.row_ptr, new_col_idx, self.values)

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        """Numeric symmetry check in O(nnz log nnz) time and O(nnz) memory.

        Forms ``A - A^T`` as merged COO triplets (``from_coo`` sorts and
        sums duplicates, so matching ``(i, j)``/``(j, i)`` pairs cancel and
        unmatched entries survive with their value) and tests that nothing
        larger than ``tol`` remains.  Unlike the previous dense comparison
        this works on paper-scale matrices without densifying.
        """
        if self.n_rows != self.n_cols:
            return False
        if self.nnz == 0:
            return True
        row_of = self._row_of()
        diff = CSRMatrix.from_coo(
            np.concatenate([row_of, self.col_idx]),
            np.concatenate([self.col_idx, row_of]),
            np.concatenate([self.values, -self.values]),
            self.shape,
        )
        return diff.nnz == 0 or bool(np.abs(diff.values).max() <= tol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CSRMatrix {self.n_rows}x{self.n_cols} nnz={self.nnz}>"
