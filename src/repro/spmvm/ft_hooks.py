"""Fault-tolerance hooks for the spMVM library.

Per the paper: "Each blocking communication call in the spMVM library now
performs a check for the failure acknowledgment signal.  After the
processes detect a failure signal from the FD process, no further
communications are performed."  :class:`CommGuard` is that check — a cheap
*local* read the FD layer supplies — and :class:`FailureAcknowledged` is
how the library unwinds the solver into its recovery stage.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class FailureAcknowledged(Exception):
    """The FD process signalled failures; abandon communication and recover.

    ``notice`` carries whatever the failure-detection layer wrote (the
    failed/rescue lists); the library treats it as opaque.
    """

    def __init__(self, notice: Any = None) -> None:
        super().__init__("failure acknowledgment received")
        self.notice = notice


class CommGuard:
    """Wraps the failure-acknowledgment check used before blocking calls."""

    __slots__ = ("_check",)

    def __init__(self, check: Optional[Callable[[], Any]] = None) -> None:
        self._check = check

    def assert_healthy(self) -> None:
        """Raise :class:`FailureAcknowledged` if a failure notice is posted.

        With no hook installed (failure-free configuration) this is a single
        attribute test — the zero-overhead property of the design.
        """
        if self._check is None:
            return
        notice = self._check()
        if notice is not None:
            raise FailureAcknowledged(notice)
