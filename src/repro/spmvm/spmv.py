"""The distributed spMVM engine: one-sided halo exchange + local kernel.

Per iteration (paper Sect. V): every owner *pushes* the RHS values its
requesters need with a single fused ``gaspi_write_list_notify`` per
requester (notification id = provider's logical rank) — all pushes of one
iteration coalesce onto one queue doorbell at the transport — flushes its
queue with a single aggregate wait, then drains its providers'
notifications in batches and runs the local CSR kernel on
``[own block | halo]``.

Every blocking step is guarded: the failure-acknowledgment hook is checked
before each attempt and timed-out attempts are retried — the exact
restructuring the paper applies to the underlying spMVM library.

Recovery hygiene: a (re)built engine purges its queue and clears stale
notifications; redo-work is deterministic, so re-delivered halo data is
bit-identical and harmless.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.sim import Sleep, WaitEvent
from repro.gaspi.constants import GASPI_BLOCK, ReturnCode
from repro.gaspi.errors import GaspiUsageError
from repro.spmvm.dist_matrix import DistMatrix
from repro.spmvm.ft_hooks import CommGuard
from repro.spmvm.team import Team

#: default segment ids used by the engine (application segments live below)
X_SEGMENT = 40
STAGE_SEGMENT = 41
_F8 = 8  # bytes per float64


class SpMVMEngine:
    """Executes ``y = A @ x`` for one rank of a team."""

    def __init__(
        self,
        team: Team,
        matrix: DistMatrix,
        guard: Optional[CommGuard] = None,
        comm_timeout: float = GASPI_BLOCK,
        queue_id: int = 0,
        x_segment: int = X_SEGMENT,
        stage_segment: int = STAGE_SEGMENT,
        time_model=None,
    ) -> None:
        self.team = team
        self.matrix = matrix
        self.guard = guard or CommGuard()
        self.comm_timeout = comm_timeout
        self.queue_id = queue_id
        self.x_segment = x_segment
        self.stage_segment = stage_segment
        self.time_model = time_model
        self._tag = 0

        ctx = team.ctx
        x_bytes = max(_F8, (matrix.n_local + matrix.halo_size) * _F8)
        stage_bytes = max(_F8, matrix.plan.total_send * _F8)
        self._ensure_segment(ctx, x_segment, x_bytes)
        self._ensure_segment(ctx, stage_segment, stage_bytes)

        # recovery hygiene (no-ops on a fresh world)
        ctx.queue_purge(queue_id)
        board = ctx.segment(x_segment).notifications
        for provider in matrix.plan.providers():
            board.reset(provider)

        self._x_full = ctx.segment_view(
            x_segment, np.float64, 0, matrix.n_local + matrix.halo_size
        ) if matrix.n_local + matrix.halo_size else np.zeros(0)
        self._stage = ctx.segment_view(
            stage_segment, np.float64, 0, matrix.plan.total_send
        ) if matrix.plan.total_send else np.zeros(0)
        # precompute contiguous staging offsets per requester (sorted order)
        self._stage_offsets = {}
        offset = 0
        for requester in matrix.plan.requesters():
            self._stage_offsets[requester] = offset
            offset += matrix.plan.send[requester].count

    @staticmethod
    def _ensure_segment(ctx, segment_id: int, nbytes: int) -> None:
        if segment_id in ctx.segments:
            if ctx.segment(segment_id).size < nbytes:
                raise GaspiUsageError(
                    f"segment {segment_id} exists but is too small "
                    f"({ctx.segment(segment_id).size} < {nbytes})"
                )
        else:
            ctx.segment_create(segment_id, nbytes)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, team: Team, matrix: DistMatrix, **kwargs):
        """Generator: collective construction.

        Registers the engine's segments and synchronises the team before
        returning, so no rank can post halo writes into a not-yet-created
        remote segment.  Use this instead of the constructor in application
        code: ``engine = yield from SpMVMEngine.create(team, dmat)``.
        """
        engine = cls(team, matrix, **kwargs)
        yield from engine.sync()
        return engine

    def sync(self):
        """Generator: guarded team barrier (setup/epoch boundary)."""
        ctx = self.team.ctx
        while True:
            self.guard.assert_healthy()
            ret = yield from ctx.barrier(self.team.group, self.comm_timeout)
            if ret is ReturnCode.SUCCESS:
                return

    @property
    def n_local(self) -> int:
        return self.matrix.n_local

    def _flush(self):
        """Flush the queue, retrying on timeout, honouring failure acks."""
        ctx = self.team.ctx
        while True:
            self.guard.assert_healthy()
            ret = yield from ctx.wait(self.queue_id, self.comm_timeout)
            if ret is ReturnCode.SUCCESS:
                return

    def multiply(self, x_local: np.ndarray, out: Optional[np.ndarray] = None,
                 tag: Optional[int] = None):
        """Generator: distributed ``y = A @ x``.

        ``x_local`` is this rank's block of x; returns this rank's block of
        y.  ``tag`` disambiguates iterations across a recovery (the solver
        passes its iteration number); by default an internal counter is
        used.
        """
        if x_local.shape != (self.n_local,):
            raise GaspiUsageError(
                f"x block must have shape ({self.n_local},), got {x_local.shape}"
            )
        ctx = self.team.ctx
        plan = self.matrix.plan
        if tag is None:
            tag = self._tag
        self._tag = tag + 1
        value = (tag % (2**31 - 1)) + 1  # notification values must be non-zero

        if self.n_local:
            self._x_full[: self.n_local] = x_local

        # push phase: one fused write_list_notify per requester; all posts
        # of this tick share one transport doorbell (a single completion
        # timer for the whole push phase)
        notification_id = self.matrix.logical_rank
        for requester in plan.requesters():
            spec = plan.send[requester]
            if spec.count == 0:
                continue
            offset = self._stage_offsets[requester]
            # gather straight into the staging segment (no temp array)
            np.take(x_local, spec.local_idx,
                    out=self._stage[offset : offset + spec.count])
            entry = (self.stage_segment, offset * _F8, spec.count * _F8,
                     self.x_segment, spec.halo_start * _F8)
            while True:
                ret = ctx.write_list_notify(
                    (entry,), self.team.to_physical(requester),
                    self.x_segment, (notification_id, value),
                    queue_id=self.queue_id,
                )
                if ret is ReturnCode.SUCCESS:
                    break
                yield from self._flush()  # queue full: drain and repost
        yield from self._flush()

        # receive phase: drain provider notifications for this tag in
        # batches — harvest everything already landed in one pass, then
        # block once on the whole outstanding span
        board = ctx.segment(self.x_segment).notifications
        pending = set(plan.providers())
        values = board.values
        limit = None if math.isinf(self.comm_timeout) else self.comm_timeout
        while pending:
            self.guard.assert_healthy()
            landed = [p for p in pending if values[p] == value]
            if landed:
                ctx.notify_reset_many(self.x_segment, landed)
                pending.difference_update(landed)
                continue
            stale = [p for p in pending if values[p] != 0]
            if stale:
                # stale tags from before a recovery: consume and re-check
                ctx.notify_reset_many(self.x_segment, stale)
                continue
            # Every pending slot is zero right now, so the flags we need can
            # only arrive via future posts: subscribe to the span directly.
            # (notify_waitsome's pending_in fast path would spin here — an
            # already-consumed provider that ran ahead leaves its next-tag
            # flag set inside the span, returning instantly forever.)
            lo = min(pending)
            event = board.subscribe(lo, max(pending) - lo + 1)
            ok, _ = yield WaitEvent(event, limit)
            if not ok:
                board.unsubscribe(event)

        # local kernel, writing straight into the caller's buffer
        if out is None:
            out = np.empty(self.n_local)
        self.matrix.local.spmv(
            self._x_full if self._x_full.size else np.zeros(0), out=out
        )
        if self.time_model is not None:
            yield Sleep(self.time_model.spmv_time(self.matrix.local.nnz,
                                                  self.n_local))
        return out
