"""Row-block partitioning of the global matrix across logical worker ranks."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class RowPartition:
    """Contiguous, balanced row blocks: block ``i`` gets rows
    ``[offsets[i], offsets[i+1])``; the first ``n_rows % n_parts`` blocks
    are one row larger."""

    __slots__ = ("n_rows", "n_parts", "offsets")

    def __init__(self, n_rows: int, n_parts: int) -> None:
        if n_parts <= 0:
            raise ValueError("need at least one part")
        if n_rows < 0:
            raise ValueError("negative row count")
        self.n_rows = int(n_rows)
        self.n_parts = int(n_parts)
        base, extra = divmod(self.n_rows, self.n_parts)
        sizes = np.full(self.n_parts, base, dtype=np.int64)
        sizes[:extra] += 1
        self.offsets = np.zeros(self.n_parts + 1, dtype=np.int64)
        np.cumsum(sizes, out=self.offsets[1:])

    # ------------------------------------------------------------------
    def range_of(self, part: int) -> Tuple[int, int]:
        """Global row range ``[r0, r1)`` of logical rank ``part``."""
        self._check(part)
        return int(self.offsets[part]), int(self.offsets[part + 1])

    def size_of(self, part: int) -> int:
        r0, r1 = self.range_of(part)
        return r1 - r0

    def owner(self, row) -> np.ndarray:
        """Owning logical rank(s) of global row index/array ``row``."""
        row = np.asarray(row, dtype=np.int64)
        if row.size and (row.min() < 0 or row.max() >= max(self.n_rows, 1)):
            raise ValueError("row index out of range")
        return np.searchsorted(self.offsets, row, side="right") - 1

    def to_local(self, part: int, rows) -> np.ndarray:
        """Translate global rows owned by ``part`` to part-local indices."""
        r0, r1 = self.range_of(part)
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < r0 or rows.max() >= r1):
            raise ValueError(f"rows not owned by part {part}")
        return rows - r0

    def sizes(self) -> List[int]:
        return list(np.diff(self.offsets).astype(int))

    def _check(self, part: int) -> None:
        if not (0 <= part < self.n_parts):
            raise ValueError(f"part {part} outside [0, {self.n_parts})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RowPartition {self.n_rows} rows over {self.n_parts} parts>"
