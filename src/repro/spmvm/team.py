"""The execution team: who computes, under which logical identities.

The paper separates *physical* GASPI ranks (fixed for the job's lifetime)
from *logical* worker identities (``myrank_active``): a rescue process
adopts the failed worker's logical rank, and every survivor replaces the
failed physical rank in its partner table.  :class:`Team` carries that
mapping plus the committed worker group; the fault-tolerance layer rebuilds
it after each recovery and hands the fresh instance back to the solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gaspi.context import GaspiContext
from repro.gaspi.groups import Group


@dataclass
class Team:
    """One rank's view of the current worker group."""

    ctx: GaspiContext
    group: Group
    logical_rank: int
    #: logical worker rank -> physical GASPI rank, identical on all members
    rank_map: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.logical_rank not in self.rank_map:
            raise ValueError(
                f"logical rank {self.logical_rank} missing from rank map"
            )
        if self.rank_map[self.logical_rank] != self.ctx.rank:
            raise ValueError(
                f"rank map binds logical {self.logical_rank} to physical "
                f"{self.rank_map[self.logical_rank]}, but context is rank {self.ctx.rank}"
            )

    @property
    def n_workers(self) -> int:
        return len(self.rank_map)

    def to_physical(self, logical: int) -> int:
        return self.rank_map[logical]

    def logical_ranks(self) -> List[int]:
        return sorted(self.rank_map)

    @classmethod
    def trivial(cls, ctx: GaspiContext, n_workers: Optional[int] = None,
                group: Optional[Group] = None) -> "Team":
        """Identity mapping over ranks ``0..n_workers-1`` (no spares)."""
        n = n_workers if n_workers is not None else ctx.num_ranks
        return cls(
            ctx=ctx,
            group=group or ctx.group_all,
            logical_rank=ctx.rank,
            rank_map={i: i for i in range(n)},
        )
