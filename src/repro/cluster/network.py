"""Dynamic network state: transfer costs, jitter, partitions, dead links.

:class:`Network` combines a static :class:`Topology` with mutable health
state.  It answers two questions for the transport layer:

* ``reachable(a, b)`` — is there currently a path between two *nodes*?
* ``transfer_time(a, b, nbytes)`` — alpha-beta cost of moving ``nbytes``,
  with optional deterministic jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

import numpy as np

from repro.cluster.topology import Topology, UniformTopology


@dataclass
class NetworkParams:
    """Tunable knobs of the network model.

    ``jitter`` is the relative half-width of a uniform multiplicative noise
    term on each transfer (0 disables it; draws come from a named RNG stream
    so runs stay reproducible).
    """

    jitter: float = 0.0
    #: fixed per-message software/NIC overhead (seconds) added to every
    #: transfer on top of wire latency — models posting + completion cost.
    per_message_overhead: float = 0.5e-6


def _link_key(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


class Network:
    """Mutable network health + transfer cost model."""

    def __init__(
        self,
        topology: Optional[Topology] = None,
        params: Optional[NetworkParams] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.topology = topology or UniformTopology()
        self.params = params or NetworkParams()
        self._rng = rng
        self._broken_links: Set[Tuple[int, int]] = set()
        self._isolated_nodes: Set[int] = set()

    # ------------------------------------------------------------------
    # health state
    # ------------------------------------------------------------------
    def break_link(self, node_a: int, node_b: int) -> None:
        """Cut the (bidirectional) link between two nodes."""
        self._broken_links.add(_link_key(node_a, node_b))

    def heal_link(self, node_a: int, node_b: int) -> None:
        """Restore a previously cut link (no-op if it was healthy)."""
        self._broken_links.discard(_link_key(node_a, node_b))

    def isolate_node(self, node: int) -> None:
        """Cut *all* links of ``node`` (switch-port failure)."""
        self._isolated_nodes.add(node)

    def rejoin_node(self, node: int) -> None:
        self._isolated_nodes.discard(node)

    def reachable(self, node_a: int, node_b: int) -> bool:
        """Whether a message can currently flow between the two nodes."""
        if not self._broken_links and not self._isolated_nodes:
            # healthy fabric: nothing is cut, every pair is reachable
            return True
        if node_a == node_b:
            # loopback never traverses the fabric
            return node_a not in self._isolated_nodes or True
        if node_a in self._isolated_nodes or node_b in self._isolated_nodes:
            return False
        return _link_key(node_a, node_b) not in self._broken_links

    @property
    def broken_links(self) -> Set[Tuple[int, int]]:
        return set(self._broken_links)

    @property
    def partitioned(self) -> bool:
        """Whether any link cut or node isolation is currently active.

        ``False`` (the overwhelmingly common case) lets bulk paths skip
        per-target :meth:`reachable` checks entirely.
        """
        return bool(self._broken_links or self._isolated_nodes)

    @property
    def jittered(self) -> bool:
        """Whether multiplicative transfer jitter is active (an RNG stream
        is attached and ``params.jitter`` is nonzero)."""
        return bool(self.params.jitter) and self._rng is not None

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def transfer_time(self, node_a: int, node_b: int, nbytes: int) -> float:
        """Alpha-beta transfer cost: latency + size/bandwidth (+ jitter)."""
        base = (
            self.params.per_message_overhead
            + self.topology.latency(node_a, node_b)
            + nbytes / self.topology.bandwidth(node_a, node_b)
        )
        if self.params.jitter and self._rng is not None:
            base *= 1.0 + self.params.jitter * (2.0 * self._rng.random() - 1.0)
        return base

    def transfer_time_list(self, node_a: int, node_b: int, sizes) -> float:
        """Vectorized cost of a batched (``write_list``-style) transfer.

        The batch moves as *one* fabric operation: a single per-message
        overhead, a single wire latency, and a sum-of-bytes bandwidth term.
        This is the whole point of coalescing — N messages no longer pay N
        overheads and N latencies.
        """
        base = (
            self.params.per_message_overhead
            + self.topology.latency(node_a, node_b)
            + sum(sizes) / self.topology.bandwidth(node_a, node_b)
        )
        if self.params.jitter and self._rng is not None:
            base *= 1.0 + self.params.jitter * (2.0 * self._rng.random() - 1.0)
        return base

    def transfer_time_round(self, node_a: int | np.ndarray,
                            nodes: np.ndarray,
                            nbytes: int | np.ndarray) -> np.ndarray:
        """Whole-round alpha-beta pricing in one vectorized call.

        ``node_a`` is a single source fanned to every node in ``nodes``
        (the ping-sweep / notice-broadcast case), or an array pairing
        ``node_a[i] -> nodes[i]`` (the checkpoint mirror round's
        many-sources case).  ``nbytes`` is likewise a shared scalar or a
        per-pair array.  Element ``i`` is bit-identical to
        ``transfer_time(node_a[i], nodes[i], nbytes[i])`` — the float
        expression mirrors the scalar operation order exactly, so a
        round-priced sweep lands on the same virtual timestamps as the
        historical per-destination loop.  With jitter enabled the
        per-destination draws come from the same RNG stream in destination
        order (the scalar loop's draw order), via the loop fallback.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if self.params.jitter and self._rng is not None:
            src = np.broadcast_to(np.asarray(node_a, dtype=np.int64),
                                  nodes.shape)
            size = np.broadcast_to(np.asarray(nbytes, dtype=np.int64),
                                   nodes.shape)
            return np.array(
                [self.transfer_time(int(a), int(b), int(s))
                 for a, b, s in zip(src, nodes, size)],
                dtype=np.float64,
            )
        lat = self.topology.latency_many(node_a, nodes)
        bw = self.topology.bandwidth_many(node_a, nodes)
        return (self.params.per_message_overhead + lat) + np.asarray(nbytes) / bw
