"""Cluster assembly: nodes + network + transport + process registry.

:class:`Machine` is the root object for one simulated job: it owns the
nodes, the rank-to-node placement, the transport, and the kill switches that
fault injection (or ``gaspi_proc_kill``) pulls.  The GASPI runtime registers
each rank's :class:`repro.sim.Process` here so that a kill actually stops
the running coroutine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.sim import Process, Simulator
from repro.cluster.network import Network, NetworkParams
from repro.cluster.node import Node
from repro.cluster.topology import Topology, UniformTopology
from repro.cluster.transport import Transport, TransportParams


@dataclass
class MachineSpec:
    """Shape of the simulated cluster.

    The paper's runs use one GASPI process per node (with 12 threads inside,
    which are below this model's resolution), hence the default
    ``procs_per_node=1``.
    """

    n_nodes: int = 8
    procs_per_node: int = 1
    topology: Optional[Topology] = None
    network_params: NetworkParams = field(default_factory=NetworkParams)
    transport_params: TransportParams = field(default_factory=TransportParams)

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.procs_per_node


class Machine:
    """One simulated cluster instance bound to a simulator."""

    def __init__(self, sim: Simulator, spec: Optional[MachineSpec] = None) -> None:
        self.sim = sim
        self.spec = spec or MachineSpec()
        self.nodes: List[Node] = [Node(i) for i in range(self.spec.n_nodes)]
        self.network = Network(
            topology=self.spec.topology or UniformTopology(),
            params=self.spec.network_params,
        )
        self.transport = Transport(sim, self.network, self.spec.transport_params)
        self._procs: Dict[int, List[Process]] = {}
        self._death_listeners: List[Callable[[int], None]] = []

        # placement is regular (rank r lives on node r // procs_per_node),
        # so it is computed in one vectorized pass and registered in bulk
        # instead of n_ranks round-trips through transport.register()
        ppn = self.spec.procs_per_node
        n_ranks = self.spec.n_ranks
        self._node_of = np.arange(n_ranks, dtype=np.int64) // ppn
        for node in self.nodes:
            start = node.node_id * ppn
            node.ranks.extend(range(start, start + ppn))
        self.transport.register_many(self._node_of)
        self.transport.set_kill_handler(self.kill_process)

    # ------------------------------------------------------------------
    # placement queries
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return len(self._node_of)

    def node_of(self, rank: int) -> int:
        return int(self._node_of[rank])

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def ranks_on(self, node_id: int) -> List[int]:
        return list(self.nodes[node_id].ranks)

    def alive(self, rank: int) -> bool:
        return self.transport.is_alive(rank)

    def alive_ranks(self) -> List[int]:
        return self.transport.alive_ranks()

    # ------------------------------------------------------------------
    # process registry
    # ------------------------------------------------------------------
    def bind_process(self, rank: int, proc: Process) -> None:
        """Associate a running coroutine with its rank (runtime hook).

        A rank may have several coroutines bound (the main program plus
        helper threads such as the checkpoint library's copy thread); a
        fail-stop kills them all.
        """
        self._procs.setdefault(rank, []).append(proc)

    def processes_of(self, rank: int) -> List[Process]:
        return list(self._procs.get(rank, []))

    def on_death(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with the rank of each killed process."""
        self._death_listeners.append(listener)

    # ------------------------------------------------------------------
    # kill switches
    # ------------------------------------------------------------------
    def kill_process(self, rank: int) -> None:
        """Fail-stop one rank. Idempotent."""
        if not self.transport.is_alive(rank):
            return
        self.transport.mark_dead(rank)
        for proc in self._procs.get(rank, []):
            proc.kill()
        for listener in self._death_listeners:
            listener(rank)

    def kill_node(self, node_id: int) -> None:
        """Crash a node: every rank on it dies, the local store is wiped."""
        node = self.nodes[node_id]
        if not node.alive:
            return
        for rank in node.ranks:
            self.kill_process(rank)
        node.wipe()
