"""Compute node model: rank placement, aliveness, node-local storage."""

from __future__ import annotations

from typing import Any, Dict, List


class Node:
    """One compute node.

    A node hosts one or more ranks and a node-local store (modelling local
    SSD/ramdisk, the target of neighbor-level checkpoints).  Killing a node
    kills its ranks *and* wipes the local store — the difference between a
    process failure (checkpoint survives locally) and a node failure
    (checkpoint must be fetched from the neighbor node).
    """

    __slots__ = ("node_id", "alive", "ranks", "local_store", "ckpt_index")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.alive = True
        self.ranks: List[int] = []
        # tag -> payload; used by repro.checkpoint.store.NodeLocalStore
        self.local_store: Dict[Any, Any] = {}
        # (tag, logical rank) -> sorted held versions; maintained by
        # NodeLocalStore so version listings don't rescan the whole store
        self.ckpt_index: Dict[Any, List[int]] = {}

    def wipe(self) -> None:
        """Mark the node dead and lose everything stored locally."""
        self.alive = False
        self.local_store.clear()
        self.ckpt_index.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<Node {self.node_id} {state} ranks={self.ranks}>"
