"""Fault injection: scheduled and MTTF-driven fail-stop failures.

The paper injects failures three ways (``exit(-1)`` at a fixed iteration,
``kill -9`` at a random instant, physical network failure).  All three map
to :class:`FaultEvent` subclasses executed at exact virtual times, plus an
MTTF-driven generator for failure-storm studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine
    from repro.sim import Simulator


@dataclass(frozen=True)
class FaultEvent:
    """Base: something bad happens at virtual ``time``."""

    time: float

    def apply(self, machine: "Machine") -> None:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class KillProcess(FaultEvent):
    """Fail-stop of a single rank (``kill -9`` / ``exit(-1)``)."""

    rank: int = 0

    def apply(self, machine: "Machine") -> None:
        machine.kill_process(self.rank)

    def describe(self) -> str:
        return f"t={self.time:.3f}s kill process rank={self.rank}"


@dataclass(frozen=True)
class KillNode(FaultEvent):
    """Whole-node crash: all ranks on the node die, local store is lost."""

    node_id: int = 0

    def apply(self, machine: "Machine") -> None:
        machine.kill_node(self.node_id)

    def describe(self) -> str:
        return f"t={self.time:.3f}s kill node id={self.node_id}"


@dataclass(frozen=True)
class BreakLink(FaultEvent):
    """Cut the fabric between two nodes (cable pull / port failure)."""

    node_a: int = 0
    node_b: int = 0

    def apply(self, machine: "Machine") -> None:
        machine.network.break_link(self.node_a, self.node_b)

    def describe(self) -> str:
        return f"t={self.time:.3f}s break link {self.node_a}<->{self.node_b}"


@dataclass(frozen=True)
class HealLink(FaultEvent):
    """Restore a previously cut link (transient network failure)."""

    node_a: int = 0
    node_b: int = 0

    def apply(self, machine: "Machine") -> None:
        machine.network.heal_link(self.node_a, self.node_b)

    def describe(self) -> str:
        return f"t={self.time:.3f}s heal link {self.node_a}<->{self.node_b}"


@dataclass
class FaultPlan:
    """An ordered collection of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def kill_process(self, time: float, rank: int) -> "FaultPlan":
        return self.add(KillProcess(time=time, rank=rank))

    def kill_node(self, time: float, node_id: int) -> "FaultPlan":
        return self.add(KillNode(time=time, node_id=node_id))

    def break_link(self, time: float, node_a: int, node_b: int) -> "FaultPlan":
        return self.add(BreakLink(time=time, node_a=node_a, node_b=node_b))

    def heal_link(self, time: float, node_a: int, node_b: int) -> "FaultPlan":
        return self.add(HealLink(time=time, node_a=node_a, node_b=node_b))

    def sorted_events(self) -> List[FaultEvent]:
        return sorted(self.events, key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.events)


class FaultInjector:
    """Arms a :class:`FaultPlan` on a simulator against a machine."""

    def __init__(
        self,
        sim: "Simulator",
        machine: "Machine",
        plan: FaultPlan,
        on_inject: Optional[Callable[[FaultEvent], None]] = None,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.plan = plan
        self.injected: List[FaultEvent] = []
        self._on_inject = on_inject

    def arm(self) -> None:
        """Schedule every fault event at its virtual time."""
        for event in self.plan.sorted_events():
            self.sim.schedule_at(event.time, self._make_thunk(event))

    def _make_thunk(self, event: FaultEvent) -> Callable[[], None]:
        def thunk() -> None:
            tracer = self.sim.tracer
            if tracer.enabled:
                # rank attribution must be read before the kill lands
                for rank in _affected_ranks(event, self.machine):
                    tracer.emit(self.sim.now, rank, "failure_injected",
                                kind=type(event).__name__)
            event.apply(self.machine)
            self.injected.append(event)
            if self._on_inject is not None:
                self._on_inject(event)

        return thunk


def _affected_ranks(event: FaultEvent, machine: "Machine") -> List[int]:
    """Ranks a fault event fail-stops (``[-1]`` for link events)."""
    if isinstance(event, KillProcess):
        return [event.rank]
    if isinstance(event, KillNode):
        return list(machine.ranks_on(event.node_id))
    return [-1]


def exponential_node_failures(
    rng: np.random.Generator,
    n_nodes: int,
    mttf_node: float,
    horizon: float,
    max_failures: Optional[int] = None,
) -> FaultPlan:
    """Draw node-crash times from independent exponential clocks.

    Each node fails at most once; ``mttf_node`` is the per-node mean time to
    failure.  Only failures before ``horizon`` are kept, optionally capped
    at ``max_failures`` earliest ones (modelling the spare-count budget).
    """
    if mttf_node <= 0:
        raise ValueError("mttf_node must be positive")
    times = rng.exponential(mttf_node, size=n_nodes)
    hits = [(t, node) for node, t in enumerate(times) if t < horizon]
    hits.sort()
    if max_failures is not None:
        hits = hits[:max_failures]
    plan = FaultPlan()
    for t, node in hits:
        plan.kill_node(float(t), node)
    return plan
