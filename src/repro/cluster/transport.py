"""Rank-to-rank transport with RDMA semantics and broken-channel detection.

The transport reproduces the failure-visibility model the paper's fault
detector is built on:

* **RDMA ops** (one-sided write/read) apply to the target's memory at
  delivery time *without target-process involvement*.  If the target process
  is dead (or the path is cut) the operation simply **never completes** —
  the initiator only ever observes ``GASPI_TIMEOUT`` on its queue, exactly
  as the paper describes for workers talking to failed ranks.
* **Ping** (the authors' ``gaspi_proc_ping`` GPI-2 extension) requires the
  remote GPI-2 agent to answer.  A dead/unreachable target makes the ping
  complete with an error after ``error_timeout`` (modelling the transport's
  retry/timeout machinery, ~seconds on InfiniBand).  Once a source saw a
  broken channel, further pings to the same target fail fast.
* **Control messages** (passive communication, kill requests) are delivered
  into the target endpoint's channel if it is alive at delivery time.

All completions are :class:`repro.sim.Event` objects carrying
``(ok, info)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.sim import Channel, Event, Simulator
from repro.cluster.network import Network


class _DoorbellBatch:
    """Same-tick RDMA ops coalesced behind one doorbell ring.

    Ops posted by a source to the same doorbell key within one simulated
    tick share a single completion timer (the max completion time across
    the batch) — the DES analogue of writing N descriptors and ringing the
    NIC doorbell once.
    """

    __slots__ = ("ops",)

    def __init__(self) -> None:
        #: (dst, completion_time, apply_fn, done_event)
        self.ops: List[Tuple[int, float, Callable[[], Any], Event]] = []


@dataclass
class TransportParams:
    """Timing knobs of the transport layer (see DESIGN.md calibration)."""

    #: Time for the transport to diagnose a broken channel (IB retry
    #: timeout equivalent).  Calibrated so detection+ack lands near the
    #: paper's ~5 s (Table I).
    error_timeout: float = 3.5
    #: Software service time of one ping (paper: ~1 ms per process).
    ping_overhead: float = 1.0e-3
    #: Fast-fail latency for pings on an already-known-broken channel.
    fast_fail: float = 1.0e-4
    #: Payload size assumed for acknowledgements/pings.
    small_message: int = 64


@dataclass
class Delivery:
    """A control-plane message as seen by the receiving endpoint."""

    src: int
    kind: str
    payload: Any
    nbytes: int
    t_sent: float


class Endpoint:
    """Per-rank attachment point to the transport."""

    __slots__ = ("rank", "node_id", "alive", "_inboxes")

    def __init__(self, rank: int, node_id: int) -> None:
        self.rank = rank
        self.node_id = node_id
        self.alive = True
        self._inboxes: Dict[str, Channel] = {}

    def inbox(self, kind: str) -> Channel:
        """Per-message-kind FIFO of :class:`Delivery` objects."""
        chan = self._inboxes.get(kind)
        if chan is None:
            chan = Channel(name=f"ep{self.rank}.{kind}")
            self._inboxes[kind] = chan
        return chan


class Transport:
    """All rank-to-rank operations of the simulated fabric."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        params: Optional[TransportParams] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.params = params or TransportParams()
        self._endpoints: Dict[int, Endpoint] = {}
        #: per-source set of targets whose channel is known broken
        self._broken: Dict[int, Set[int]] = {}
        self._kill_handler: Optional[Callable[[int], None]] = None
        #: open same-tick doorbell batches, keyed by (src, doorbell key)
        self._doorbells: Dict[Tuple[int, Any], _DoorbellBatch] = {}
        # counters for tests/benchmarks; "rdma" counts fabric operations,
        # "rdma_writes" the constituent writes they carry (batching shrinks
        # the former, never the latter).
        self.stats: Dict[str, int] = {
            "rdma": 0,
            "rdma_writes": 0,
            "ping": 0,
            "control": 0,
            "kill": 0,
        }

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register(self, rank: int, node_id: int) -> Endpoint:
        """Attach rank ``rank`` living on node ``node_id``."""
        if rank in self._endpoints:
            raise ValueError(f"rank {rank} already registered")
        ep = Endpoint(rank, node_id)
        self._endpoints[rank] = ep
        self._broken[rank] = set()
        return ep

    def endpoint(self, rank: int) -> Endpoint:
        return self._endpoints[rank]

    def set_kill_handler(self, fn: Callable[[int], None]) -> None:
        """Install the machine hook that fail-stops a rank on request."""
        self._kill_handler = fn

    def mark_dead(self, rank: int) -> None:
        """Machine hook: the process behind ``rank`` fail-stopped."""
        self._endpoints[rank].alive = False

    # ------------------------------------------------------------------
    # path helpers
    # ------------------------------------------------------------------
    def _path_up(self, src: int, dst: int) -> bool:
        a, b = self._endpoints[src], self._endpoints[dst]
        return b.alive and self.network.reachable(a.node_id, b.node_id)

    def _latency(self, src: int, dst: int, nbytes: int) -> float:
        a, b = self._endpoints[src], self._endpoints[dst]
        return self.network.transfer_time(a.node_id, b.node_id, nbytes)

    def _ack_latency(self, src: int, dst: int) -> float:
        return self._latency(dst, src, self.params.small_message)

    # ------------------------------------------------------------------
    # RDMA (one-sided)
    # ------------------------------------------------------------------
    def post_rdma(
        self,
        src: int,
        dst: int,
        nbytes: int,
        apply_fn: Callable[[], Any],
    ) -> Event:
        """One-sided operation: run ``apply_fn`` at the target at delivery.

        Completes ``(True, result)`` after delivery + ack if the target
        process is alive and reachable *at delivery time*; otherwise the
        returned event never fires (the initiator's queue sees timeouts).
        """
        self.stats["rdma"] += 1
        self.stats["rdma_writes"] += 1
        done = Event(name=f"rdma:{src}->{dst}")
        lat = self._latency(src, dst, nbytes)
        ack = self._ack_latency(src, dst)

        def deliver() -> None:
            if not self._path_up(src, dst):
                return  # op hangs: initiator only sees queue timeouts
            result = apply_fn()
            self.sim.schedule(ack, lambda: done.succeed((True, result)))

        self.sim.schedule(lat, deliver)
        return done

    def post_rdma_list(
        self,
        src: int,
        dst: int,
        sizes: Sequence[int],
        apply_fn: Callable[[], Any],
        doorbell: Any = None,
        n_writes: Optional[int] = None,
    ) -> Event:
        """Batched one-sided operation: N writes to one target as a single
        simulated transfer (``gaspi_write_list`` semantics).

        The time model is vectorized — one latency plus a sum-of-bytes
        bandwidth term (:meth:`Network.transfer_time_list`).  ``apply_fn``
        applies *all* writes of the batch atomically; the wire guarantees no
        interleaving within one list operation.

        With ``doorbell`` set (typically the GASPI queue id), ops posted by
        ``src`` to the same doorbell key within the same simulated tick are
        coalesced onto a single completion timer firing at the batch's max
        completion time.  Data then lands at completion (latency + ack)
        rather than at bare latency, and the path is re-checked per op at
        that moment — slightly *more* conservative than the sequential
        path: a target dying anywhere before completion hangs the op.
        """
        self.stats["rdma"] += 1
        self.stats["rdma_writes"] += len(sizes) if n_writes is None else n_writes
        done = Event(name=f"rdma_list:{src}->{dst}")
        a, b = self._endpoints[src], self._endpoints[dst]
        lat = self.network.transfer_time_list(a.node_id, b.node_id, sizes)
        ack = self._ack_latency(src, dst)

        if doorbell is None:
            def deliver() -> None:
                if not self._path_up(src, dst):
                    return  # hangs, like post_rdma
                result = apply_fn()
                self.sim.schedule(ack, lambda: done.succeed((True, result)))

            self.sim.schedule(lat, deliver)
            return done

        key = (src, doorbell)
        batch = self._doorbells.get(key)
        if batch is None:
            batch = _DoorbellBatch()
            self._doorbells[key] = batch

            def seal() -> None:
                # End of the tick: close the batch and ring the doorbell —
                # one timer at the slowest op's completion time.
                if self._doorbells.get(key) is batch:
                    del self._doorbells[key]
                ops = batch.ops
                t_max = max(op[1] for op in ops)

                def ring() -> None:
                    for dst_i, _tc, apply_i, done_i in ops:
                        if not self._path_up(src, dst_i):
                            continue  # this op hangs; the rest proceed
                        result = apply_i()
                        done_i.succeed((True, result))

                self.sim.schedule(t_max, ring)

            self.sim.schedule(0.0, seal)
        batch.ops.append((dst, lat + ack, apply_fn, done))
        return done

    # ------------------------------------------------------------------
    # ping (gaspi_proc_ping extension) — the detection mechanism
    # ------------------------------------------------------------------
    def post_ping(self, src: int, dst: int) -> Event:
        """Health probe: completes ``(True, None)`` from a live target,
        ``(False, None)`` after ``error_timeout`` from a dead/cut one."""
        self.stats["ping"] += 1
        done = Event(name=f"ping:{src}->{dst}")
        p = self.params
        if dst in self._broken[src]:
            self.sim.schedule(p.fast_fail, lambda: done.succeed((False, None)))
            return done
        rtt = (
            p.ping_overhead
            + self._latency(src, dst, p.small_message)
            + self._ack_latency(src, dst)
        )

        def resolve() -> None:
            # Aliveness is re-checked at resolution time so that a target
            # dying during the RTT is still (eventually) caught by later
            # pings, while one dying after the answer is legitimately seen
            # healthy this round — just like a real probe.
            if self._path_up(src, dst):
                done.succeed((True, None))
            else:
                self._broken[src].add(dst)

                def fail() -> None:
                    done.succeed((False, None))

                self.sim.schedule(max(0.0, p.error_timeout - rtt), fail)

        self.sim.schedule(rtt, resolve)
        return done

    def post_ping_sweep(
        self, src: int, targets: Sequence[int], width: int = 1
    ) -> Event:
        """Probe a whole round of targets as one batched sweep.

        Semantically identical to issuing :meth:`post_ping` per target with
        at most ``width`` probes in flight (the FD's ``fd_threads`` knob),
        but the entire sweep is driven by transport-internal callbacks: the
        caller blocks once on the returned event instead of once per probe.

        Completes ``(True, results)`` where ``results`` is a list, in
        ``targets`` order, of ``(target, alive, t_start, t_end)`` tuples —
        the virtual start/resolve times each probe would have seen on the
        sequential path (known-broken fast-fails, live-target RTTs, and the
        ``error_timeout`` wait for newly dead targets all preserved).
        """
        self.stats["ping"] += len(targets)
        done = Event(name=f"pingsweep:{src}")
        targets = list(targets)
        n = len(targets)
        width = max(1, int(width))
        out: List[Optional[Tuple[int, bool, float, float]]] = [None] * n
        p = self.params

        def start_group(idx: int) -> None:
            if idx >= n:
                done.succeed((True, out))
                return
            group_end = min(idx + width, n)
            remaining = group_end - idx

            def finish_one() -> None:
                nonlocal remaining
                remaining -= 1
                if remaining == 0:
                    start_group(group_end)

            t0 = self.sim.now
            for i in range(idx, group_end):
                self._sweep_probe(src, targets[i], i, t0, out, finish_one)

        start_group(0)
        return done

    def _sweep_probe(
        self,
        src: int,
        dst: int,
        i: int,
        t0: float,
        out: List[Optional[Tuple[int, bool, float, float]]],
        finish: Callable[[], None],
    ) -> None:
        """One probe of a sweep; mirrors :meth:`post_ping` exactly."""
        p = self.params
        if dst in self._broken[src]:
            def fast_fail() -> None:
                out[i] = (dst, False, t0, self.sim.now)
                finish()

            self.sim.schedule(p.fast_fail, fast_fail)
            return
        rtt = (
            p.ping_overhead
            + self._latency(src, dst, p.small_message)
            + self._ack_latency(src, dst)
        )

        def resolve() -> None:
            if self._path_up(src, dst):
                out[i] = (dst, True, t0, self.sim.now)
                finish()
            else:
                self._broken[src].add(dst)

                def fail() -> None:
                    out[i] = (dst, False, t0, self.sim.now)
                    finish()

                self.sim.schedule(max(0.0, p.error_timeout - rtt), fail)

        self.sim.schedule(rtt, resolve)

    def forget_broken(self, src: int, dst: Optional[int] = None) -> None:
        """Clear the broken-channel cache (e.g. after link repair)."""
        if dst is None:
            self._broken[src].clear()
        else:
            self._broken[src].discard(dst)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def post_control(
        self, src: int, dst: int, kind: str, payload: Any, nbytes: int = 64
    ) -> Event:
        """Deliver a message into the target's control channel.

        Completes ``(True, None)`` once the target (alive at delivery time)
        has the message; never completes otherwise.
        """
        self.stats["control"] += 1
        done = Event(name=f"ctl:{src}->{dst}:{kind}")
        lat = self._latency(src, dst, nbytes)
        t_sent = self.sim.now

        def deliver() -> None:
            if not self._path_up(src, dst):
                return
            self._endpoints[dst].inbox(kind).put(
                Delivery(src=src, kind=kind, payload=payload, nbytes=nbytes, t_sent=t_sent)
            )
            self.sim.schedule(self._ack_latency(src, dst), lambda: done.succeed((True, None)))

        self.sim.schedule(lat, deliver)
        return done

    def post_kill(self, src: int, dst: int) -> Event:
        """Remote fail-stop request (``gaspi_proc_kill``).

        Completes ``(True, None)`` whether or not the target was still
        alive: killing an already-dead process is a success.  If the path
        from ``src`` is cut the request cannot take effect from here (the
        paper has *every* healthy rank issue the kill, so any rank with a
        working path enforces it).
        """
        self.stats["kill"] += 1
        done = Event(name=f"kill:{src}->{dst}")
        lat = self._latency(src, dst, self.params.small_message)

        def deliver() -> None:
            ep = self._endpoints[dst]
            reachable = self.network.reachable(
                self._endpoints[src].node_id, ep.node_id
            )
            if reachable and ep.alive and self._kill_handler is not None:
                self._kill_handler(dst)
            self.sim.schedule(
                self._ack_latency(src, dst), lambda: done.succeed((True, None))
            )

        self.sim.schedule(lat, deliver)
        return done
