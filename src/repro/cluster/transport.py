"""Rank-to-rank transport with RDMA semantics and broken-channel detection.

The transport reproduces the failure-visibility model the paper's fault
detector is built on:

* **RDMA ops** (one-sided write/read) apply to the target's memory at
  delivery time *without target-process involvement*.  If the target process
  is dead (or the path is cut) the operation simply **never completes** —
  the initiator only ever observes ``GASPI_TIMEOUT`` on its queue, exactly
  as the paper describes for workers talking to failed ranks.
* **Ping** (the authors' ``gaspi_proc_ping`` GPI-2 extension) requires the
  remote GPI-2 agent to answer.  A dead/unreachable target makes the ping
  complete with an error after ``error_timeout`` (modelling the transport's
  retry/timeout machinery, ~seconds on InfiniBand).  Once a source saw a
  broken channel, further pings to the same target fail fast.
* **Control messages** (passive communication, kill requests) are delivered
  into the target endpoint's channel if it is alive at delivery time.

All completions are :class:`repro.sim.Event` objects carrying
``(ok, info)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.sim import Channel, Event, Simulator
from repro.cluster.network import Network


class _DoorbellBatch:
    """Same-tick RDMA ops coalesced behind one doorbell ring.

    Ops posted by a source to the same doorbell key within one simulated
    tick share a single completion timer (the max completion time across
    the batch) — the DES analogue of writing N descriptors and ringing the
    NIC doorbell once.
    """

    __slots__ = ("ops",)

    def __init__(self) -> None:
        #: (dst, completion_time, apply_fn, done_event)
        self.ops: List[Tuple[int, float, Callable[[], Any], Event]] = []


@dataclass
class TransportParams:
    """Timing knobs of the transport layer (see DESIGN.md calibration)."""

    #: Time for the transport to diagnose a broken channel (IB retry
    #: timeout equivalent).  Calibrated so detection+ack lands near the
    #: paper's ~5 s (Table I).
    error_timeout: float = 3.5
    #: Software service time of one ping (paper: ~1 ms per process).
    ping_overhead: float = 1.0e-3
    #: Fast-fail latency for pings on an already-known-broken channel.
    fast_fail: float = 1.0e-4
    #: Payload size assumed for acknowledgements/pings.
    small_message: int = 64


@dataclass
class Delivery:
    """A control-plane message as seen by the receiving endpoint."""

    src: int
    kind: str
    payload: Any
    nbytes: int
    t_sent: float


class SweepResults:
    """Per-probe results of one batched ping sweep, materialized lazily.

    Behaves like the sequential sweep's list of ``(target, alive,
    t_start, t_end)`` tuples, but keeps the per-probe data as the arrays
    the batched path already computed: consumers that only need the
    (usually empty) failure list — the FD's hot loop — never touch a
    per-target Python object, while iteration and indexing still yield
    the exact tuples the scalar reference produces.
    """

    __slots__ = ("_targets", "_alive", "_starts", "_ends")

    def __init__(self, targets: List[int], alive: np.ndarray,
                 starts: np.ndarray, ends: np.ndarray) -> None:
        self._targets = targets
        self._alive = alive
        self._starts = starts
        self._ends = ends

    @property
    def failed(self) -> List[int]:
        """Targets that did not answer, in ``targets`` order."""
        if bool(self._alive.all()):
            return []
        return [self._targets[i] for i in np.flatnonzero(~self._alive)]

    def __len__(self) -> int:
        return len(self._targets)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        return (
            self._targets[index],
            bool(self._alive[index]),
            float(self._starts[index]),
            float(self._ends[index]),
        )

    def __iter__(self):
        for i in range(len(self._targets)):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (SweepResults, list, tuple)):
            return list(self) == list(other)
        return NotImplemented


class Endpoint:
    """Per-rank attachment point to the transport.

    Endpoint objects are materialised lazily (:meth:`Transport.endpoint`)
    — liveness truth lives in the transport's rank-indexed arrays, so a
    4096-rank world only instantiates endpoints for ranks that exchange
    control-plane messages or are looked up explicitly.
    """

    __slots__ = ("rank", "node_id", "_transport", "_inboxes")

    def __init__(self, rank: int, node_id: int,
                 transport: "Transport") -> None:
        self.rank = rank
        self.node_id = node_id
        self._transport = transport
        self._inboxes: Dict[str, Channel] = {}

    @property
    def alive(self) -> bool:
        """Liveness, read from the transport's shared rank array."""
        return bool(self._transport._alive[self.rank])

    def inbox(self, kind: str) -> Channel:
        """Per-message-kind FIFO of :class:`Delivery` objects."""
        chan = self._inboxes.get(kind)
        if chan is None:
            chan = Channel(name=f"ep{self.rank}.{kind}")
            self._inboxes[kind] = chan
        return chan


class Transport:
    """All rank-to-rank operations of the simulated fabric."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        params: Optional[TransportParams] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.params = params or TransportParams()
        self._endpoints: Dict[int, Endpoint] = {}
        #: per-rank node id / liveness / death time as dense arrays
        #: (rank-indexed) — the struct-of-arrays truth behind whole-round
        #: pricing, path checks and O(alive) liveness scans.  A rank that
        #: never died has ``t_death = +inf``.
        self._nodes_arr: np.ndarray = np.zeros(0, dtype=np.int64)
        self._alive: np.ndarray = np.zeros(0, dtype=bool)
        self._t_death: np.ndarray = np.zeros(0, dtype=np.float64)
        #: per-source set of targets whose channel is known broken; entries
        #: appear on first breakage (most sources never see one)
        self._broken: Dict[int, Set[int]] = {}
        self._kill_handler: Optional[Callable[[int], None]] = None
        #: open same-tick doorbell batches, keyed by (src, doorbell key)
        self._doorbells: Dict[Tuple[int, Any], _DoorbellBatch] = {}
        # counters for tests/benchmarks; "rdma" counts fabric operations,
        # "rdma_writes" the constituent writes they carry (batching shrinks
        # the former, never the latter).
        self.stats: Dict[str, int] = {
            "rdma": 0,
            "rdma_writes": 0,
            "ping": 0,
            "control": 0,
            "kill": 0,
        }

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register(self, rank: int, node_id: int) -> Endpoint:
        """Attach rank ``rank`` living on node ``node_id``."""
        if self._registered(rank):
            raise ValueError(f"rank {rank} already registered")
        if rank >= self._nodes_arr.shape[0]:
            # geometric growth keeps incremental registration O(n) total
            n_new = max(rank + 1, 2 * self._nodes_arr.shape[0])
            nodes = np.full(n_new, -1, dtype=np.int64)
            nodes[: self._nodes_arr.shape[0]] = self._nodes_arr
            self._nodes_arr = nodes
            alive = np.zeros(n_new, dtype=bool)
            alive[: self._alive.shape[0]] = self._alive
            self._alive = alive
            t_death = np.full(n_new, np.inf, dtype=np.float64)
            t_death[: self._t_death.shape[0]] = self._t_death
            self._t_death = t_death
        self._nodes_arr[rank] = node_id
        self._alive[rank] = True
        return self.endpoint(rank)

    def register_many(self, node_ids: Sequence[int]) -> None:
        """Attach ranks ``0..n-1`` to their nodes in one pass.

        The bulk-construction path: three array allocations for the whole
        world instead of per-rank endpoint objects, broken-channel sets
        and repeated array regrowth.  Endpoints materialise on demand via
        :meth:`endpoint`.
        """
        if self._registered_count():
            raise ValueError("register_many needs an empty transport")
        self._nodes_arr = np.ascontiguousarray(node_ids, dtype=np.int64)
        n = self._nodes_arr.shape[0]
        self._alive = np.ones(n, dtype=bool)
        self._t_death = np.full(n, np.inf, dtype=np.float64)

    def _registered(self, rank: int) -> bool:
        return (0 <= rank < self._nodes_arr.shape[0]
                and int(self._nodes_arr[rank]) >= 0)

    def _registered_count(self) -> int:
        return int(np.count_nonzero(self._nodes_arr >= 0))

    def endpoint(self, rank: int) -> Endpoint:
        ep = self._endpoints.get(rank)
        if ep is None:
            if not self._registered(rank):
                raise KeyError(rank)
            ep = Endpoint(rank, int(self._nodes_arr[rank]), self)
            self._endpoints[rank] = ep
        return ep

    def is_alive(self, rank: int) -> bool:
        """Liveness without materialising an endpoint object."""
        return bool(self._alive[rank])

    def alive_ranks(self) -> List[int]:
        """All live ranks, via one vectorized scan of the alive array."""
        return np.flatnonzero(self._alive).tolist()

    def set_kill_handler(self, fn: Callable[[int], None]) -> None:
        """Install the machine hook that fail-stops a rank on request."""
        self._kill_handler = fn

    def mark_dead(self, rank: int) -> None:
        """Machine hook: the process behind ``rank`` fail-stopped."""
        if np.isinf(self._t_death[rank]):
            self._t_death[rank] = self.sim.now
        self._alive[rank] = False

    # ------------------------------------------------------------------
    # path helpers
    # ------------------------------------------------------------------
    def _path_up(self, src: int, dst: int) -> bool:
        nodes = self._nodes_arr
        return bool(self._alive[dst]) and self.network.reachable(
            int(nodes[src]), int(nodes[dst]))

    def _latency(self, src: int, dst: int, nbytes: int) -> float:
        nodes = self._nodes_arr
        return self.network.transfer_time(
            int(nodes[src]), int(nodes[dst]), nbytes)

    def _ack_latency(self, src: int, dst: int) -> float:
        return self._latency(dst, src, self.params.small_message)

    # ------------------------------------------------------------------
    # RDMA (one-sided)
    # ------------------------------------------------------------------
    def post_rdma(
        self,
        src: int,
        dst: int,
        nbytes: int,
        apply_fn: Callable[[], Any],
    ) -> Event:
        """One-sided operation: run ``apply_fn`` at the target at delivery.

        Completes ``(True, result)`` after delivery + ack if the target
        process is alive and reachable *at delivery time*; otherwise the
        returned event never fires (the initiator's queue sees timeouts).
        """
        self.stats["rdma"] += 1
        self.stats["rdma_writes"] += 1
        done = Event(name=f"rdma:{src}->{dst}")
        lat = self._latency(src, dst, nbytes)
        ack = self._ack_latency(src, dst)

        def deliver() -> None:
            if not self._path_up(src, dst):
                return  # op hangs: initiator only sees queue timeouts
            result = apply_fn()
            self.sim.schedule(ack, lambda: done.succeed((True, result)))

        self.sim.schedule(lat, deliver)
        return done

    def post_rdma_list(
        self,
        src: int,
        dst: int,
        sizes: Sequence[int],
        apply_fn: Callable[[], Any],
        doorbell: Any = None,
        n_writes: Optional[int] = None,
    ) -> Event:
        """Batched one-sided operation: N writes to one target as a single
        simulated transfer (``gaspi_write_list`` semantics).

        The time model is vectorized — one latency plus a sum-of-bytes
        bandwidth term (:meth:`Network.transfer_time_list`).  ``apply_fn``
        applies *all* writes of the batch atomically; the wire guarantees no
        interleaving within one list operation.

        With ``doorbell`` set (typically the GASPI queue id), ops posted by
        ``src`` to the same doorbell key within the same simulated tick are
        coalesced onto a single completion timer firing at the batch's max
        completion time.  Data then lands at completion (latency + ack)
        rather than at bare latency, and the path is re-checked per op at
        that moment — slightly *more* conservative than the sequential
        path: a target dying anywhere before completion hangs the op.
        """
        self.stats["rdma"] += 1
        self.stats["rdma_writes"] += len(sizes) if n_writes is None else n_writes
        done = Event(name=f"rdma_list:{src}->{dst}")
        nodes = self._nodes_arr
        lat = self.network.transfer_time_list(int(nodes[src]), int(nodes[dst]), sizes)
        ack = self._ack_latency(src, dst)

        if doorbell is None:
            def deliver() -> None:
                if not self._path_up(src, dst):
                    return  # hangs, like post_rdma
                result = apply_fn()
                self.sim.schedule(ack, lambda: done.succeed((True, result)))

            self.sim.schedule(lat, deliver)
            return done

        key = (src, doorbell)
        batch = self._doorbells.get(key)
        if batch is None:
            batch = _DoorbellBatch()
            self._doorbells[key] = batch

            def seal() -> None:
                # End of the tick: close the batch and ring the doorbell —
                # one timer at the slowest op's completion time.
                if self._doorbells.get(key) is batch:
                    del self._doorbells[key]
                ops = batch.ops
                t_max = max(op[1] for op in ops)

                def ring() -> None:
                    for dst_i, _tc, apply_i, done_i in ops:
                        if not self._path_up(src, dst_i):
                            continue  # this op hangs; the rest proceed
                        result = apply_i()
                        done_i.succeed((True, result))

                self.sim.schedule(t_max, ring)

            self.sim.schedule(0.0, seal)
        batch.ops.append((dst, lat + ack, apply_fn, done))
        return done

    def post_rdma_round(
        self,
        src: int,
        dsts: Sequence[int],
        nbytes: int,
        apply_fn: Callable[[int], Any],
    ) -> Event:
        """Fan one payload out to every rank in ``dsts`` as a single round
        operation (whole-round alpha-beta pricing, one completion event).

        Virtual-time equivalent of posting :meth:`post_rdma` once per
        destination within one tick and waiting on all of them: data lands
        at destination ``i`` at ``t + lat_i`` (liveness/reachability
        re-checked per destination at its delivery time, exactly like the
        sequential path), and the returned event completes ``(True, None)``
        at ``max_i (t + lat_i) + ack_i`` iff *every* delivery succeeded.
        Any dead or unreachable destination makes the event never fire —
        the initiator's queue sees timeouts, just as a per-target broadcast
        with one hung write would.

        Event cost is O(distinct latency values), not O(destinations): on a
        uniform fabric an entire notice broadcast is one delivery callback
        plus one finalize.
        """
        dst_list = [int(d) for d in dsts]
        self.stats["rdma"] += 1
        self.stats["rdma_writes"] += len(dst_list)
        done = Event(name=f"rdma_round:{src}")
        n = len(dst_list)
        if n == 0:
            done.succeed((True, None))
            return done
        t0 = self.sim.now
        net = self.network
        src_node = int(self._nodes_arr[src])
        if net.jittered:
            # interleaved per-destination draws: the exact RNG order of a
            # sequential per-target post loop
            lats = np.empty(n, dtype=np.float64)
            acks = np.empty(n, dtype=np.float64)
            for j, d in enumerate(dst_list):
                lats[j] = self._latency(src, d, nbytes)
                acks[j] = self._ack_latency(src, d)
        else:
            tgt_nodes = self._nodes_arr[np.asarray(dst_list, dtype=np.int64)]
            lats = net.transfer_time_round(src_node, tgt_nodes, nbytes)
            # symmetric-fabric ack pricing, see _post_ping_sweep_batched
            acks = net.transfer_time_round(
                src_node, tgt_nodes, self.params.small_message
            )
        t_done = float(((t0 + lats) + acks).max())
        state = {"hung": False}

        for lat_val in np.unique(lats).tolist():
            idxs = np.nonzero(lats == lat_val)[0].tolist()

            def deliver(idxs: List[int] = idxs) -> None:
                for j in idxs:
                    d = dst_list[j]
                    if not self._path_up(src, d):
                        state["hung"] = True
                        continue
                    apply_fn(d)

            self.sim.schedule_at(t0 + lat_val, deliver)

        def finalize() -> None:
            if not state["hung"]:
                done.succeed((True, None))

        self.sim.schedule_at(t_done, finalize)
        return done

    def post_rdma_scatter(
        self,
        srcs: Sequence[int],
        dsts: Sequence[int],
        sizes: Sequence[int],
        apply_fns: Sequence[Callable[[], Any]],
        hang_fns: Optional[Sequence[Optional[Callable[[], None]]]] = None,
        write_counts: Optional[Sequence[int]] = None,
    ) -> List[Event]:
        """Pairwise round of independent one-sided ops, priced together.

        Op ``i`` moves ``sizes[i]`` bytes from ``srcs[i]`` to ``dsts[i]``
        — the checkpoint mirror round's many-sources shape (each rank ships
        to its own neighbor), complementing :meth:`post_rdma_round`'s
        one-source fan.  The whole round costs one vectorized
        :meth:`Network.transfer_time_round` call per direction; op ``i``
        completes at ``now + (lat_i + ack_i)`` with the path re-checked at
        that moment, exactly like a doorbell-coalesced
        :meth:`post_rdma_list` op posted by ``srcs[i]`` in the same tick.
        A down path leaves event ``i`` unfired (the initiator's queue sees
        timeouts) and invokes ``hang_fns[i]`` instead, letting the caller
        arm its purge/timeout bookkeeping lazily.  ``write_counts[i]``
        feeds the ``rdma_writes`` counter (the constituent writes each op
        carries); each op counts as one fabric operation.

        Event cost is O(distinct completion times), not O(ops): a uniform
        fabric completes an entire mirror round in one callback.
        """
        n = len(srcs)
        self.stats["rdma"] += n
        self.stats["rdma_writes"] += (
            n if write_counts is None else int(sum(write_counts))
        )
        events = [Event(name="rdma_scatter") for _ in range(n)]
        if n == 0:
            return events
        t0 = self.sim.now
        net = self.network
        src_arr = np.asarray(srcs, dtype=np.int64)
        dst_arr = np.asarray(dsts, dtype=np.int64)
        if net.jittered:
            # per-op RNG draws in op order, like a sequential post loop
            lats = np.empty(n, dtype=np.float64)
            acks = np.empty(n, dtype=np.float64)
            for j in range(n):
                lats[j] = self._latency(
                    int(src_arr[j]), int(dst_arr[j]), int(sizes[j])
                )
                acks[j] = self._ack_latency(int(src_arr[j]), int(dst_arr[j]))
        else:
            src_nodes = self._nodes_arr[src_arr]
            dst_nodes = self._nodes_arr[dst_arr]
            lats = net.transfer_time_round(
                src_nodes, dst_nodes, np.asarray(sizes, dtype=np.int64)
            )
            acks = net.transfer_time_round(
                dst_nodes, src_nodes, self.params.small_message
            )
        t_done = t0 + (lats + acks)

        for t_val in np.unique(t_done).tolist():
            idxs = np.nonzero(t_done == t_val)[0].tolist()

            def ring(idxs: List[int] = idxs) -> None:
                for j in idxs:
                    s, d = srcs[j], dsts[j]
                    if not self._path_up(s, d):
                        if hang_fns is not None and hang_fns[j] is not None:
                            hang_fns[j]()  # type: ignore[misc]
                        continue  # this op hangs; the rest proceed
                    result = apply_fns[j]()
                    events[j].succeed((True, result))

            self.sim.schedule_at(t_val, ring)
        return events

    # ------------------------------------------------------------------
    # ping (gaspi_proc_ping extension) — the detection mechanism
    # ------------------------------------------------------------------
    def post_ping(self, src: int, dst: int) -> Event:
        """Health probe: completes ``(True, None)`` from a live target,
        ``(False, None)`` after ``error_timeout`` from a dead/cut one."""
        self.stats["ping"] += 1
        done = Event(name=f"ping:{src}->{dst}")
        p = self.params
        broken = self._broken.get(src)
        if broken is not None and dst in broken:
            self.sim.schedule(p.fast_fail, lambda: done.succeed((False, None)))
            return done
        rtt = (
            p.ping_overhead
            + self._latency(src, dst, p.small_message)
            + self._ack_latency(src, dst)
        )

        def resolve() -> None:
            # Aliveness is re-checked at resolution time so that a target
            # dying during the RTT is still (eventually) caught by later
            # pings, while one dying after the answer is legitimately seen
            # healthy this round — just like a real probe.
            if self._path_up(src, dst):
                done.succeed((True, None))
            else:
                self._broken.setdefault(src, set()).add(dst)

                def fail() -> None:
                    done.succeed((False, None))

                self.sim.schedule(max(0.0, p.error_timeout - rtt), fail)

        self.sim.schedule(rtt, resolve)
        return done

    def post_ping_sweep(
        self,
        src: int,
        targets: Sequence[int],
        width: int = 1,
        batched: bool = True,
    ) -> Event:
        """Probe a whole round of targets as one batched sweep.

        Semantically identical to issuing :meth:`post_ping` per target with
        at most ``width`` probes in flight (the FD's ``fd_threads`` knob),
        but the entire sweep is driven by transport-internal callbacks: the
        caller blocks once on the returned event instead of once per probe.

        With ``batched=True`` (default) the whole round is priced in one
        vectorized alpha-beta call (:meth:`Network.transfer_time_round`)
        and driven by a *single* finalize callback — O(1) simulator events
        per sweep instead of O(n) — reconstructing the exact per-probe
        virtual times of the callback-chained path.  Jittered networks fall
        back to the sequential path automatically (per-probe RNG draw order
        cannot be reproduced from one post-time pricing call).

        Completes ``(True, results)`` where ``results`` is a list, in
        ``targets`` order, of ``(target, alive, t_start, t_end)`` tuples —
        the virtual start/resolve times each probe would have seen on the
        sequential path (known-broken fast-fails, live-target RTTs, and the
        ``error_timeout`` wait for newly dead targets all preserved).
        """
        self.stats["ping"] += len(targets)
        if batched and not self.network.jittered:
            return self._post_ping_sweep_batched(
                src, list(targets), max(1, int(width))
            )
        return self._post_ping_sweep_seq(src, list(targets), max(1, int(width)))

    def _post_ping_sweep_batched(
        self, src: int, targets: List[int], width: int
    ) -> Event:
        """Whole-round sweep: one pricing call, one finalize callback.

        The sequential timeline is reconstructed in closed form: groups of
        ``width`` probes start together, each group at the previous group's
        max resolve time; a probe resolves after its RTT (or ``fast_fail``
        for known-broken channels) and a newly-dead target adds
        ``max(0, error_timeout - rtt)``.  Deaths *during* the sweep only
        lengthen it, so a fixed-point iteration over the dead set (recomputed
        from the rank death-time array at each callback, with re-arming when
        the sweep end moves past ``now``) converges to the exact sequential
        schedule.  A target is dead for a probe iff its death time is <= the
        probe's resolve time (kills scheduled at equal virtual time carry
        earlier sequence numbers and win the tie, matching the event order
        of the sequential path).  Duplicate targets in one sweep are priced
        off the post-time broken-set snapshot.
        """
        done = Event(name=f"pingsweep:{src}")
        n = len(targets)
        if n == 0:
            done.succeed((True, []))
            return done
        p = self.params
        t_post = self.sim.now
        src_node = int(self._nodes_arr[src])
        tgt = np.asarray(targets, dtype=np.int64)
        tgt_nodes = self._nodes_arr[tgt]
        fwd = self.network.transfer_time_round(
            src_node, tgt_nodes, p.small_message
        )
        # ack direction priced src->dst: the built-in fabrics are symmetric,
        # so this equals transfer_time(dst, src, small_message) bit-for-bit
        ack = self.network.transfer_time_round(
            src_node, tgt_nodes, p.small_message
        )
        rtt = (p.ping_overhead + fwd) + ack
        broken0 = self._broken.get(src, set())
        if broken0:
            is_broken = np.fromiter(
                (t in broken0 for t in targets), dtype=bool, count=n
            )
        else:
            is_broken = np.zeros(n, dtype=bool)
        eff = np.where(is_broken, p.fast_fail, rtt)
        extra = np.maximum(0.0, p.error_timeout - rtt)
        starts = np.empty(n, dtype=np.float64)
        ends = np.empty(n, dtype=np.float64)

        def timeline(dead: np.ndarray) -> float:
            if width == 1:
                # pure chain: each probe starts at the previous probe's
                # end, so the whole schedule is one sequential accumulation
                # over the interleaved (eff, dead-extra) increments.  Alive
                # probes contribute an exact 0.0 extra (r + 0.0 == r for
                # the positive times here), so one cumsum reproduces the
                # grouped loop below bit-for-bit without its O(n) Python
                # iterations.
                pad = np.where(dead & ~is_broken, extra, 0.0)
                chain = np.empty(2 * n + 1, dtype=np.float64)
                chain[0] = t_post
                chain[1::2] = eff
                chain[2::2] = pad
                acc = np.cumsum(chain)
                starts[:] = acc[0:-1:2]
                ends[:] = acc[2::2]
                return float(acc[-1])
            s = t_post
            for g0 in range(0, n, width):
                g1 = min(g0 + width, n)
                resolve = s + eff[g0:g1]
                end = np.where(
                    dead[g0:g1] & ~is_broken[g0:g1],
                    resolve + extra[g0:g1],
                    resolve,
                )
                starts[g0:g1] = s
                ends[g0:g1] = end
                s = float(end.max())
            return s

        def compute() -> Tuple[np.ndarray, float]:
            # Fixed point over the dead set: deaths only push resolve times
            # later, which can only mark *more* targets dead — monotone,
            # so this converges in <= n rounds (practically <= deaths + 1).
            t_death = self._t_death[tgt]
            if self.network.partitioned:
                unreach = np.fromiter(
                    (
                        not self.network.reachable(src_node, int(b))
                        for b in tgt_nodes
                    ),
                    dtype=bool,
                    count=n,
                )
            else:
                unreach = np.zeros(n, dtype=bool)
            dead = np.zeros(n, dtype=bool)
            end = timeline(dead)
            for _ in range(n + 1):
                new_dead = (~is_broken) & (
                    (t_death <= starts + eff) | unreach
                )
                if np.array_equal(new_dead, dead):
                    break
                dead = new_dead
                end = timeline(dead)
            return dead, end

        def check() -> None:
            dead, end = compute()
            if end > self.sim.now:
                # a death since the last estimate stretched the sweep
                self.sim.schedule_at(end, check)
                return
            if dead.any():
                broken = self._broken.setdefault(src, set())
                for d in tgt[dead].tolist():
                    broken.add(int(d))
            alive_mask = ~(is_broken | dead)
            done.succeed((True, SweepResults(
                targets, alive_mask, starts.copy(), ends.copy()
            )))

        _, estimate = compute()
        self.sim.schedule_at(estimate, check)
        return done

    def _post_ping_sweep_seq(
        self, src: int, targets: List[int], width: int
    ) -> Event:
        """Callback-chained sweep (scalar reference; exercised for jittered
        networks and by the vectorized-vs-scalar identity tests)."""
        done = Event(name=f"pingsweep:{src}")
        n = len(targets)
        out: List[Optional[Tuple[int, bool, float, float]]] = [None] * n
        p = self.params

        def start_group(idx: int) -> None:
            if idx >= n:
                done.succeed((True, out))
                return
            group_end = min(idx + width, n)
            remaining = group_end - idx

            def finish_one() -> None:
                nonlocal remaining
                remaining -= 1
                if remaining == 0:
                    start_group(group_end)

            t0 = self.sim.now
            for i in range(idx, group_end):
                self._sweep_probe(src, targets[i], i, t0, out, finish_one)

        start_group(0)
        return done

    def _sweep_probe(
        self,
        src: int,
        dst: int,
        i: int,
        t0: float,
        out: List[Optional[Tuple[int, bool, float, float]]],
        finish: Callable[[], None],
    ) -> None:
        """One probe of a sweep; mirrors :meth:`post_ping` exactly."""
        p = self.params
        broken = self._broken.get(src)
        if broken is not None and dst in broken:
            def fast_fail() -> None:
                out[i] = (dst, False, t0, self.sim.now)
                finish()

            self.sim.schedule(p.fast_fail, fast_fail)
            return
        rtt = (
            p.ping_overhead
            + self._latency(src, dst, p.small_message)
            + self._ack_latency(src, dst)
        )

        def resolve() -> None:
            if self._path_up(src, dst):
                out[i] = (dst, True, t0, self.sim.now)
                finish()
            else:
                self._broken.setdefault(src, set()).add(dst)

                def fail() -> None:
                    out[i] = (dst, False, t0, self.sim.now)
                    finish()

                self.sim.schedule(max(0.0, p.error_timeout - rtt), fail)

        self.sim.schedule(rtt, resolve)

    def forget_broken(self, src: int, dst: Optional[int] = None) -> None:
        """Clear the broken-channel cache (e.g. after link repair)."""
        broken = self._broken.get(src)
        if broken is None:
            return
        if dst is None:
            broken.clear()
        else:
            broken.discard(dst)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def post_control(
        self, src: int, dst: int, kind: str, payload: Any, nbytes: int = 64
    ) -> Event:
        """Deliver a message into the target's control channel.

        Completes ``(True, None)`` once the target (alive at delivery time)
        has the message; never completes otherwise.
        """
        self.stats["control"] += 1
        done = Event(name=f"ctl:{src}->{dst}:{kind}")
        lat = self._latency(src, dst, nbytes)
        t_sent = self.sim.now

        def deliver() -> None:
            if not self._path_up(src, dst):
                return
            self.endpoint(dst).inbox(kind).put(
                Delivery(src=src, kind=kind, payload=payload, nbytes=nbytes, t_sent=t_sent)
            )
            self.sim.schedule(self._ack_latency(src, dst), lambda: done.succeed((True, None)))

        self.sim.schedule(lat, deliver)
        return done

    def post_kill(self, src: int, dst: int) -> Event:
        """Remote fail-stop request (``gaspi_proc_kill``).

        Completes ``(True, None)`` whether or not the target was still
        alive: killing an already-dead process is a success.  If the path
        from ``src`` is cut the request cannot take effect from here (the
        paper has *every* healthy rank issue the kill, so any rank with a
        working path enforces it).
        """
        self.stats["kill"] += 1
        done = Event(name=f"kill:{src}->{dst}")
        lat = self._latency(src, dst, self.params.small_message)

        def deliver() -> None:
            nodes = self._nodes_arr
            reachable = self.network.reachable(
                int(nodes[src]), int(nodes[dst])
            )
            if reachable and bool(self._alive[dst]) \
                    and self._kill_handler is not None:
                self._kill_handler(dst)
            self.sim.schedule(
                self._ack_latency(src, dst), lambda: done.succeed((True, None))
            )

        self.sim.schedule(lat, deliver)
        return done
