"""Network topologies: map a node pair to base latency and bandwidth.

The paper's testbed uses Mellanox QDR InfiniBand (~1.3 us MPI-level latency,
~3.2 GB/s effective per-link bandwidth).  Topologies are purely geometric:
dynamic state (partitions, jitter, dead links) lives in
:class:`repro.cluster.network.Network`.
"""

from __future__ import annotations

import abc

import numpy as np


class Topology(abc.ABC):
    """Latency/bandwidth geometry between nodes."""

    @abc.abstractmethod
    def latency(self, node_a: int, node_b: int) -> float:
        """One-way wire latency in seconds between two nodes."""

    @abc.abstractmethod
    def bandwidth(self, node_a: int, node_b: int) -> float:
        """Point-to-point bandwidth in bytes/second between two nodes."""

    # ------------------------------------------------------------------
    # vectorized views (whole-round pricing)
    # ------------------------------------------------------------------
    def latency_many(self, node_a: int | np.ndarray,
                     nodes: np.ndarray) -> np.ndarray:
        """Per-pair :meth:`latency` to every node in ``nodes`` as a float64
        array.  ``node_a`` is a single source node or an array pairing
        ``node_a[i] -> nodes[i]`` (the checkpoint mirror round's
        many-sources case).  The base implementation loops (any topology
        works); built-in topologies override it with closed-form array
        expressions producing bit-identical values.
        """
        src = np.broadcast_to(np.asarray(node_a, dtype=np.int64),
                              np.asarray(nodes).shape)
        return np.array(
            [self.latency(int(a), int(b)) for a, b in zip(src, nodes)],
            dtype=np.float64)

    def bandwidth_many(self, node_a: int | np.ndarray,
                       nodes: np.ndarray) -> np.ndarray:
        """Per-pair :meth:`bandwidth`, vectorized (``node_a`` scalar or
        paired array, like :meth:`latency_many`)."""
        src = np.broadcast_to(np.asarray(node_a, dtype=np.int64),
                              np.asarray(nodes).shape)
        return np.array(
            [self.bandwidth(int(a), int(b)) for a, b in zip(src, nodes)],
            dtype=np.float64)


#: QDR InfiniBand-like defaults (LiMa cluster, paper Sect. V).
QDR_LATENCY = 1.3e-6
QDR_BANDWIDTH = 3.2e9
#: Loopback (two ranks on one node go through shared memory).
LOOPBACK_LATENCY = 0.3e-6
LOOPBACK_BANDWIDTH = 12.0e9


class UniformTopology(Topology):
    """Every node pair sees the same latency/bandwidth (single big switch)."""

    def __init__(
        self,
        latency: float = QDR_LATENCY,
        bandwidth: float = QDR_BANDWIDTH,
        loopback_latency: float = LOOPBACK_LATENCY,
        loopback_bandwidth: float = LOOPBACK_BANDWIDTH,
    ) -> None:
        self._latency = latency
        self._bandwidth = bandwidth
        self._loop_latency = loopback_latency
        self._loop_bandwidth = loopback_bandwidth

    def latency(self, node_a: int, node_b: int) -> float:
        return self._loop_latency if node_a == node_b else self._latency

    def bandwidth(self, node_a: int, node_b: int) -> float:
        return self._loop_bandwidth if node_a == node_b else self._bandwidth

    def latency_many(self, node_a: int, nodes: np.ndarray) -> np.ndarray:
        return np.where(np.asarray(nodes) == node_a,
                        self._loop_latency, self._latency)

    def bandwidth_many(self, node_a: int, nodes: np.ndarray) -> np.ndarray:
        return np.where(np.asarray(nodes) == node_a,
                        self._loop_bandwidth, self._bandwidth)


class TwoLevelTopology(Topology):
    """Leaf/spine fabric: extra hop cost when crossing switch boundaries.

    Nodes are grouped into switches of ``nodes_per_switch``; pairs under the
    same leaf switch pay one hop, pairs crossing the spine pay three.
    """

    def __init__(
        self,
        nodes_per_switch: int = 18,
        hop_latency: float = 0.6e-6,
        base_latency: float = QDR_LATENCY,
        bandwidth: float = QDR_BANDWIDTH,
        loopback_latency: float = LOOPBACK_LATENCY,
        loopback_bandwidth: float = LOOPBACK_BANDWIDTH,
    ) -> None:
        if nodes_per_switch < 1:
            raise ValueError("nodes_per_switch must be >= 1")
        self.nodes_per_switch = nodes_per_switch
        self.hop_latency = hop_latency
        self.base_latency = base_latency
        self._bandwidth = bandwidth
        self._loop_latency = loopback_latency
        self._loop_bandwidth = loopback_bandwidth

    def switch_of(self, node: int) -> int:
        return node // self.nodes_per_switch

    def latency(self, node_a: int, node_b: int) -> float:
        if node_a == node_b:
            return self._loop_latency
        hops = 1 if self.switch_of(node_a) == self.switch_of(node_b) else 3
        return self.base_latency + hops * self.hop_latency

    def bandwidth(self, node_a: int, node_b: int) -> float:
        return self._loop_bandwidth if node_a == node_b else self._bandwidth

    def latency_many(self, node_a: int, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes)
        same_switch = (nodes // self.nodes_per_switch) == self.switch_of(node_a)
        out = np.where(same_switch,
                       self.base_latency + 1 * self.hop_latency,
                       self.base_latency + 3 * self.hop_latency)
        return np.where(nodes == node_a, self._loop_latency, out)

    def bandwidth_many(self, node_a: int, nodes: np.ndarray) -> np.ndarray:
        return np.where(np.asarray(nodes) == node_a,
                        self._loop_bandwidth, self._bandwidth)
