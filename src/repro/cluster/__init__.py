"""Simulated HPC cluster: nodes, network, transport and fault injection.

This package models the hardware substrate the paper's experiments ran on
(the LiMa cluster at RRZE: 2-socket Westmere nodes, QDR InfiniBand).  It
provides:

* :class:`Node` / :class:`Machine` — nodes, rank placement, node-local
  storage (for the neighbor-level checkpoint library) and kill switches for
  processes, nodes and links.
* :class:`Network` with pluggable :class:`Topology` — an alpha-beta
  (latency + bandwidth) cost model with optional deterministic jitter and
  link/partition state.
* :class:`Transport` — rank-to-rank operations with RDMA semantics: remote
  writes apply without target-CPU involvement; operations to dead processes
  hang (the sender only sees timeouts), while the explicit *ping* operation
  diagnoses a broken channel after an error-detection timeout.  This split
  is the paper's entire fault-detection premise.
* :class:`FaultPlan` / :class:`FaultInjector` — scheduled and MTTF-driven
  fail-stop process/node kills and link failures.
"""

from repro.cluster.node import Node
from repro.cluster.topology import Topology, UniformTopology, TwoLevelTopology
from repro.cluster.network import Network, NetworkParams
from repro.cluster.transport import Transport, TransportParams, Endpoint, Delivery
from repro.cluster.faults import (
    FaultEvent,
    KillProcess,
    KillNode,
    BreakLink,
    HealLink,
    FaultPlan,
    FaultInjector,
    exponential_node_failures,
)
from repro.cluster.machine import Machine, MachineSpec

__all__ = [
    "Node",
    "Topology",
    "UniformTopology",
    "TwoLevelTopology",
    "Network",
    "NetworkParams",
    "Transport",
    "TransportParams",
    "Endpoint",
    "Delivery",
    "FaultEvent",
    "KillProcess",
    "KillNode",
    "BreakLink",
    "HealLink",
    "FaultPlan",
    "FaultInjector",
    "exponential_node_failures",
    "Machine",
    "MachineSpec",
]
