"""ULFM-style communicator on the simulated transport.

Semantics implemented (after the ULFM specification and its OpenMPI
prototype, which the paper cites as [9], [15], [16]):

* point-to-point and collective operations return ``SUCCESS``,
  ``PROC_FAILED`` (a participant is dead — detected through the failed
  communication itself after the transport's error-detection delay),
  or ``REVOKED`` (the communicator was revoked by some rank);
* ``revoke`` is asynchronous and sticky: one call eventually poisons the
  communicator on every surviving member;
* ``shrink`` is a collective among survivors producing a new communicator
  over the agreed alive-set, with the linearly-scaling cost reported for
  the OpenMPI prototype;
* ``agree`` performs fault-tolerant agreement (logical AND) among
  survivors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.sim import Sleep, WaitEvent
from repro.gaspi.constants import AllreduceOp
from repro.gaspi.context import GaspiContext


class UlfmResult(enum.Enum):
    """Return status of ULFM operations."""

    SUCCESS = 0
    PROC_FAILED = 1
    REVOKED = 2

    def __bool__(self) -> bool:  # pragma: no cover - misuse guard
        raise TypeError("compare UlfmResult explicitly")


@dataclass
class UlfmCosts:
    """Timing model of the ULFM prototype's FT operations.

    Laguna et al. (EuroMPI'14, the paper's [15]) measure revoke and shrink
    times growing linearly with node count on the OpenMPI prototype; the
    per-rank constants below land shrink(256) in the several-second range
    they report.
    """

    revoke_latency: float = 0.5e-3
    shrink_base: float = 0.100
    shrink_per_rank: float = 0.020
    agree_base: float = 0.010
    agree_per_rank: float = 0.002
    #: polling granularity while waiting for collective partners
    poll: float = 0.050


class UlfmComm:
    """One rank's handle of a ULFM communicator."""

    _KIND = "ulfm-ctl"

    def __init__(self, ctx: GaspiContext, ranks: List[int], comm_id: int = 0,
                 costs: Optional[UlfmCosts] = None) -> None:
        if ctx.rank not in ranks:
            raise ValueError(f"rank {ctx.rank} not in communicator {ranks}")
        self.ctx = ctx
        self.ranks = sorted(ranks)
        self.comm_id = comm_id
        self.costs = costs or UlfmCosts()
        self.revoked = False
        self._known_failed: set = set()
        self._coll_seq = 0

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank *within* the communicator."""
        return self.ranks.index(self.ctx.rank)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def _engine(self):
        return self.ctx.world.engine

    def _machine(self):
        return self.ctx.world.machine

    def _identity(self) -> Tuple:
        return ("ulfm", self.comm_id, tuple(self.ranks))

    # ------------------------------------------------------------------
    # failure knowledge
    # ------------------------------------------------------------------
    def _drain_control(self) -> None:
        """Process pending revoke notices (checked on entry of every op)."""
        inbox = self.ctx.world.transport.endpoint(self.ctx.rank).inbox(self._KIND)
        while True:
            ok, msg = inbox.try_get()
            if not ok:
                break
            kind, comm_id = msg.payload
            if kind == "revoke" and comm_id == self.comm_id:
                self.revoked = True

    def _alive_members(self) -> List[int]:
        machine = self._machine()
        return [r for r in self.ranks if machine.alive(r)]

    def _note_failures(self) -> List[int]:
        """ULFM's communication-based detection: learn of dead members.

        Models the runtime noticing broken links after the transport
        error-detection delay; callers only reach this after an operation
        already stalled for at least that long.
        """
        dead = [r for r in self.ranks if not self._machine().alive(r)]
        fresh = [r for r in dead if r not in self._known_failed]
        self._known_failed.update(dead)
        return fresh

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, dst: int, payload: Any, timeout: float = 60.0):
        """Generator: two-sided send to communicator rank ``dst``."""
        self._drain_control()
        if self.revoked:
            return UlfmResult.REVOKED
        target = self.ranks[dst]
        done = self.ctx.world.transport.post_control(
            self.ctx.rank, target, "ulfm-p2p", (self.comm_id, payload)
        )
        error_after = self.ctx.world.machine.spec.transport_params.error_timeout
        ok, _ = yield WaitEvent(done, min(timeout, error_after))
        self._drain_control()
        if self.revoked:
            return UlfmResult.REVOKED
        if ok:
            return UlfmResult.SUCCESS
        self._note_failures()
        if target in self._known_failed:
            return UlfmResult.PROC_FAILED
        ok, _ = yield WaitEvent(done, timeout)
        return UlfmResult.SUCCESS if ok else UlfmResult.PROC_FAILED

    def recv(self, timeout: float = 60.0):
        """Generator: returns ``(result, src_comm_rank, payload)``."""
        self._drain_control()
        if self.revoked:
            return (UlfmResult.REVOKED, -1, None)
        inbox = self.ctx.world.transport.endpoint(self.ctx.rank).inbox("ulfm-p2p")
        deadline = self.ctx.now + timeout
        while True:
            remaining = min(self.costs.poll * 20, max(0.0, deadline - self.ctx.now))
            ok, msg = yield from inbox.get(remaining)
            self._drain_control()
            if self.revoked:
                return (UlfmResult.REVOKED, -1, None)
            if ok:
                comm_id, payload = msg.payload
                if comm_id != self.comm_id:
                    continue  # stale generation
                return (UlfmResult.SUCCESS, self.ranks.index(msg.src), payload)
            if self.ctx.now >= deadline:
                self._note_failures()
                return (UlfmResult.PROC_FAILED, -1, None)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _collective(self, kind: str, contribution, finisher, cost: float,
                    members: Tuple[int, ...]):
        """Generator: engine-backed collective with ULFM error reporting."""
        engine = self._engine()
        seq = self._coll_seq
        event = engine.arrive(kind, self._identity(), seq, self.ctx.rank,
                              members, contribution=contribution,
                              finisher=finisher, cost=cost)
        error_after = self.ctx.world.machine.spec.transport_params.error_timeout
        waited = 0.0
        while True:
            ok, result = yield WaitEvent(event, self.costs.poll)
            self._drain_control()
            if self.revoked and not ok:
                return (UlfmResult.REVOKED, None)
            if ok:
                self._coll_seq += 1
                return (UlfmResult.SUCCESS, result)
            waited += self.costs.poll
            if waited >= error_after:
                self._note_failures()
                if any(r in self._known_failed for r in members):
                    return (UlfmResult.PROC_FAILED, None)

    def barrier(self):
        """Generator: barrier over the full membership."""
        self._drain_control()
        if self.revoked:
            return UlfmResult.REVOKED
        members = tuple(self.ranks)
        cost = self._engine().costs.barrier(len(members))
        ret, _ = yield from self._collective("barrier", None, None, cost,
                                             members)
        return ret

    def allreduce(self, values, op: AllreduceOp):
        """Generator: returns ``(result, reduced array)``."""
        self._drain_control()
        if self.revoked:
            return (UlfmResult.REVOKED, None)
        members = tuple(self.ranks)
        contribution = np.array(values, copy=True)
        cost = self._engine().costs.allreduce(len(members), contribution.nbytes)
        return (yield from self._collective(
            "allreduce", contribution,
            self._engine().reduce_finisher(op), cost, members,
        ))

    # ------------------------------------------------------------------
    # ULFM specifics
    # ------------------------------------------------------------------
    def revoke(self):
        """Generator: ``MPIX_Comm_revoke`` — poison the communicator.

        Local completion is immediate; notices propagate to every member
        asynchronously (dead ones simply never receive theirs).
        """
        self.revoked = True
        for target in self.ranks:
            if target != self.ctx.rank:
                self.ctx.world.transport.post_control(
                    self.ctx.rank, target, self._KIND,
                    ("revoke", self.comm_id),
                )
        yield Sleep(self.costs.revoke_latency)
        return UlfmResult.SUCCESS

    def agree(self, flag: int):
        """Generator: ``MPIX_Comm_agree`` — AND over *surviving* members.

        Returns ``(result, agreed flag)``.  Works on revoked communicators
        (that is its purpose) and ignores dead members.
        """
        self._note_failures()
        members = tuple(self._alive_members())
        if self.ctx.rank not in members:  # pragma: no cover - we are alive
            raise RuntimeError("agree called by dead rank")
        cost = (self.costs.agree_base
                + self.costs.agree_per_rank * len(self.ranks))
        seq = self._coll_seq
        engine = self._engine()
        event = engine.arrive(
            "agree", self._identity() + ("agree",), seq, self.ctx.rank,
            members, contribution=np.array([flag], dtype=np.int64),
            finisher=engine.reduce_finisher(AllreduceOp.MIN), cost=cost,
        )
        ok, result = yield WaitEvent(event)
        self._coll_seq += 1
        return (UlfmResult.SUCCESS, int(result[0]))

    def shrink(self, new_comm_id: Optional[int] = None):
        """Generator: ``MPIX_Comm_shrink`` — consensus new communicator.

        Collective among survivors; returns ``(result, new UlfmComm)``.
        Cost is linear in the parent size (the OpenMPI prototype's
        behaviour reported by Laguna et al.).
        """
        self._note_failures()
        members = tuple(self._alive_members())
        cost = (self.costs.shrink_base
                + self.costs.shrink_per_rank * len(self.ranks))
        seq = self._coll_seq
        engine = self._engine()
        event = engine.arrive(
            "shrink", self._identity() + ("shrink",), seq, self.ctx.rank,
            members, contribution=None, finisher=lambda _: list(members),
            cost=cost,
        )
        ok, alive = yield WaitEvent(event)
        self._coll_seq += 1
        new_id = new_comm_id if new_comm_id is not None else self.comm_id + 1
        return (UlfmResult.SUCCESS,
                UlfmComm(self.ctx, list(alive), new_id, self.costs))
