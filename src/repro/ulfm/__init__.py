"""A minimal ULFM-style fault-tolerance layer (the paper's future work).

The paper (Sect. VIII) plans "to compare this fault tolerance approach
with the Open MPI's ULFM functionality"; this package provides the
counterpart needed for that comparison: an MPI-like communicator with
User-Level Failure Mitigation semantics —

* failures are detected *by communication*: an operation touching a dead
  peer eventually returns ``PROC_FAILED`` (there is no explicit detector
  process, unlike the paper's design);
* ``revoke`` propagates failure knowledge: it poisons the communicator on
  every member, so collectives cannot deadlock on inconsistent views;
* ``shrink`` builds a consensus alive-set and returns a new, smaller
  communicator (shrinking recovery — the opposite of the paper's
  non-shrinking spare-process scheme);
* ``agree`` is the fault-tolerant agreement collective.

Costs follow the published ULFM evaluations the paper cites (Laguna et
al.: revoke+shrink time grows linearly with node count).
"""

from repro.ulfm.comm import UlfmComm, UlfmCosts, UlfmResult

__all__ = ["UlfmComm", "UlfmCosts", "UlfmResult"]
