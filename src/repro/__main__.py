"""Command-line entry point: ``python -m repro <experiment> [...]``.

Subcommands map to the experiment harness modules:

* ``figure4``  — the seven runtime scenarios (``--scale paper|small|tiny``)
* ``table1``   — FD scan/detection latency vs node count
* ``ablations``— FD strategies, checkpoint interval/destination, commit
* ``compare``  — non-shrinking (paper) vs shrinking (ULFM) recovery
"""

from __future__ import annotations

import sys

from repro.experiments import ablations, figure4, recovery_compare, table1

_COMMANDS = {
    "figure4": figure4.main,
    "table1": table1.main,
    "ablations": ablations.main,
    "compare": recovery_compare.main,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help") or argv[0] not in _COMMANDS:
        print(__doc__)
        print("usage: python -m repro {" + ",".join(_COMMANDS) + "} [options]")
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    command = argv.pop(0)
    _COMMANDS[command](argv)
    return 0


if __name__ == "__main__":
    sys.exit(main())
