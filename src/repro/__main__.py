"""Command-line entry point: ``python -m repro <experiment> [...]``.

Subcommands map to the experiment harness modules:

* ``figure4``  — the seven runtime scenarios (``--scale paper|small|tiny``)
* ``table1``   — FD scan/detection latency vs node count
* ``ablations``— FD strategies, checkpoint interval/destination, commit
* ``compare``  — non-shrinking (paper) vs shrinking (ULFM) recovery
* ``bench``    — hot-path microbenchmarks, tracked in ``BENCH_core.json``
* ``trace``    — run an experiment with structured tracing: JSONL +
  chrome://tracing exports and a per-failure timeline report (see
  ``OBSERVABILITY.md``)

Every experiment subcommand accepts ``--jobs N``: its scenarios are
independent simulations and fan out across N worker processes (0 = all
cores), with output byte-identical to the serial default.
"""

from __future__ import annotations

import sys
from typing import List, Optional


def _bench_main(argv):
    from repro.perf import bench

    return bench.main(argv)


def _experiment_main(name):
    def run(argv):
        import importlib

        module = importlib.import_module(f"repro.experiments.{name}")
        return module.main(argv)

    return run


_COMMANDS = {
    "figure4": _experiment_main("figure4"),
    "table1": _experiment_main("table1"),
    "ablations": _experiment_main("ablations"),
    "compare": _experiment_main("recovery_compare"),
    "bench": _bench_main,
    "trace": _experiment_main("trace"),
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help") or argv[0] not in _COMMANDS:
        print(__doc__)
        print("usage: python -m repro {" + ",".join(_COMMANDS) + "} [options]")
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    command = argv.pop(0)
    result = _COMMANDS[command](argv)
    return result if isinstance(result, int) else 0


if __name__ == "__main__":
    sys.exit(main())
