"""A third fault-tolerant application: conjugate gradient.

Completes the demonstration that the paper's FT machinery is
application-agnostic: CG's restartable state is three vectors plus two
scalars, checkpointed and restored through exactly the same services as
the Lanczos and power-iteration programs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.ft.app import FTContext, FTProgram
from repro.spmvm.dist_matrix import DistMatrix, distribute_matrix
from repro.spmvm.dist_vector import DistVector
from repro.spmvm.matgen.base import RowGenerator
from repro.spmvm.spmv import SpMVMEngine


class FTConjugateGradient(FTProgram):
    """Fault-tolerant solver for ``A x = b`` (A symmetric positive definite).

    ``rhs`` is the *global* right-hand side, evaluated per rank from the
    row partition (so rescues can rebuild their block without
    communication).
    """

    def __init__(self, generator: RowGenerator, rhs: np.ndarray,
                 n_steps: int = 500, tol: float = 1e-10,
                 checkpoint_interval: Optional[int] = None,
                 time_model=None) -> None:
        self.generator = generator
        self.rhs = np.asarray(rhs, dtype=np.float64)
        if self.rhs.shape != (generator.n_rows,):
            raise ValueError("rhs must match the operator dimension")
        self.n_steps = n_steps
        self.tol = tol
        self.checkpoint_interval = checkpoint_interval
        self.time_model = time_model

    # ------------------------------------------------------------------
    def _rhs_block(self, ftx: FTContext, dmat: DistMatrix) -> np.ndarray:
        r0, r1 = dmat.partition().range_of(ftx.team.logical_rank)
        return self.rhs[r0:r1].copy()

    def _build(self, ftx: FTContext, dmat: DistMatrix,
               state: Optional[Dict[str, np.ndarray]]):
        engine = yield from SpMVMEngine.create(
            ftx.team, dmat, guard=ftx.guard,
            comm_timeout=ftx.cfg.comm_timeout, time_model=self.time_model,
        )
        if state is None:
            b = self._rhs_block(ftx, dmat)
            state = {
                "x": np.zeros(dmat.n_local),
                "r": b.copy(),
                "p": b.copy(),
                "rho": np.float64(-1.0),  # sentinel: compute at first step
                "step": np.int64(0),
            }
        return {"engine": engine, "dmat": dmat, "state": state}

    def setup(self, ftx: FTContext):
        dmat = yield from distribute_matrix(
            ftx.team, self.generator, guard=ftx.guard,
            comm_timeout=ftx.cfg.comm_timeout,
        )
        yield from ftx.write_setup_checkpoint(dmat.to_payload())
        return (yield from self._build(ftx, dmat, None))

    def restore(self, ftx: FTContext, state_payload):
        setup_payload = yield from ftx.read_setup_checkpoint()
        if setup_payload is None:
            dmat = yield from distribute_matrix(
                ftx.team, self.generator, guard=ftx.guard,
                comm_timeout=ftx.cfg.comm_timeout,
            )
            yield from ftx.write_setup_checkpoint(dmat.to_payload())
        else:
            dmat = DistMatrix.from_payload(setup_payload)
        state = None
        if state_payload is not None:
            state = {key.split("cg.")[1]: np.asarray(value)
                     for key, value in state_payload.items()
                     if key.startswith("cg.")}
        return (yield from self._build(ftx, dmat, state))

    def run(self, ftx: FTContext, work: Dict[str, Any]):
        engine: SpMVMEngine = work["engine"]
        state = work["state"]
        interval = self.checkpoint_interval or ftx.cfg.checkpoint_interval

        def vec(data):
            return DistVector(ftx.team, data, ftx.guard, ftx.cfg.comm_timeout)

        x, r, p = vec(state["x"]), vec(state["r"]), vec(state["p"])
        step = int(state["step"])
        rho = float(state["rho"])
        if rho < 0:
            rho = yield from r.dot(r)
        b_norm = yield from vec(self._rhs_block(ftx, work["dmat"])).norm()
        if b_norm == 0.0:
            return {"steps": 0, "residual": 0.0, "x": x.local}

        residual = rho ** 0.5
        ap = vec(np.empty(engine.n_local))  # reused spMVM output buffer
        tracer = ftx.ctx.tracer
        while step < self.n_steps and residual > self.tol * b_norm:
            t0 = ftx.now
            yield from engine.multiply(p.local, out=ap.local, tag=step)
            p_ap = yield from p.dot(ap)
            if p_ap <= 0.0:
                raise ValueError("operator not positive definite")
            alpha = rho / p_ap
            x.axpy(alpha, p)
            r.axpy(-alpha, ap)
            rho_next = yield from r.dot(r)
            beta = rho_next / rho
            p.scale(beta).axpy(1.0, r)  # p = r + beta*p, in place
            rho = rho_next
            residual = rho ** 0.5
            step += 1
            ftx.count("iterations")
            if tracer.enabled:
                tracer.emit(ftx.now, ftx.ctx.rank, "solver_iter",
                            dur=ftx.now - t0, step=step)
            if step % interval == 0:
                yield from ftx.checkpoint(step // interval, {
                    "cg.x": x.local, "cg.r": r.local, "cg.p": p.local,
                    "cg.rho": np.float64(rho), "cg.step": np.int64(step),
                })
        return {"steps": step, "residual": residual / b_norm, "x": x.local}
