"""Eigensolvers and iterative methods on the distributed spMVM substrate.

* :mod:`repro.solvers.tridiag` — the QL method with implicit shifts for the
  eigenvalues of the symmetric tridiagonal Lanczos matrix (the paper's
  ``CalcMinimumEigenVal`` step).
* :mod:`repro.solvers.lanczos` — sequential reference and distributed
  Lanczos iteration (paper Algorithm 1).
* :mod:`repro.solvers.ft_lanczos` — the paper's fault-tolerant Lanczos
  application (requires :mod:`repro.ft`).
* :mod:`repro.solvers.ft_power`, :mod:`repro.solvers.ft_cg` — two more
  fault-tolerant applications on the same machinery (the paper: "the
  concept can be applied to other applications as well").
* :mod:`repro.solvers.power`, :mod:`repro.solvers.cg` — the plain
  (non-FT) iterative methods underlying them.
"""

from repro.solvers.tridiag import ql_eigenvalues, lanczos_matrix_eigenvalues
from repro.solvers.lanczos import (
    LanczosState,
    lanczos_sequential,
    DistributedLanczos,
)
from repro.solvers.power import distributed_power_iteration
from repro.solvers.cg import distributed_cg

__all__ = [
    "ql_eigenvalues",
    "lanczos_matrix_eigenvalues",
    "LanczosState",
    "lanczos_sequential",
    "DistributedLanczos",
    "distributed_power_iteration",
    "distributed_cg",
]
