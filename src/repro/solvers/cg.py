"""Distributed conjugate gradient (SPD systems) on the spMVM substrate."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gaspi.constants import GASPI_BLOCK
from repro.spmvm.dist_vector import DistVector
from repro.spmvm.ft_hooks import CommGuard
from repro.spmvm.spmv import SpMVMEngine
from repro.spmvm.team import Team


def distributed_cg(team: Team, engine: SpMVMEngine, b_local: np.ndarray,
                   n_steps: int = 200, tol: float = 1e-10,
                   guard: Optional[CommGuard] = None,
                   comm_timeout: float = GASPI_BLOCK):
    """Generator: solve ``A x = b``; returns ``(x_local, residual, steps)``.

    Standard (unpreconditioned) CG; ``A`` must be symmetric positive
    definite.  Three reductions per step (two dots + convergence norm),
    matching textbook communication structure.
    """
    guard = guard or CommGuard()

    def vec(data):
        return DistVector(team, np.asarray(data, dtype=float).copy(),
                          guard, comm_timeout)

    x = vec(np.zeros(engine.n_local))
    r = vec(b_local)
    p = vec(b_local)
    rho = yield from r.dot(r)
    b_norm = yield from vec(b_local).norm()
    if b_norm == 0.0:
        return x.local, 0.0, 0

    steps = 0
    for step in range(n_steps):
        steps = step + 1
        ap_local = yield from engine.multiply(p.local, tag=step)
        ap = vec(ap_local)
        p_ap = yield from p.dot(ap)
        if p_ap <= 0.0:
            raise ValueError("matrix is not positive definite on this Krylov space")
        alpha = rho / p_ap
        x.axpy(alpha, p)
        r.axpy(-alpha, ap)
        rho_next = yield from r.dot(r)
        if rho_next**0.5 <= tol * b_norm:
            rho = rho_next
            break
        p = vec(r.local + (rho_next / rho) * p.local)
        rho = rho_next
    return x.local, rho**0.5, steps
