"""Distributed power iteration (largest-magnitude eigenvalue).

A second solver on the same substrate — used by the extension examples and
as an independent exerciser of the halo-exchange + reduction path.
"""

from __future__ import annotations

from typing import Optional

from repro.gaspi.constants import GASPI_BLOCK
from repro.spmvm.dist_vector import DistVector
from repro.spmvm.ft_hooks import CommGuard
from repro.spmvm.spmv import SpMVMEngine
from repro.spmvm.team import Team
from repro.solvers.lanczos import starting_vector


def distributed_power_iteration(team: Team, engine: SpMVMEngine,
                                n_steps: int = 100, tol: float = 1e-10,
                                guard: Optional[CommGuard] = None,
                                comm_timeout: float = GASPI_BLOCK):
    """Generator: returns ``(eigenvalue_estimate, steps_taken)``."""
    guard = guard or CommGuard()
    offset, _ = engine.matrix.partition().range_of(team.logical_rank)
    x = DistVector(team, starting_vector(engine.n_local, offset),
                   guard, comm_timeout)
    norm = yield from x.norm()
    x.scale(1.0 / norm)
    estimate = 0.0
    steps = 0
    for step in range(n_steps):
        y_local = yield from engine.multiply(x.local, tag=step)
        y = DistVector(team, y_local, guard, comm_timeout)
        rayleigh = yield from y.dot(x)  # x normalised: lambda ~ x.Ax
        norm = yield from y.norm()
        steps = step + 1
        if norm == 0.0:
            estimate = 0.0
            break
        x = y.scale(1.0 / norm)
        if abs(rayleigh - estimate) <= tol * max(1.0, abs(rayleigh)):
            estimate = rayleigh
            break
        estimate = rayleigh
    return estimate, steps
