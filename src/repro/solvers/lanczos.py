"""The Lanczos eigenvalue iteration (paper Algorithm 1).

``lanczos_sequential`` is the single-process reference used by tests;
:class:`DistributedLanczos` runs the identical recurrence on the spMVM
substrate — one distributed matrix-vector product, one global dot and one
global norm per step, exactly the communication pattern whose fault
tolerance the paper studies.

The solver's entire restartable state (two Lanczos vectors, the alpha/beta
coefficients and the step counter) is exposed as a checkpoint payload —
this *is* the paper's periodic checkpoint content: "two consecutive
Lanczos vectors, alpha, and beta".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gaspi.constants import GASPI_BLOCK
from repro.spmvm.csr import CSRMatrix
from repro.spmvm.dist_vector import DistVector
from repro.spmvm.ft_hooks import CommGuard
from repro.spmvm.spmv import SpMVMEngine
from repro.spmvm.team import Team
from repro.solvers.tridiag import lanczos_matrix_eigenvalues

#: below this norm the Krylov space is exhausted (lucky breakdown)
BREAKDOWN_TOL = 1e-14


def starting_vector(n: int, offset: int = 0) -> np.ndarray:
    """Deterministic, decomposition-independent start vector block.

    Entry for global index ``g`` is ``0.5 + u(g)`` with a hash-derived
    uniform draw: generic enough to overlap all eigenvectors (no accidental
    alignment with lattice symmetries, which would cause early breakdown),
    yet reproducible across any row distribution — required for
    deterministic redo-work after a recovery.
    """
    from repro.spmvm.matgen.base import hash_uniform

    g = np.arange(offset, offset + n, dtype=np.int64)
    return 0.5 + hash_uniform(g, seed=0x1A5C205)


def lanczos_sequential(matrix: CSRMatrix, n_steps: int,
                       v0: Optional[np.ndarray] = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Reference Lanczos: returns ``(alpha[0..m), beta[0..m))``.

    ``beta[k]`` is the recurrence's ``beta_{k+2}`` — the coupling produced
    *by* step ``k`` (so ``beta[:m-1]`` are the off-diagonals of ``T_m``).
    """
    n = matrix.n_rows
    v = starting_vector(n) if v0 is None else np.asarray(v0, dtype=float).copy()
    v /= np.linalg.norm(v)
    v_prev = np.zeros(n)
    beta_j = 0.0
    alphas: List[float] = []
    betas: List[float] = []
    for _ in range(n_steps):
        w = matrix.spmv(v)
        a = float(w @ v)
        w -= a * v + beta_j * v_prev
        b = float(np.linalg.norm(w))
        alphas.append(a)
        betas.append(b)
        if b < BREAKDOWN_TOL:
            break
        v_prev, v = v, w / b
        beta_j = b
    return np.array(alphas), np.array(betas)


@dataclass
class LanczosState:
    """Restartable state of one rank's share of the iteration."""

    v_prev: np.ndarray
    v_cur: np.ndarray
    alpha: List[float] = field(default_factory=list)
    beta: List[float] = field(default_factory=list)

    @property
    def step(self) -> int:
        return len(self.alpha)

    @property
    def last_beta(self) -> float:
        return self.beta[-1] if self.beta else 0.0

    @property
    def broke_down(self) -> bool:
        return bool(self.beta) and self.beta[-1] < BREAKDOWN_TOL

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, np.ndarray]:
        return {
            "lz.v_prev": self.v_prev,
            "lz.v_cur": self.v_cur,
            "lz.alpha": np.array(self.alpha),
            "lz.beta": np.array(self.beta),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, np.ndarray]) -> "LanczosState":
        return cls(
            v_prev=np.array(payload["lz.v_prev"], dtype=np.float64),
            v_cur=np.array(payload["lz.v_cur"], dtype=np.float64),
            alpha=[float(a) for a in payload["lz.alpha"]],
            beta=[float(b) for b in payload["lz.beta"]],
        )

    def eigenvalue_estimates(self) -> np.ndarray:
        """Eigenvalues of the current projected matrix ``T_j`` (QL method)."""
        return lanczos_matrix_eigenvalues(np.array(self.alpha), np.array(self.beta))

    def min_eigenvalue(self) -> float:
        est = self.eigenvalue_estimates()
        return float(est[0]) if est.size else float("nan")


class DistributedLanczos:
    """One rank's executor of the distributed Lanczos recurrence."""

    def __init__(self, team: Team, engine: SpMVMEngine,
                 state: Optional[LanczosState] = None,
                 guard: Optional[CommGuard] = None,
                 comm_timeout: float = GASPI_BLOCK,
                 time_model=None) -> None:
        self.team = team
        self.engine = engine
        self.guard = guard or CommGuard()
        self.comm_timeout = comm_timeout
        self.time_model = time_model
        if state is None:
            n_local = engine.n_local
            offset, _ = engine.matrix.partition().range_of(team.logical_rank)
            state = LanczosState(
                v_prev=np.zeros(n_local),
                v_cur=starting_vector(n_local, offset),
            )
            self._normalized = False
        else:
            self._normalized = True  # restored states are mid-iteration
        self.state = state
        # spMVM output scratch; after each step the retired v_prev buffer is
        # recycled into it, so steady-state iteration allocates nothing.
        self._w: Optional[np.ndarray] = None

    def _vec(self, data: np.ndarray) -> DistVector:
        return DistVector(self.team, data, self.guard, self.comm_timeout)

    # ------------------------------------------------------------------
    def step(self):
        """Generator: one Lanczos step (Algorithm 1's LANCZOS-STEP)."""
        from repro.sim import Sleep

        st = self.state
        if not self._normalized:
            v = self._vec(st.v_cur)
            norm = yield from v.norm()
            v.scale(1.0 / norm)
            self._normalized = True

        j = st.step
        v_cur = self._vec(st.v_cur)
        v_prev = self._vec(st.v_prev)
        scratch = self._w
        if scratch is None or scratch.shape != st.v_cur.shape:
            scratch = np.empty_like(st.v_cur)
        self._w = None
        w_local = yield from self.engine.multiply(st.v_cur, out=scratch, tag=j)
        w = self._vec(w_local)
        a = yield from w.dot(v_cur)
        w.axpy(-a, v_cur)
        w.axpy(-st.last_beta, v_prev)
        b = yield from w.norm()
        st.alpha.append(float(a))
        st.beta.append(float(b))
        if self.time_model is not None:
            yield Sleep(self.time_model.vector_ops_time(len(st.v_cur)))
        if b >= BREAKDOWN_TOL:
            np.multiply(w.local, 1.0 / b, out=w.local)
            self._w = st.v_prev  # retire the old v_prev into the scratch slot
            st.v_prev = st.v_cur
            st.v_cur = w.local
        return (float(a), float(b))

    def run(self, n_steps: int, eig_check_interval: int = 0,
            tol: float = 0.0):
        """Generator: iterate; optionally stop on min-eigenvalue stagnation.

        Returns the final :class:`LanczosState`.  With
        ``eig_check_interval > 0`` the QL method runs every that many steps
        and iteration stops early once the smallest eigenvalue moved less
        than ``tol``.
        """
        last_min: Optional[float] = None
        while self.state.step < n_steps:
            yield from self.step()
            if self.state.broke_down:
                break
            j = self.state.step
            if eig_check_interval and j % eig_check_interval == 0:
                current = self.state.min_eigenvalue()
                if last_min is not None and abs(current - last_min) <= tol:
                    break
                last_min = current
        return self.state
