"""The paper's showcase application: a fault-tolerant Lanczos eigensolver.

Sect. V restructuring, item by item:

* pre-processing (matrix generation + halo plan exchange) runs once and is
  checkpointed immediately ("each process writes a checkpoint after the
  pre-processing stage ... the rescue process is informed about the
  communicating partners") — rescues restore it instead of redoing setup;
* the periodic checkpoint holds "two consecutive Lanczos vectors, alpha,
  and beta" (plus, implicitly, the iteration count) every
  ``checkpoint_interval`` iterations (paper: 500);
* every blocking communication call checks the failure-ack flag and backs
  off into recovery (handled by the guard plumbed through the spMVM
  library and the reductions);
* after recovery, the program resumes from the agreed checkpoint version
  and redoes the lost iterations.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.ft.app import FTContext, FTProgram
from repro.spmvm.dist_matrix import DistMatrix, distribute_matrix
from repro.spmvm.matgen.base import RowGenerator
from repro.spmvm.spmv import SpMVMEngine
from repro.solvers.lanczos import DistributedLanczos, LanczosState


class FTLanczos(FTProgram):
    """Fault-tolerant Lanczos for the low-lying spectrum of a sparse matrix."""

    def __init__(
        self,
        generator: RowGenerator,
        n_steps: int,
        checkpoint_interval: Optional[int] = None,
        eig_check_interval: int = 0,
        tol: float = 0.0,
        time_model=None,
        nominal_state_bytes: Optional[int] = None,
        nominal_setup_bytes: Optional[int] = None,
        n_eigenvalues: int = 5,
    ) -> None:
        self.generator = generator
        self.n_steps = n_steps
        self.checkpoint_interval = checkpoint_interval
        self.eig_check_interval = eig_check_interval
        self.tol = tol
        self.time_model = time_model
        self.nominal_state_bytes = nominal_state_bytes
        self.nominal_setup_bytes = nominal_setup_bytes
        self.n_eigenvalues = n_eigenvalues

    # ------------------------------------------------------------------
    def _build_solver(self, ftx: FTContext, dmat: DistMatrix,
                      state: Optional[LanczosState]):
        engine = yield from SpMVMEngine.create(
            ftx.team, dmat, guard=ftx.guard,
            comm_timeout=ftx.cfg.comm_timeout,
            time_model=self.time_model,
        )
        return DistributedLanczos(
            ftx.team, engine, state=state, guard=ftx.guard,
            comm_timeout=ftx.cfg.comm_timeout, time_model=self.time_model,
        )

    def setup(self, ftx: FTContext):
        ftx.mark("setup-start")
        dmat = yield from distribute_matrix(
            ftx.team, self.generator, guard=ftx.guard,
            comm_timeout=ftx.cfg.comm_timeout,
        )
        yield from ftx.write_setup_checkpoint(
            dmat.to_payload(), self.nominal_setup_bytes
        )
        solver = yield from self._build_solver(ftx, dmat, None)
        ftx.mark("setup-done")
        return solver

    def restore(self, ftx: FTContext, state_payload: Optional[Dict[str, Any]]):
        setup_payload = yield from ftx.read_setup_checkpoint()
        if setup_payload is None:
            # no consistent setup checkpoint: redo the pre-processing
            ftx.mark("setup-redo")
            dmat = yield from distribute_matrix(
                ftx.team, self.generator, guard=ftx.guard,
                comm_timeout=ftx.cfg.comm_timeout,
            )
            yield from ftx.write_setup_checkpoint(
                dmat.to_payload(), self.nominal_setup_bytes
            )
        else:
            dmat = DistMatrix.from_payload(setup_payload)
        state = None
        if state_payload is not None:
            state = LanczosState.from_payload(state_payload)
        solver = yield from self._build_solver(ftx, dmat, state)
        ftx.mark("restored", step=state.step if state else 0)
        return solver

    def run(self, ftx: FTContext, solver: DistributedLanczos):
        interval = self.checkpoint_interval or ftx.cfg.checkpoint_interval
        last_min: Optional[float] = None
        tracer = ftx.ctx.tracer
        while solver.state.step < self.n_steps:
            t0 = ftx.now
            yield from solver.step()
            step = solver.state.step
            if tracer.enabled:
                tracer.emit(ftx.now, ftx.ctx.rank, "solver_iter",
                            dur=ftx.now - t0, step=step)
            if step % interval == 0:
                yield from ftx.checkpoint(
                    step // interval, solver.state.to_payload(),
                    self.nominal_state_bytes,
                )
            if solver.state.broke_down:
                break
            if self.eig_check_interval and step % self.eig_check_interval == 0:
                current = solver.state.min_eigenvalue()
                if last_min is not None and abs(current - last_min) <= self.tol:
                    break
                last_min = current
        estimates = solver.state.eigenvalue_estimates()
        return {
            "steps": solver.state.step,
            "min_eigenvalue": float(estimates[0]) if estimates.size else None,
            "eigenvalues": [float(v) for v in estimates[: self.n_eigenvalues]],
            "alpha": list(solver.state.alpha),
            "beta": list(solver.state.beta),
        }
