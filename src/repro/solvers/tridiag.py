"""QL method with implicit shifts for symmetric tridiagonal eigenvalues.

This is the classic ``tql1`` algorithm (Bowdler/Martin/Reinsch/Wilkinson;
the paper: "the approximated minimum eigenvalues are determined using the
QL method").  Eigenvalues only — the Lanczos driver never needs the
eigenvectors of the projected matrix.
"""

from __future__ import annotations

import math

import numpy as np


class QLConvergenceError(RuntimeError):
    """The QL iteration failed to deflate within the iteration budget."""


def ql_eigenvalues(diag: np.ndarray, offdiag: np.ndarray,
                   max_sweeps: int = 64) -> np.ndarray:
    """Eigenvalues of the symmetric tridiagonal matrix, ascending.

    ``diag`` has ``n`` entries, ``offdiag`` the ``n-1`` sub-diagonal ones.
    """
    d = np.asarray(diag, dtype=np.float64).copy()
    n = len(d)
    if n == 0:
        return d
    e = np.zeros(n)
    off = np.asarray(offdiag, dtype=np.float64)
    if len(off) not in (max(n - 1, 0), n):
        raise ValueError(
            f"offdiag must have n-1 (={n - 1}) entries, got {len(off)}"
        )
    e[: n - 1] = off[: n - 1]

    eps = np.finfo(np.float64).eps
    for l in range(n):
        sweeps = 0
        while True:
            # find the first deflatable sub-block boundary m >= l
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(e[m]) <= eps * dd:
                    break
                m += 1
            if m == l:
                break  # d[l] converged
            sweeps += 1
            if sweeps > max_sweeps:
                raise QLConvergenceError(
                    f"eigenvalue {l} not converged after {max_sweeps} sweeps"
                )
            # implicit Wilkinson shift from the leading 2x2
            g = (d[l + 1] - d[l]) / (2.0 * e[l])
            r = math.hypot(g, 1.0)
            g = d[m] - d[l] + e[l] / (g + math.copysign(r, g))
            s = c = 1.0
            p = 0.0
            underflow = False
            for i in range(m - 1, l - 1, -1):
                f = s * e[i]
                b = c * e[i]
                r = math.hypot(f, g)
                e[i + 1] = r
                if r == 0.0:
                    # recover from underflow: skip the rotation
                    d[i + 1] -= p
                    e[m] = 0.0
                    underflow = True
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * b
                p = s * r
                d[i + 1] = g + p
                g = c * r - b
            if underflow:
                continue
            d[l] -= p
            e[l] = g
            e[m] = 0.0
    return np.sort(d)


def lanczos_matrix_eigenvalues(alpha: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """Eigenvalues of the Lanczos tridiagonal ``T_j``, ascending.

    ``alpha`` are the j diagonal entries, ``beta`` the j-1 couplings
    (``beta[0]`` couples steps 1 and 2); a trailing ``beta`` entry produced
    by the recurrence (``beta_{j+1}``) is ignored if present.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    j = len(alpha)
    if j == 0:
        return alpha
    return ql_eigenvalues(alpha, beta[: j - 1])
