"""A second fault-tolerant application: power iteration.

The paper closes by noting "the concept can be applied to other
applications ... as well"; this program demonstrates exactly that — the
same FD / recovery / neighbor-checkpoint machinery wrapped around a
different solver with different state (one vector + the running Rayleigh
estimate instead of the Lanczos pair + coefficients).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.ft.app import FTContext, FTProgram
from repro.spmvm.dist_matrix import DistMatrix, distribute_matrix
from repro.spmvm.dist_vector import DistVector
from repro.spmvm.matgen.base import RowGenerator
from repro.spmvm.spmv import SpMVMEngine
from repro.solvers.lanczos import starting_vector


class FTPowerIteration(FTProgram):
    """Fault-tolerant dominant-eigenvalue solver."""

    def __init__(self, generator: RowGenerator, n_steps: int,
                 checkpoint_interval: Optional[int] = None,
                 tol: float = 0.0, time_model=None,
                 nominal_state_bytes: Optional[int] = None) -> None:
        self.generator = generator
        self.n_steps = n_steps
        self.checkpoint_interval = checkpoint_interval
        self.tol = tol
        self.time_model = time_model
        self.nominal_state_bytes = nominal_state_bytes

    # ------------------------------------------------------------------
    def _build(self, ftx: FTContext, dmat: DistMatrix, state: Dict[str, Any]):
        engine = yield from SpMVMEngine.create(
            ftx.team, dmat, guard=ftx.guard,
            comm_timeout=ftx.cfg.comm_timeout, time_model=self.time_model,
        )
        return {"engine": engine, **state}

    def _fresh_state(self, ftx: FTContext, dmat: DistMatrix) -> Dict[str, Any]:
        offset, _ = dmat.partition().range_of(ftx.team.logical_rank)
        return {
            "x": starting_vector(dmat.n_local, offset),
            "step": 0,
            "estimate": 0.0,
            "normalized": False,
        }

    def setup(self, ftx: FTContext):
        dmat = yield from distribute_matrix(
            ftx.team, self.generator, guard=ftx.guard,
            comm_timeout=ftx.cfg.comm_timeout,
        )
        yield from ftx.write_setup_checkpoint(dmat.to_payload())
        return (yield from self._build(ftx, dmat, self._fresh_state(ftx, dmat)))

    def restore(self, ftx: FTContext, state_payload: Optional[Dict[str, Any]]):
        setup_payload = yield from ftx.read_setup_checkpoint()
        if setup_payload is None:
            dmat = yield from distribute_matrix(
                ftx.team, self.generator, guard=ftx.guard,
                comm_timeout=ftx.cfg.comm_timeout,
            )
            yield from ftx.write_setup_checkpoint(dmat.to_payload())
        else:
            dmat = DistMatrix.from_payload(setup_payload)
        if state_payload is None:
            state = self._fresh_state(ftx, dmat)
        else:
            state = {
                "x": np.array(state_payload["pw.x"], dtype=np.float64),
                "step": int(state_payload["pw.step"]),
                "estimate": float(state_payload["pw.estimate"]),
                "normalized": True,
            }
        return (yield from self._build(ftx, dmat, state))

    def run(self, ftx: FTContext, work: Dict[str, Any]):
        engine: SpMVMEngine = work["engine"]
        interval = self.checkpoint_interval or ftx.cfg.checkpoint_interval
        x = DistVector(ftx.team, work["x"], ftx.guard, ftx.cfg.comm_timeout)
        estimate = work["estimate"]
        step = work["step"]

        if not work["normalized"]:
            norm = yield from x.norm()
            x.scale(1.0 / norm)

        # ping-pong pair: y receives the spMVM, then swaps roles with x
        y = DistVector(ftx.team, np.empty(engine.n_local), ftx.guard,
                       ftx.cfg.comm_timeout)
        tracer = ftx.ctx.tracer
        while step < self.n_steps:
            t0 = ftx.now
            yield from engine.multiply(x.local, out=y.local, tag=step)
            rayleigh = yield from y.dot(x)
            norm = yield from y.norm()
            step += 1
            ftx.count("iterations")
            if tracer.enabled:
                tracer.emit(ftx.now, ftx.ctx.rank, "solver_iter",
                            dur=ftx.now - t0, step=step)
            if norm == 0.0:
                estimate = 0.0
                break
            y.scale(1.0 / norm)
            x, y = y, x
            converged = (
                self.tol > 0.0
                and abs(rayleigh - estimate) <= self.tol * max(1.0, abs(rayleigh))
            )
            estimate = rayleigh
            if step % interval == 0:
                yield from ftx.checkpoint(
                    step // interval,
                    {
                        "pw.x": x.local,
                        "pw.step": np.int64(step),
                        "pw.estimate": np.float64(estimate),
                    },
                    self.nominal_state_bytes,
                )
            if converged:
                break
        return {"steps": step, "eigenvalue": float(estimate)}
