"""Performance model of the paper's testbed (LiMa @ RRZE).

Absolute times in the reproduction come from this package and nowhere
else: a machine description (:mod:`machine`), a roofline kernel-time model
(:mod:`roofline`) and the calibration constants that pin the simulated
timings to the paper's measured anchors (:mod:`calibration`).
"""

from repro.perfmodel.machine import LiMaNode, LIMA
from repro.perfmodel.roofline import RooflineModel
from repro.perfmodel.calibration import (
    PAPER_BASELINE_RUNTIME,
    PAPER_ITERATIONS,
    PAPER_ITERATION_TIME,
    CalibratedTimeModel,
    paper_time_model,
)

__all__ = [
    "LiMaNode",
    "LIMA",
    "RooflineModel",
    "PAPER_BASELINE_RUNTIME",
    "PAPER_ITERATIONS",
    "PAPER_ITERATION_TIME",
    "CalibratedTimeModel",
    "paper_time_model",
]
