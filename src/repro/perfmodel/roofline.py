"""Roofline time model for the spMVM-dominated Lanczos iteration.

spMVM is memory-bound: per non-zero it streams a value (8 B) + column
index (4 B) and gathers one RHS entry; per row it streams the row pointer
and writes the result.  The Lanczos step adds a handful of vector sweeps.
An ``efficiency`` factor (0 < eff <= 1) absorbs everything the clean
roofline cannot see (NUMA placement, short rows, TLB, intra-node
synchronisation); it is fitted once against the paper's measured baseline
in :mod:`repro.perfmodel.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.machine import LiMaNode, LIMA

#: bytes moved per CSR non-zero: value (8) + column index (4) + RHS gather
#: amortised to ~8 effective bytes under reasonable cache reuse
BYTES_PER_NNZ = 20.0
#: bytes per row: row pointer + result write(+read)
BYTES_PER_ROW = 20.0
#: Lanczos vector traffic per row per step: w, v_j, v_{j-1} updates, dots
BYTES_PER_ROW_VECOPS = 7 * 8.0


@dataclass
class RooflineModel:
    """Kernel-time estimates for one rank living on one node."""

    node: LiMaNode = LIMA
    #: fraction of roofline bandwidth actually attained
    efficiency: float = 1.0
    #: ranks sharing the node's memory bandwidth
    ranks_per_node: int = 1

    @property
    def _bandwidth(self) -> float:
        return self.node.memory_bandwidth * self.efficiency / self.ranks_per_node

    def spmv_time(self, nnz_local: int, rows_local: int) -> float:
        """Seconds for one local spMVM kernel invocation."""
        traffic = nnz_local * BYTES_PER_NNZ + rows_local * BYTES_PER_ROW
        return traffic / self._bandwidth

    def vector_ops_time(self, rows_local: int) -> float:
        """Seconds for the non-spMVM vector work of one Lanczos step."""
        return rows_local * BYTES_PER_ROW_VECOPS / self._bandwidth

    def iteration_time(self, nnz_local: int, rows_local: int) -> float:
        return self.spmv_time(nnz_local, rows_local) + self.vector_ops_time(rows_local)

    def checkpoint_pack_time(self, nbytes: int) -> float:
        """Copy cost of assembling a checkpoint payload in memory."""
        return 2.0 * nbytes / self._bandwidth
