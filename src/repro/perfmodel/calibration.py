"""Calibration: pin the model's absolute times to the paper's anchors.

Measured anchors from the paper (Sect. VI):

* baseline runtime of the 3500-iteration Lanczos run on 256 nodes is
  ~1450 s (Figure 4, 'w/o HC, w/o CP' bar) → **0.414 s per iteration**;
* FD ping cost ~1 ms per process, plus a small per-scan setup offset
  fitted from Table I (scan(8) = 10 ms, scan(256) = 255 ms);
* failure detection + acknowledgment ≈ 5.3 s flat in node count with the
  3 s scan period → transport error-detection timeout 3.5 s;
* re-initialisation ≈ 10 s, dominated by the blocking group commit
  → 27 ms/rank commit cost.

The pure roofline predicts a far faster iteration than measured (the
paper's runs communicate large halos and run 12 threads/process with
imperfect scaling, none of which the clean roofline sees), so the
iteration-time anchor is applied as an explicit efficiency fit — the
standard way to reconcile a first-principles model with a measured
machine.  All shape results (scaling, decompositions, crossovers) are
insensitive to this scalar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.roofline import RooflineModel

#: Figure 4 baseline ('w/o HC, w/o CP'), seconds
PAPER_BASELINE_RUNTIME = 1450.0
#: fixed iteration count used for benchmarking (paper Sect. VI)
PAPER_ITERATIONS = 3500
#: derived per-iteration anchor
PAPER_ITERATION_TIME = PAPER_BASELINE_RUNTIME / PAPER_ITERATIONS

#: Table I fit: scan ~ setup + 1 ms/process
PING_SCAN_SETUP = 2.0e-3
PING_COST = 1.0e-3

#: paper's global checkpoint volume (two Lanczos vectors + coefficients)
PAPER_CHECKPOINT_BYTES = int(1.9e9)
#: paper workload dimensions
PAPER_MATRIX_ROWS = 120_000_000
PAPER_MATRIX_NNZ = 1_500_000_000
PAPER_WORKERS = 256


@dataclass
class CalibratedTimeModel:
    """A time model that reproduces a target per-iteration time exactly.

    Splits the anchored iteration time between the spMVM and the vector
    operations in the roofline's predicted proportion, then scales both so
    their sum matches the anchor for the *calibration* problem size; other
    problem sizes scale linearly with their roofline estimate.
    """

    roofline: RooflineModel
    scale: float

    @classmethod
    def fit(cls, nnz_local: int, rows_local: int,
            target_iteration_time: float,
            roofline: RooflineModel = None) -> "CalibratedTimeModel":
        roofline = roofline or RooflineModel()
        predicted = roofline.iteration_time(nnz_local, rows_local)
        return cls(roofline=roofline, scale=target_iteration_time / predicted)

    def spmv_time(self, nnz_local: int, rows_local: int) -> float:
        return self.scale * self.roofline.spmv_time(nnz_local, rows_local)

    def vector_ops_time(self, rows_local: int) -> float:
        return self.scale * self.roofline.vector_ops_time(rows_local)

    def iteration_time(self, nnz_local: int, rows_local: int) -> float:
        return self.spmv_time(nnz_local, rows_local) + \
            self.vector_ops_time(rows_local)


def paper_time_model(n_workers: int = PAPER_WORKERS) -> CalibratedTimeModel:
    """Time model anchored to the paper's 256-node baseline."""
    rows_local = PAPER_MATRIX_ROWS // PAPER_WORKERS
    nnz_local = PAPER_MATRIX_NNZ // PAPER_WORKERS
    model = CalibratedTimeModel.fit(nnz_local, rows_local, PAPER_ITERATION_TIME)
    return model
