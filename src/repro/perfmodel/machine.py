"""Machine description of the paper's testbed.

LiMa at RRZE (paper Sect. V): two Intel Xeon X5650 "Westmere" chips per
node at 2.66 GHz (12 cores), 24 GB RAM in two NUMA domains, Mellanox QDR
InfiniBand.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LiMaNode:
    """Per-node hardware characteristics used by the roofline model."""

    name: str = "LiMa (2x Xeon X5650 Westmere)"
    cores: int = 12
    clock_hz: float = 2.66e9
    #: aggregate attainable memory bandwidth (both NUMA domains, stream-like)
    memory_bandwidth: float = 40.0e9
    #: double-precision peak (12 cores x 4 flops/cycle)
    peak_flops: float = 12 * 4 * 2.66e9
    memory_bytes: int = 24 * 2**30
    #: QDR InfiniBand
    network_bandwidth: float = 3.2e9
    network_latency: float = 1.3e-6


#: the default testbed node
LIMA = LiMaNode()
