"""Resource planning: spare-count and checkpoint-interval calculators.

The paper notes that "the calculation of the optimal number of extra
nodes for a particular case depends on several factors including job size,
job duration, the MTTF of the system, etc. and is out of scope for this
paper" — this module supplies that calculation, plus the classical
Young/Daly checkpoint-interval optimum, both validated against the
simulator in the test suite.

Model: node failures are independent Poisson processes, so the number of
failures in a job of duration ``T`` on ``n`` nodes is Poisson with mean
``n * T / MTTF_node``.  A job survives iff failures ≤ available rescues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def expected_failures(n_nodes: int, duration: float, mttf_node: float) -> float:
    """Mean number of node failures during the job."""
    if mttf_node <= 0:
        raise ValueError("mttf_node must be positive")
    if duration < 0 or n_nodes < 0:
        raise ValueError("duration and n_nodes must be non-negative")
    return n_nodes * duration / mttf_node


def poisson_cdf(k: int, mean: float) -> float:
    """P[X <= k] for X ~ Poisson(mean)."""
    if k < 0:
        return 0.0
    term = math.exp(-mean)
    total = term
    for i in range(1, k + 1):
        term *= mean / i
        total += term
    return min(1.0, total)


def binomial_cdf(k: int, n: int, p: float) -> float:
    """P[X <= k] for X ~ Binomial(n, p)."""
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    total = 0.0
    term = (1.0 - p) ** n  # P[X = 0]
    total = term
    for i in range(1, k + 1):
        term *= (n - i + 1) / i * (p / (1.0 - p))
        total += term
    return min(1.0, total)


def survival_probability(n_workers: int, n_spares: int, duration: float,
                         mttf_node: float) -> float:
    """P[job completes] with the paper's scheme.

    ``n_spares`` includes the FD; the FD joins as the final rescue, so the
    recoverable failure budget is ``n_spares`` (paper Fig. 3).  Spare
    nodes can fail too — conservatively they count into the failure pool.

    Each node fails at most once during the job (exponential clock cut at
    the horizon), so the failure count is Binomial(n, 1 - e^{-T/M}); the
    Poisson form is its T << M limit.
    """
    if mttf_node <= 0:
        raise ValueError("mttf_node must be positive")
    n_total = n_workers + n_spares
    p_fail = 1.0 - math.exp(-duration / mttf_node)
    return binomial_cdf(n_spares, n_total, p_fail)


def required_spares(n_workers: int, duration: float, mttf_node: float,
                    target_survival: float = 0.99,
                    max_spares: int = 10_000) -> int:
    """Smallest spare count reaching ``target_survival``.

    Accounts for the spares' own failure rate (adding spares adds nodes).
    """
    if not (0.0 < target_survival < 1.0):
        raise ValueError("target_survival must be in (0, 1)")
    for n_spares in range(1, max_spares + 1):
        if survival_probability(n_workers, n_spares, duration,
                                mttf_node) >= target_survival:
            return n_spares
    raise ValueError(
        f"no spare count up to {max_spares} reaches {target_survival}"
    )


# ----------------------------------------------------------------------
# checkpoint interval (Young / Daly)
# ----------------------------------------------------------------------
def daly_interval(checkpoint_cost: float, mttf_job: float) -> float:
    """Young/Daly optimum ``sqrt(2 * C * M)`` (first order), in seconds.

    ``mttf_job`` is the MTTF of the *job* (system MTTF / node count).
    """
    if checkpoint_cost < 0 or mttf_job <= 0:
        raise ValueError("need checkpoint_cost >= 0 and mttf_job > 0")
    return math.sqrt(2.0 * checkpoint_cost * mttf_job)


def expected_overhead_fraction(interval: float, checkpoint_cost: float,
                               mttf_job: float,
                               recovery_cost: float = 0.0) -> float:
    """First-order expected runtime overhead of a checkpointing scheme.

    Per interval of useful work ``tau`` the job pays ``C`` (checkpoint)
    always and, with probability ``(tau + C)/M``, a failure costing
    ``R + tau/2`` (recovery plus mean redo).
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    per_interval = checkpoint_cost + (interval + checkpoint_cost) / mttf_job \
        * (recovery_cost + interval / 2.0)
    return per_interval / interval


@dataclass
class SparePlan:
    """Recommendation produced by :func:`plan_job`."""

    n_workers: int
    n_spares: int
    survival_probability: float
    expected_failures: float
    checkpoint_interval: float
    expected_overhead_fraction: float


def plan_job(n_workers: int, duration: float, mttf_node: float,
             checkpoint_cost: float, recovery_cost: float = 17.0,
             target_survival: float = 0.99) -> SparePlan:
    """One-stop planner: spares + checkpoint interval for a job."""
    n_spares = required_spares(n_workers, duration, mttf_node,
                               target_survival)
    mttf_job = mttf_node / (n_workers + n_spares)
    interval = daly_interval(checkpoint_cost, mttf_job)
    return SparePlan(
        n_workers=n_workers,
        n_spares=n_spares,
        survival_probability=survival_probability(
            n_workers, n_spares, duration, mttf_node),
        expected_failures=expected_failures(
            n_workers + n_spares, duration, mttf_node),
        checkpoint_interval=interval,
        expected_overhead_fraction=expected_overhead_fraction(
            interval, checkpoint_cost, mttf_job, recovery_cost),
    )
