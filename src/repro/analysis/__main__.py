"""``python -m repro.analysis`` — the ftlint static-analysis CLI."""

import sys

from repro.analysis.ftlint.cli import main

if __name__ == "__main__":
    sys.exit(main())
