"""Post-run analysis: timelines and recovery reports for FT runs."""

from repro.analysis.timeline import (
    TimelineEvent,
    collect_timeline,
    render_timeline,
    recovery_report,
)
from repro.analysis.planning import (
    SparePlan,
    daly_interval,
    expected_failures,
    expected_overhead_fraction,
    plan_job,
    required_spares,
    survival_probability,
)

__all__ = [
    "TimelineEvent",
    "collect_timeline",
    "render_timeline",
    "recovery_report",
    "SparePlan",
    "daly_interval",
    "expected_failures",
    "expected_overhead_fraction",
    "plan_job",
    "required_spares",
    "survival_probability",
]
