"""Unified event timeline of a fault-tolerant run.

Merges three event sources into one chronological view:

* fault injections (from the armed :class:`FaultPlan`),
* FD-side detection/acknowledgment events (:class:`FDStats`),
* per-rank application marks (setup, checkpoints, failure-acks,
  recoveries, restores) from the workers' ``timeline`` records.

``recovery_report`` condenses that into the per-epoch cost breakdown
(inject → detect → acknowledge → group rebuilt → restored) that the
paper's Sect. VI discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ft.app import FTRunResult


@dataclass(frozen=True)
class TimelineEvent:
    """One timestamped event with its origin."""

    t: float
    source: str   # "fault", "fd", or "logical-<rank>"
    label: str
    info: Dict = field(default_factory=dict, compare=False)

    def format(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.info.items()))
        return f"{self.t:10.3f}s  {self.source:<12} {self.label:<18} {extras}"


def collect_timeline(result: FTRunResult,
                     include_checkpoints: bool = False) -> List[TimelineEvent]:
    """All events of the run, chronologically sorted."""
    events: List[TimelineEvent] = []
    for fault in result.run.injected:
        events.append(TimelineEvent(
            t=fault.time, source="fault", label=type(fault).__name__,
            info={"target": getattr(fault, "rank", getattr(fault, "node_id", None))},
        ))
    stats = result.fd_stats
    if stats is not None:
        for det in stats.detections:
            events.append(TimelineEvent(
                t=det.t_detected, source="fd", label="detected",
                info={"epoch": det.epoch, "failed": det.failed},
            ))
            events.append(TimelineEvent(
                t=det.t_acknowledged, source="fd", label="acknowledged",
                info={"epoch": det.epoch, "rescues": det.rescues},
            ))
    for logical, worker in sorted(result.worker_results().items()):
        for t, label, info in worker.get("timeline", []):
            if label == "checkpoint" and not include_checkpoints:
                continue
            events.append(TimelineEvent(
                t=t, source=f"logical-{logical}", label=label, info=dict(info),
            ))
        events.append(TimelineEvent(
            t=worker["t_done"], source=f"logical-{logical}", label="done",
            info={"status": worker["status"]},
        ))
    return sorted(events, key=lambda e: (e.t, e.source, e.label))


def render_timeline(events: List[TimelineEvent]) -> str:
    """Chronological text rendering of a timeline."""
    lines = [f"{'time':>10}   {'source':<12} {'event':<18} details",
             "-" * 64]
    lines.extend(event.format() for event in events)
    return "\n".join(lines)


@dataclass
class RecoveryEpoch:
    """Cost breakdown of one recovery epoch."""

    epoch: int
    failed: tuple
    rescues: tuple
    t_inject: Optional[float]
    t_detected: float
    t_acknowledged: float
    t_restored: Optional[float]

    @property
    def detection_latency(self) -> Optional[float]:
        if self.t_inject is None:
            return None
        return self.t_detected - self.t_inject

    @property
    def reinit_latency(self) -> Optional[float]:
        if self.t_restored is None:
            return None
        return self.t_restored - self.t_acknowledged


def recovery_epochs(result: FTRunResult) -> List[RecoveryEpoch]:
    """Per-epoch recovery summaries (empty if the run was failure-free)."""
    stats = result.fd_stats
    if stats is None or not stats.detections:
        return []
    injects = sorted(f.time for f in result.run.injected)
    restores: Dict[int, List[float]] = {}
    for worker in result.worker_results().values():
        epoch = None
        for t, label, info in worker.get("timeline", []):
            if label in ("failure-ack", "recovered"):
                epoch = info.get("epoch")
            elif label == "restored" and epoch is not None:
                restores.setdefault(epoch, []).append(t)
                epoch = None

    epochs: List[RecoveryEpoch] = []
    for i, det in enumerate(stats.detections):
        done = restores.get(det.epoch, [])
        epochs.append(RecoveryEpoch(
            epoch=det.epoch,
            failed=det.failed,
            rescues=det.rescues,
            t_inject=injects[i] if i < len(injects) else None,
            t_detected=det.t_detected,
            t_acknowledged=det.t_acknowledged,
            t_restored=max(done) if done else None,
        ))
    return epochs


def recovery_report(result: FTRunResult) -> str:
    """Human-readable per-epoch recovery cost report."""
    epochs = recovery_epochs(result)
    if not epochs:
        return "failure-free run: no recoveries"
    lines = []
    for e in epochs:
        lines.append(f"epoch {e.epoch}: failed={e.failed} rescues={e.rescues}")
        if e.t_inject is not None:
            lines.append(f"  injected     t={e.t_inject:9.3f}s")
        lines.append(f"  detected     t={e.t_detected:9.3f}s"
                     + (f"  (+{e.detection_latency:.3f}s after injection)"
                        if e.detection_latency is not None else ""))
        lines.append(f"  acknowledged t={e.t_acknowledged:9.3f}s")
        if e.t_restored is not None:
            lines.append(f"  restored     t={e.t_restored:9.3f}s"
                         f"  (re-init {e.reinit_latency:.3f}s)")
    return "\n".join(lines)
