"""The ftlint command line.

::

    python tools/ftlint.py src tests                  # default: fail on new
    python tools/ftlint.py src --format json          # machine-readable
    python tools/ftlint.py src --format sarif         # code-scanning upload
    python tools/ftlint.py src --fail-on any          # ignore the baseline
    python tools/ftlint.py src tests --write-baseline # regenerate baseline
    python tools/ftlint.py --write-manifest           # capability manifest
    python tools/ftlint.py --check-manifest           # FT011 drift gate
    python tools/ftlint.py --list-rules

Exit status: 0 clean, 1 findings per ``--fail-on`` policy, 2 bad usage.
A ``PARSE`` pseudo-finding (unparseable file) always fails.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.ftlint import rules as _rules  # noqa: F401  (registers)
from repro.analysis.ftlint import flowrules as _flowrules  # noqa: F401
from repro.analysis.ftlint import manifest as _manifest  # noqa: F401
from repro.analysis.ftlint.baseline import (
    Baseline, load_baseline, split_by_baseline, write_baseline,
)
from repro.analysis.ftlint.core import all_rules, analyze_paths
from repro.analysis.ftlint.manifest import (
    check_manifest, write_manifest,
)
from repro.analysis.ftlint.reporters import (
    render_human, render_json, render_rule_list, render_sarif,
)

DEFAULT_BASELINE = ".ftlint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ftlint",
        description=(
            "protocol- and determinism-aware static analysis for the "
            "GASPI fault-tolerance reproduction (rules FT001-FT011; "
            "see ANALYSIS.md)"
        ),
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze")
    parser.add_argument("--format", choices=("human", "json", "sarif"),
                        default="human", help="report format")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             f"if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the new baseline")
    parser.add_argument("--fail-on", choices=("any", "new"), default="new",
                        help="fail on all findings, or only on findings "
                             "absent from the baseline (default: new)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also list baselined findings (human format)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe the registered rules and exit")
    parser.add_argument("--write-manifest", action="store_true",
                        help="regenerate capability_manifest.json from the "
                             "tree and exit")
    parser.add_argument("--check-manifest", action="store_true",
                        help="fail if capability_manifest.json drifted from "
                             "the tree (FT011's CI gate)")
    parser.add_argument("--root", default=".", metavar="DIR",
                        help="repository root for the capability manifest "
                             "(default: .)")
    return parser


def _pick_rules(select: Optional[str], ignore: Optional[str]):
    chosen = all_rules()
    if select:
        wanted = {r.strip().upper() for r in select.split(",") if r.strip()}
        unknown = wanted - {rule.id for rule in chosen}
        if unknown:
            raise SystemExit(
                f"ftlint: unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        chosen = [rule for rule in chosen if rule.id in wanted]
    if ignore:
        dropped = {r.strip().upper() for r in ignore.split(",") if r.strip()}
        chosen = [rule for rule in chosen if rule.id not in dropped]
    return chosen


def _resolve_baseline(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE)
    return default if default.exists() or args.write_baseline else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0
    if args.write_manifest:
        target = write_manifest(Path(args.root))
        print(f"ftlint: wrote {target}")
        return 0
    if args.check_manifest:
        drift = check_manifest(Path(args.root))
        for line in drift:
            print(f"ftlint: manifest drift: {line}", file=sys.stderr)
        if drift:
            print("ftlint: capability_manifest.json is out of date — run "
                  "ftlint --write-manifest and commit the diff",
                  file=sys.stderr)
            return 1
        print("ftlint: capability manifest is current")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("ftlint: error: no paths given", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"ftlint: error: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    try:
        selected = _pick_rules(args.select, args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    result = analyze_paths(args.paths, rules=selected)
    parse_errors = [f for f in result.findings if f.rule == "PARSE"]

    baseline_path = _resolve_baseline(args)
    if args.write_baseline:
        if baseline_path is None:
            baseline_path = Path(DEFAULT_BASELINE)
        clean = [f for f in result.findings if f.rule != "PARSE"]
        n = write_baseline(baseline_path, clean)
        print(f"ftlint: wrote {n} baseline entr"
              f"{'ies' if n != 1 else 'y'} "
              f"({len(clean)} finding{'s' if len(clean) != 1 else ''}) "
              f"to {baseline_path}")
        return 0 if not parse_errors else 1

    baseline = Baseline()
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, KeyError, OSError) as exc:
            print(f"ftlint: error: cannot read baseline "
                  f"{baseline_path}: {exc}", file=sys.stderr)
            return 2

    new, baselined, stale = split_by_baseline(result.findings, baseline)

    if args.format == "json":
        print(render_json(new, baselined, stale, result.n_files))
    elif args.format == "sarif":
        print(render_sarif(new, baselined))
    else:
        print(render_human(new, baselined, stale, result.n_files,
                           show_baselined=args.show_baselined))

    if parse_errors:
        return 1
    if args.fail_on == "any":
        return 1 if (new or baselined) else 0
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via tools/ftlint.py
    sys.exit(main())
