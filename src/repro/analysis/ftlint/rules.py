"""The six domain rules (FT001–FT006).

Each rule encodes one invariant the paper (or the DES reproduction of it)
relies on; ``ANALYSIS.md`` maps every rule to its paper anchor.  Scope is
path-based: worker/solver code for the communication rules, sim paths for
determinism, the whole tree for hygiene rules — tests are only subject to
the rules whose scope explicitly includes them.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.ftlint.core import FileContext, Finding, Rule, register

# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------


def _attr_name(func: ast.AST) -> Optional[str]:
    """``x.y.z(...)`` -> ``"z"``; bare ``f(...)`` -> ``"f"``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _receiver_chain(func: ast.AST) -> str:
    """``self.ctx.wait`` -> ``"self.ctx"`` (best-effort dotted receiver)."""
    if not isinstance(func, ast.Attribute):
        return ""
    parts: List[str] = []
    cur: ast.AST = func.value
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    return ".".join(reversed(parts))


def _path_in(display_path: str, prefixes: Sequence[str]) -> bool:
    return any(prefix in display_path for prefix in prefixes)


def _walk_within(node: ast.AST) -> Iterator[ast.AST]:
    yield from ast.walk(node)


_HEALTH_CHECKS = {"assert_healthy", "check_failure"}


def _contains_health_check(node: ast.AST) -> bool:
    """Does any ``*.assert_healthy()`` / ``*.check_failure()`` call occur
    anywhere inside ``node``?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _attr_name(sub.func) in _HEALTH_CHECKS:
            return True
    return False


def _health_check_before(func_node: ast.AST, lineno: int) -> bool:
    """A health check strictly above ``lineno`` inside ``func_node``?"""
    for sub in ast.walk(func_node):
        if (isinstance(sub, ast.Call)
                and _attr_name(sub.func) in _HEALTH_CHECKS
                and getattr(sub, "lineno", lineno) < lineno):
            return True
    return False


def _is_infinite_timeout(node: ast.AST) -> bool:
    """Conservatively: GASPI_BLOCK / math.inf / float('inf') / None."""
    if isinstance(node, ast.Constant):
        return node.value is None or node.value == float("inf")
    name = _attr_name(node)
    if name in ("GASPI_BLOCK", "inf"):
        return True
    if isinstance(node, ast.Call) and _attr_name(node.func) == "float":
        arg = node.args[0] if node.args else None
        return (isinstance(arg, ast.Constant) and
                str(arg.value).lower() in ("inf", "infinity"))
    return False


# ----------------------------------------------------------------------
# FT001 — the paper's pre-communication health check
# ----------------------------------------------------------------------

#: blocking generator entry points, keyed by the positional index of
#: their ``timeout`` parameter (None = has no timeout parameter)
_BLOCKING_TIMEOUT_POS = {
    "wait": 1,
    "barrier": 1,
    "allreduce": 3,
    "notify_waitsome": 3,
    "passive_receive": 0,
    "group_commit": 1,
    "recv": 0,
    "get": 0,
}

#: yielded request objects that park the process, timeout positional index
_BLOCKING_REQUESTS = {
    "WaitEvent": 1,
    "ChannelGet": 1,
}


def _explicit_timeout(call: ast.Call, pos: Optional[int]) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == "timeout":
            return kw.value
    if pos is not None and len(call.args) > pos:
        return call.args[pos]
    return None


@register
class FT001PreCommCheck(Rule):
    """Blocking GASPI calls in worker/solver code must honour the
    local health flag — the paper's zero-overhead pre-communication
    check — or carry a finite timeout outside unbounded retry loops."""

    id = "FT001"
    title = "blocking call without health-flag check"
    rationale = (
        "paper §IV: each blocking communication call checks the local "
        "failure-acknowledgment flag; an unguarded blocking call (or an "
        "unguarded while-retry around a timed one) can hang past a failure"
    )

    _SCOPE = ("src/repro/ft/", "src/repro/spmvm/", "src/repro/solvers/",
              "src/repro/workloads/", "src/repro/checkpoint/",
              "src/repro/experiments/")
    #: the FD process is the health authority being consulted — it cannot
    #: guard on itself
    _EXEMPT = ("ft/detector.py",)

    def applies_to(self, display_path: str) -> bool:
        return (_path_in(display_path, self._SCOPE)
                and not _path_in(display_path, self._EXEMPT))

    # ------------------------------------------------------------------
    def _blocking_call(self, node: ast.AST) -> Optional[Tuple[ast.Call, str, Optional[int]]]:
        """Recognise a blocking construct; returns (call, name, timeout_pos)."""
        if isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call):
            call = node.value
            name = _attr_name(call.func)
            if name in _BLOCKING_TIMEOUT_POS and isinstance(call.func, ast.Attribute):
                return call, name, _BLOCKING_TIMEOUT_POS[name]
        if isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
            call = node.value
            name = _attr_name(call.func)
            if name in _BLOCKING_REQUESTS:
                return call, name, _BLOCKING_REQUESTS[name]
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            found = self._blocking_call(node)
            if found is None:
                continue
            call, name, timeout_pos = found
            func = ctx.enclosing_function(node)
            if func is None:
                continue
            # innermost enclosing loop within the function
            loop: Optional[ast.AST] = None
            for anc in ctx.ancestors(node):
                if isinstance(anc, (ast.While, ast.For)):
                    loop = anc
                    break
                if anc is func:
                    break

            timeout = _explicit_timeout(call, timeout_pos)
            timed = timeout is not None and not _is_infinite_timeout(timeout)

            if loop is not None and _contains_health_check(loop):
                continue
            if isinstance(loop, ast.While):
                # unbounded retry: a timeout alone only bounds one attempt,
                # the loop spins past a failure unless the flag is read
                yield ctx.make_finding(self.id, call, self._msg(name, loop))
                continue
            if timed:
                continue
            if loop is None and _health_check_before(func, call.lineno):
                continue
            yield ctx.make_finding(self.id, call, self._msg(name, loop))

    def _msg(self, name: str, loop: Optional[ast.AST]) -> str:
        where = "inside a retry loop " if isinstance(loop, ast.While) else ""
        return (
            f"blocking '{name}' {where}without a health-flag check "
            f"(guard.assert_healthy()/block.check_failure()) "
            f"{'in the loop body' if loop is not None else 'or a finite timeout'}"
        )


# ----------------------------------------------------------------------
# FT002 — determinism of the DES
# ----------------------------------------------------------------------

_WALLCLOCK = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("time", "time_ns"),
    ("time", "perf_counter_ns"), ("time", "monotonic_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

#: np.random entry points that construct *seeded* generators when given
#: an argument (flagged only when called with no arguments)
_SEEDED_CTORS = {"default_rng", "SeedSequence", "Generator", "PCG64",
                 "Philox", "SFC64", "MT19937", "BitGenerator"}


@register
class FT002Determinism(Rule):
    """Sim paths must draw randomness from ``sim.rng`` streams and time
    from the kernel clock — never the wall clock or global RNG state."""

    id = "FT002"
    title = "nondeterminism in a sim path"
    rationale = (
        "the DES is only reproducible because every sim-path draw comes "
        "from a seeded stream and every timestamp from the kernel clock; "
        "one wall-clock read or global-RNG call breaks replay and the "
        "byte-identical serial-vs-parallel sweep guarantee"
    )

    _SCOPE = ("src/repro/sim/", "src/repro/gaspi/", "src/repro/ft/",
              "src/repro/spmvm/")

    def applies_to(self, display_path: str) -> bool:
        return _path_in(display_path, self._SCOPE)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        random_module_aliases = self._module_aliases(ctx, "random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = _attr_name(func)
            receiver = _receiver_chain(func)
            # wall clock: time.time(), datetime.datetime.now(), ...
            for mod, fn in _WALLCLOCK:
                if name == fn and (receiver == mod
                                   or receiver.endswith("." + mod)):
                    yield ctx.make_finding(
                        self.id, node,
                        f"wall-clock read '{receiver}.{name}()' in a sim "
                        f"path; use the kernel clock (ctx.now / sim.now)",
                    )
                    break
            else:
                # global/legacy RNG state: random.*, np.random.<legacy>
                if receiver in random_module_aliases:
                    yield ctx.make_finding(
                        self.id, node,
                        f"stdlib 'random.{name}()' draws from global state; "
                        f"use a named sim.rng stream",
                    )
                elif receiver.endswith("random") and receiver != "random":
                    # np.random / numpy.random
                    if name not in _SEEDED_CTORS:
                        yield ctx.make_finding(
                            self.id, node,
                            f"'{receiver}.{name}()' uses numpy's global RNG "
                            f"state; use a named sim.rng stream",
                        )
                    elif not node.args and not node.keywords:
                        yield ctx.make_finding(
                            self.id, node,
                            f"'{receiver}.{name}()' with no seed draws OS "
                            f"entropy; pass an explicit seed",
                        )

    @staticmethod
    def _module_aliases(ctx: FileContext, module: str) -> Set[str]:
        aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == module:
                        aliases.add(alias.asname or alias.name)
        return aliases


# ----------------------------------------------------------------------
# FT003 — zero-cost tracing discipline
# ----------------------------------------------------------------------
@register
class FT003TracerGate(Rule):
    """Every ``tracer.emit(...)`` must sit under an ``if tracer.enabled:``
    guard (the zero-cost pattern) so the disabled path allocates nothing."""

    id = "FT003"
    title = "ungated tracer.emit"
    rationale = (
        "the failure-free path must stay free: an ungated emit builds its "
        "kwargs dict on every call even when tracing is off (NULL_TRACER "
        "discards them after the allocation already happened)"
    )

    #: the tracer implementation and its exporters legitimately call emit
    _EXEMPT = ("src/repro/obs/",)

    def applies_to(self, display_path: str) -> bool:
        return (_path_in(display_path, ("src/",))
                and not _path_in(display_path, self._EXEMPT))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and _attr_name(node.func) == "emit"
                    and isinstance(node.func, ast.Attribute)):
                continue
            receiver = _receiver_chain(node.func)
            if "tracer" not in receiver.lower():
                continue
            if not self._gated(ctx, node):
                yield ctx.make_finding(
                    self.id, node,
                    f"'{receiver}.emit(...)' not under an "
                    f"'if {receiver}.enabled:' guard (zero-cost pattern)",
                )

    @staticmethod
    def _gated(ctx: FileContext, node: ast.Call) -> bool:
        for anc in ctx.ancestors(node):
            if isinstance(anc, (ast.If, ast.IfExp)):
                test = ast.dump(anc.test)
                if "enabled" in test:
                    return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return False


# ----------------------------------------------------------------------
# FT004 — queue-slot discipline
# ----------------------------------------------------------------------

_POSTING = {"write", "write_notify", "write_list", "write_list_notify",
            "read", "read_list", "notify", "post_rdma", "post_rdma_list"}
#: receivers that denote the GASPI layer (filters out file.write etc.)
_POSTING_RECEIVERS = re.compile(
    r"(^|\.)(ctx|context|transport)$"
)


@register
class FT004QueueDiscipline(Rule):
    """Posting calls return ``QUEUE_FULL`` when the queue has no free
    slot: the code must look at that return code, and must not yield to
    the kernel between posting and checking (the queue can drain and
    refill underneath, making the stored code stale)."""

    id = "FT004"
    title = "queue-slot status dropped or held across a yield"
    rationale = (
        "a silently dropped QUEUE_FULL loses one-sided writes (e.g. a "
        "failure-notice broadcast entry) with no error anywhere; a yield "
        "between post and check acts on a stale slot count"
    )

    _SCOPE = ("src/repro/gaspi/", "src/repro/ft/", "src/repro/spmvm/",
              "src/repro/checkpoint/", "src/repro/solvers/",
              "src/repro/cluster/")

    def applies_to(self, display_path: str) -> bool:
        return _path_in(display_path, self._SCOPE)

    # ------------------------------------------------------------------
    def _posting_call(self, node: ast.AST) -> Optional[ast.Call]:
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _POSTING
                and _POSTING_RECEIVERS.search(_receiver_chain(node.func))):
            return node
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_blocks(ctx, node)

    def _check_blocks(self, ctx: FileContext, func: ast.AST) -> Iterator[Finding]:
        for block in self._statement_blocks(func):
            for idx, stmt in enumerate(block):
                # (a) discarded return code
                if isinstance(stmt, ast.Expr):
                    call = self._posting_call(stmt.value)
                    if call is not None:
                        yield ctx.make_finding(
                            self.id, call,
                            f"return code of '{call.func.attr}' discarded — "
                            f"QUEUE_FULL would silently drop the transfer",
                        )
                        continue
                # (b) checked, but a yield intervenes before the check
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    call = self._posting_call(stmt.value)
                    target = stmt.targets[0]
                    if call is None or not isinstance(target, ast.Name):
                        continue
                    yield from self._check_yield_gap(
                        ctx, call, target.id, block[idx + 1:])

    def _check_yield_gap(self, ctx: FileContext, call: ast.Call,
                         name: str, rest: List[ast.stmt]) -> Iterator[Finding]:
        for stmt in rest:
            uses = any(isinstance(sub, ast.Name) and sub.id == name
                       for sub in ast.walk(stmt))
            yields = any(isinstance(sub, (ast.Yield, ast.YieldFrom))
                         for sub in ast.walk(stmt))
            if uses and not yields:
                return  # checked before any yield: fine
            if yields and not uses:
                yield ctx.make_finding(
                    self.id, call,
                    f"'{name}' (result of '{call.func.attr}') is not "
                    f"examined before yielding — the slot status is stale "
                    f"after the kernel runs",
                )
                return
            if uses:
                return  # same statement both uses and yields: treat as checked
        # never used at all in the rest of the block
        yield ctx.make_finding(
            self.id, call,
            f"'{name}' (result of '{call.func.attr}') is never checked in "
            f"this block — QUEUE_FULL would go unnoticed",
        )

    @staticmethod
    def _statement_blocks(func: ast.AST) -> Iterator[List[ast.stmt]]:
        """Every ordered statement list in the function (bodies, orelse...)."""
        for node in ast.walk(func):
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if isinstance(block, list) and block \
                        and all(isinstance(s, ast.stmt) for s in block):
                    yield block


# ----------------------------------------------------------------------
# FT005 — exception hygiene in recovery paths
# ----------------------------------------------------------------------
@register
class FT005BroadExcept(Rule):
    """Recovery paths unwind on ``FailureAcknowledged`` / ``GaspiError``
    / ``SimError``; a broad handler that does not re-raise swallows the
    unwind and deadlocks the recovery protocol."""

    id = "FT005"
    title = "broad except swallows FT control flow"
    rationale = (
        "FailureAcknowledged is the mechanism that unwinds a worker into "
        "recovery; 'except Exception' on its propagation path quietly "
        "cancels the paper's Fig. 3 transition"
    )

    _SCOPE = ("src/repro/",)

    def applies_to(self, display_path: str) -> bool:
        return _path_in(display_path, self._SCOPE)

    _BROAD = {"Exception", "BaseException"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or (
                _attr_name(node.type) in self._BROAD
            )
            if isinstance(node.type, ast.Tuple):
                broad = any(_attr_name(elt) in self._BROAD
                            for elt in node.type.elts)
            if not broad:
                continue
            if self._reraises(node):
                continue
            what = ("bare 'except:'" if node.type is None
                    else f"'except {_attr_name(node.type)}'")
            yield ctx.make_finding(
                self.id, node,
                f"{what} without re-raise can swallow FailureAcknowledged/"
                f"GaspiError/SimError and stall recovery; catch specific "
                f"exceptions or re-raise",
            )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for sub in ast.walk(handler):
            if isinstance(sub, ast.Raise):
                return True
        return False


# ----------------------------------------------------------------------
# FT006 — public API annotations
# ----------------------------------------------------------------------
@register
class FT006PublicAnnotations(Rule):
    """Public functions in ``src/repro`` must be fully annotated — the
    static backstop behind the mypy strict packages."""

    id = "FT006"
    title = "public function missing type annotations"
    rationale = (
        "mypy's disallow_untyped_defs only runs on the strict packages; "
        "this keeps the rest of the public surface from regressing"
    )

    _SCOPE = ("src/repro/",)

    def applies_to(self, display_path: str) -> bool:
        return _path_in(display_path, self._SCOPE)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._is_public(ctx, node):
                continue
            missing = self._missing(node)
            if missing:
                yield ctx.make_finding(
                    self.id, node,
                    f"public function '{node.name}' missing annotations: "
                    f"{', '.join(missing)}",
                )

    @staticmethod
    def _is_public(ctx: FileContext, node: ast.AST) -> bool:
        name = node.name
        if name.startswith("_") and name != "__init__":
            return False
        # nested functions (closures) are implementation detail
        anc = ctx.parent(node)
        while anc is not None and not isinstance(
                anc, (ast.Module, ast.ClassDef,
                      ast.FunctionDef, ast.AsyncFunctionDef)):
            anc = ctx.parent(anc)
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if isinstance(anc, ast.ClassDef) and anc.name.startswith("_"):
            return False
        return True

    @staticmethod
    def _missing(node: ast.AST) -> List[str]:
        args = node.args
        missing: List[str] = []
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None and arg.arg not in ("self", "cls"):
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None and node.name != "__init__":
            missing.append("return")
        return missing
