"""The flow-sensitive protocol rules (FT007–FT010).

Where FT001–FT006 look at one statement at a time, these rules run the
:mod:`cfg`/:mod:`dataflow` engine over every function and reason about
*paths*: an obligation created at one call site must be discharged on
every path that can reach the function's exit (FT007, FT009), must not
be re-entered while live (double post), and a resource retired on one
path must not be touched further down it (FT008).  FT010 is a pure
graph-reachability property: a posting loop must keep a drain reachable.

Matching is textual and intraprocedural by design — the rules never
guess across call boundaries.  Two pressure valves keep that honest on
real code:

* **helper discharge**: any call whose name contains ``wait``/``flush``/
  ``drain``/``purge``/``sync`` (e.g. ``self._flush()``) discharges
  notification/queue obligations, because this tree's consumers factor
  their queue flushing into such helpers;
* **escape**: an obligation whose handle is returned, yielded, stored,
  or passed to a non-GASPI callee transfers to the caller and is
  dropped rather than reported.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.ftlint.cfg import CFG, build_cfg
from repro.analysis.ftlint.core import FileContext, Finding, Rule, register
from repro.analysis.ftlint.dataflow import Fact, State, facts_at_exit, run_forward
from repro.analysis.ftlint.rules import _attr_name, _path_in, _receiver_chain

# ----------------------------------------------------------------------
# call vocabulary
# ----------------------------------------------------------------------

#: receivers that denote a GASPI context handle
_CTX_RECEIVER = re.compile(r"(^|\.)(ctx|context)$")

#: ops that post a notification toward a peer (FT007 obligations)
_NOTIFYING = {"notify", "write_notify", "write_list_notify"}

#: ops that occupy a queue slot (FT010)
_QUEUE_POSTING = {"write", "read", "notify", "write_notify", "write_list",
                  "write_list_notify", "write_round", "read_list"}

#: exact method names that discharge notification/queue obligations
_CLEARING_ATTRS = {"wait", "drain_event", "queue_purge", "purge",
                   "notify_waitsome", "notify_reset", "notify_reset_many"}

#: helper-name pattern that also discharges (factored-out flush loops)
_CLEARING_PATTERN = re.compile(r"flush|drain|wait|purge|sync")

#: segment-id argument positions per context op (positional index), plus
#: the keyword names that carry segment ids anywhere
_SEG_ARG_POS: Dict[str, Tuple[int, ...]] = {
    "segment": (0,), "segment_view": (0,), "segment_delete": (0,),
    "write": (0, 4), "read": (0, 4), "notify": (1,),
    "write_notify": (0, 4), "write_round": (0, 4),
    "notify_waitsome": (0,), "notify_reset": (0,), "notify_reset_many": (0,),
    "atomic_fetch_add": (1,), "atomic_compare_swap": (1,),
}
_SEG_KWARGS = {"segment_id", "remote_segment", "notify_segment"}

#: group-membership mutators: they touch the handle without taking it
_GROUP_MUTATORS = {"group_add", "group_add_many", "group_fill", "add",
                   "add_many", "adopt_members"}
_GROUP_COMMITS = {"group_commit"}
_GROUP_DELETES = {"group_delete"}


def _unparse(node: Optional[ast.AST]) -> str:
    if node is None:
        return "?"
    try:
        return ast.unparse(node)
    except (ValueError, AttributeError):  # pragma: no cover - synthetic nodes
        return "?"


#: nested scopes are separate CFGs — never read through their bodies
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


def _scoped_walk(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class
    scopes (a nested ``def`` is one opaque statement to the enclosing
    function's CFG — its calls belong to *its own* analysis)."""
    if isinstance(node, _SCOPE_NODES):
        return
    todo: List[ast.AST] = [node]
    while todo:
        cur = todo.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if not isinstance(child, _SCOPE_NODES):
                todo.append(child)


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for sub in _scoped_walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _is_ctx_call(call: ast.Call) -> Optional[str]:
    """The op name if this is a call on a GASPI context handle."""
    name = _attr_name(call.func)
    if name is None or not isinstance(call.func, ast.Attribute):
        return None
    if _CTX_RECEIVER.search(_receiver_chain(call.func)):
        return name
    return None


def _is_clearing(node: ast.AST) -> bool:
    """Does this element discharge notification/queue obligations?"""
    if isinstance(node, _SCOPE_NODES):
        return False
    for call in _calls_in(node):
        name = _attr_name(call.func)
        if name is None:
            continue
        if name in _CLEARING_ATTRS:
            return True
        if _CLEARING_PATTERN.search(name):
            return True
    return False


def _arg(call: ast.Call, pos: int, kw: Optional[str] = None) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if kw is not None and keyword.arg == kw:
            return keyword.value
    if pos < len(call.args):
        return call.args[pos]
    return None


def _seg_keys(call: ast.Call, op: str, receiver: str) -> List[str]:
    """Keys of every segment-id argument of a context call."""
    keys: List[str] = []
    for pos in _SEG_ARG_POS.get(op, ()):
        if pos < len(call.args):
            keys.append(f"{receiver}:{_unparse(call.args[pos])}")
    for keyword in call.keywords:
        if keyword.arg in _SEG_KWARGS:
            keys.append(f"{receiver}:{_unparse(keyword.value)}")
    return keys


def _functions(ctx: FileContext) -> Iterator[ast.AST]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


#: packages whose protocol code the flow rules police; gaspi itself (the
#: runtime being modelled), the sim kernel and the transport are exempt —
#: they *implement* the mechanisms these rules check the users of
_FLOW_SCOPE = ("src/repro/ft/", "src/repro/spmvm/", "src/repro/checkpoint/",
               "src/repro/workloads/", "src/repro/solvers/",
               "src/repro/experiments/")


class _FlowRule(Rule):
    """Shared scaffolding: per-function CFG + dedicated check."""

    def applies_to(self, display_path: str) -> bool:
        return _path_in(display_path, _FLOW_SCOPE)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _functions(ctx):
            cfg = build_cfg(func)
            seen: Set[Tuple[str, int, int]] = set()
            for finding in self.check_function(ctx, func, cfg):
                ident = (finding.rule, finding.line, finding.col)
                if ident not in seen:  # finally-duplication dedupe
                    seen.add(ident)
                    yield finding

    def check_function(self, ctx: FileContext, func: ast.AST,
                       cfg: CFG) -> Iterator[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# FT007 — notification leak / double post
# ----------------------------------------------------------------------
@register
class FT007NotificationLeak(_FlowRule):
    """Every posted notification must meet a wait/drain on every path to
    function exit, and a live (unconsumed) id must not be posted again
    with the same value from a second call site."""

    id = "FT007"
    title = "notification can leak past function exit / double post"
    rationale = (
        "paper §III: the spMVM learns its halos landed only through "
        "notifications — a posted id that no path waits on is a lost "
        "completion (the peer spins), and re-posting a live id with the "
        "same value silently overwrites an unconsumed flag"
    )

    def _notify_args(self, call: ast.Call, op: str) -> Tuple[str, str, str]:
        """(segment, id, value) argument texts of a notifying op."""
        if op == "notify":
            seg = _arg(call, 1, "remote_segment")
            nid = _arg(call, 2, "notification_id")
            val = _arg(call, 3, "value")
        elif op == "write_notify":
            seg = _arg(call, 4, "remote_segment")
            nid = _arg(call, 6, "notification_id")
            val = _arg(call, 7, "value")
        else:  # write_list_notify
            seg = _arg(call, 2, "notify_segment")
            nid = _arg(call, 3, "notifications")
            val = None
        value = _unparse(val) if val is not None else "1"
        return _unparse(seg), _unparse(nid), value

    def _returned_names(self, func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for stmt in getattr(func, "body", []):
            for sub in _scoped_walk(stmt):
                if isinstance(sub, ast.Return) and sub.value is not None:
                    for name in ast.walk(sub.value):
                        if isinstance(name, ast.Name):
                            names.add(name.id)
        return names

    def check_function(self, ctx: FileContext, func: ast.AST,
                       cfg: CFG) -> Iterator[Finding]:
        returned = self._returned_names(func)
        findings: List[Tuple[str, ast.AST, str]] = []

        def transfer(idx: int, state: State) -> State:
            block = cfg.blocks[idx]
            stmt = block.stmt
            if stmt is None:
                return state
            if _is_clearing(stmt):
                state = frozenset(f for f in state if f.kind != "notify")
            for call in _calls_in(stmt):
                op = _is_ctx_call(call)
                if op not in _NOTIFYING:
                    continue
                receiver = _receiver_chain(call.func)
                seg, nid, value = self._notify_args(call, op)
                key = f"{receiver}|{seg}|{nid}"
                # the fire-and-forget escape: posting's return code handed
                # to the caller transfers the obligation with it
                parent = ctx.enclosing_statement(call)
                if isinstance(parent, ast.Return):
                    continue
                if isinstance(parent, ast.Assign):
                    target = parent.targets[0]
                    if isinstance(target, ast.Name) and target.id in returned:
                        continue
                for fact in state:
                    if (fact.kind == "notify" and fact.key == key
                            and fact.data and fact.data[0] == value
                            and cfg.blocks[fact.origin].stmt is not stmt):
                        findings.append((
                            "double",
                            call,
                            f"notification id {nid} on segment {seg} is "
                            f"re-posted with value {value} while a post "
                            f"from line "
                            f"{getattr(cfg.blocks[fact.origin].stmt, 'lineno', '?')} "
                            f"is still live (no wait/reset in between)",
                        ))
                state = state | {Fact("notify", key, idx, (value, nid, seg))}
            return state

        in_states = run_forward(cfg, transfer)
        for fact in facts_at_exit(cfg, in_states):
            if fact.kind != "notify":
                continue
            stmt = cfg.blocks[fact.origin].stmt
            _value, nid, seg = fact.data
            findings.append((
                "leak",
                stmt,
                f"notification id {nid} posted on segment {seg} can reach "
                f"the exit of '{getattr(func, 'name', '?')}' with no "
                f"wait/drain on some path",
            ))
        for _kind, node, message in findings:
            yield ctx.make_finding(self.id, node, message)


# ----------------------------------------------------------------------
# FT008 — segment use after free / missing rebind
# ----------------------------------------------------------------------
@register
class FT008SegmentEpoch(_FlowRule):
    """A deleted segment id must be re-created (rebind, new recovery
    epoch) before any path touches it again."""

    id = "FT008"
    title = "segment used after delete without rebind"
    rationale = (
        "recovery retires data-plane segments (delete) and rebinds them "
        "for the new epoch (create); touching the id in the gap reads "
        "memory the epoch no longer owns — the DES raises at delivery "
        "time, real GPI-2 corrupts silently"
    )

    def check_function(self, ctx: FileContext, func: ast.AST,
                       cfg: CFG) -> Iterator[Finding]:
        findings: List[Tuple[ast.AST, str]] = []
        reported: Set[Tuple[int, str]] = set()

        def transfer(idx: int, state: State) -> State:
            block = cfg.blocks[idx]
            stmt = block.stmt
            if stmt is None:
                return state
            for call in _calls_in(stmt):
                op = _is_ctx_call(call)
                if op is None:
                    continue
                receiver = _receiver_chain(call.func)
                keys = _seg_keys(call, op, receiver)
                if op in ("segment_create", "segment_create_pooled"):
                    created = (f"{receiver}:{_unparse(_arg(call, 0, 'segment_id'))}",)
                    state = frozenset(
                        f for f in state
                        if not (f.kind == "segdel" and f.key in created)
                    )
                    continue
                if op == "segment_delete":
                    for key in keys:
                        state = state | {Fact("segdel", key, idx)}
                    continue
                for key in keys:
                    for fact in state:
                        if fact.kind == "segdel" and fact.key == key:
                            ident = (idx, key)
                            if ident not in reported:
                                reported.add(ident)
                                origin_stmt = cfg.blocks[fact.origin].stmt
                                findings.append((
                                    call,
                                    f"segment {key.split(':', 1)[1]} used "
                                    f"by '{op}' after segment_delete (line "
                                    f"{getattr(origin_stmt, 'lineno', '?')}) "
                                    f"with no segment_create rebinding it "
                                    f"on this path",
                                ))
            return state

        run_forward(cfg, transfer)
        for node, message in findings:
            yield ctx.make_finding(self.id, node, message)


# ----------------------------------------------------------------------
# FT009 — unbalanced group collectives
# ----------------------------------------------------------------------
@register
class FT009GroupBalance(_FlowRule):
    """Every ``group_create`` must reach a ``group_commit`` (or an
    explicit delete/escape) on every path — a branch that abandons the
    handle leaves the other ranks of the collective arriving forever."""

    id = "FT009"
    title = "group created but not committed on some path"
    rationale = (
        "group_commit is collective: the paper's OHF2 rebuild has every "
        "survivor and rescue commit the same group; a path that leaves "
        "the handle uncommitted (or rebinds it) desynchronises the "
        "recovery epoch's membership"
    )

    def check_function(self, ctx: FileContext, func: ast.AST,
                       cfg: CFG) -> Iterator[Finding]:
        findings: List[Tuple[ast.AST, str]] = []
        reported: Set[Tuple[str, int]] = set()

        def group_var_of(call_parent: ast.AST) -> Optional[str]:
            if isinstance(call_parent, ast.Assign) \
                    and len(call_parent.targets) == 1 \
                    and isinstance(call_parent.targets[0], ast.Name):
                return call_parent.targets[0].id
            return None

        def transfer(idx: int, state: State) -> State:
            block = cfg.blocks[idx]
            stmt = block.stmt
            if stmt is None:
                return state
            # 1. discharge: commit / delete / escape of the handle
            for call in _calls_in(stmt):
                name = _attr_name(call.func)
                if name in _GROUP_COMMITS | _GROUP_DELETES:
                    for arg in list(call.args) + [k.value for k in call.keywords]:
                        if isinstance(arg, ast.Name):
                            state = frozenset(
                                f for f in state
                                if not (f.kind == "group" and f.key == arg.id)
                            )
                elif name not in _GROUP_MUTATORS and _is_ctx_call(call) is None:
                    # handle passed to arbitrary code: ownership escapes
                    for arg in list(call.args) + [k.value for k in call.keywords]:
                        if isinstance(arg, ast.Name):
                            state = frozenset(
                                f for f in state
                                if not (f.kind == "group" and f.key == arg.id)
                            )
            # escape: handle returned/yielded to the caller, or stored
            # into an attribute/subscript slot that outlives the frame
            escape_roots: List[ast.AST] = []
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                escape_roots.append(stmt.value)
            elif isinstance(stmt, ast.Expr) \
                    and isinstance(stmt.value, (ast.Yield, ast.YieldFrom)) \
                    and stmt.value.value is not None:
                escape_roots.append(stmt.value.value)
            elif isinstance(stmt, ast.Assign) and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in stmt.targets):
                escape_roots.append(stmt.value)
            for root in escape_roots:
                for name in ast.walk(root):
                    if isinstance(name, ast.Name):
                        state = frozenset(
                            f for f in state
                            if not (f.kind == "group" and f.key == name.id)
                        )
            # 2. creation / rebind
            for call in _calls_in(stmt):
                if _is_ctx_call(call) != "group_create":
                    continue
                var = group_var_of(ctx.enclosing_statement(call))
                if var is None:
                    continue
                for fact in state:
                    if fact.kind == "group" and fact.key == var:
                        ident = (var, idx)
                        if ident not in reported:
                            reported.add(ident)
                            origin = cfg.blocks[fact.origin].stmt
                            findings.append((
                                call,
                                f"'{var}' is rebound to a new group while "
                                f"the group created at line "
                                f"{getattr(origin, 'lineno', '?')} is still "
                                f"uncommitted — commit or group_delete it "
                                f"first",
                            ))
                state = frozenset(
                    f for f in state
                    if not (f.kind == "group" and f.key == var)
                ) | {Fact("group", var, idx)}
            return state

        in_states = run_forward(cfg, transfer)
        for fact in facts_at_exit(cfg, in_states):
            if fact.kind != "group":
                continue
            stmt = cfg.blocks[fact.origin].stmt
            ident = (fact.key, -1)
            if ident in reported:
                continue
            reported.add(ident)
            findings.append((
                stmt,
                f"group '{fact.key}' created here can reach the exit of "
                f"'{getattr(func, 'name', '?')}' without group_commit on "
                f"some path (collective peers would block forever)",
            ))
        for node, message in findings:
            yield ctx.make_finding(self.id, node, message)


# ----------------------------------------------------------------------
# FT010 — queue-depth leak
# ----------------------------------------------------------------------
@register
class FT010QueueDepthLeak(_FlowRule):
    """A posting call on a cycle must keep a wait/drain reachable —
    otherwise the loop fills the queue's finite depth unboundedly."""

    id = "FT010"
    title = "posting loop with no reachable wait/drain"
    rationale = (
        "queues have finite depth (GPI-2 default 4096): a loop that "
        "posts without any reachable flush turns into QUEUE_FULL spin "
        "or silent drop once the depth is exhausted"
    )

    def check_function(self, ctx: FileContext, func: ast.AST,
                       cfg: CFG) -> Iterator[Finding]:
        clearing_blocks = {
            block.idx for block in cfg.blocks
            if block.stmt is not None and _is_clearing(block.stmt)
        }
        for block in cfg.blocks:
            if block.stmt is None:
                continue
            for call in _calls_in(block.stmt):
                op = _is_ctx_call(call)
                if op not in _QUEUE_POSTING:
                    continue
                if not cfg.in_cycle(block.idx):
                    continue
                reachable = cfg.reachable_from(block.idx)
                if reachable & clearing_blocks:
                    continue
                yield ctx.make_finding(
                    self.id, call,
                    f"'{op}' posts inside a loop with no wait/drain/"
                    f"purge reachable from it — the queue's finite depth "
                    f"fills after at most queue_depth iterations",
                )
