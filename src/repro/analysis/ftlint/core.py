"""The ftlint engine: findings, rule registry, suppressions, file walking.

A :class:`FileContext` is built once per analyzed file (parse, parent
links, suppression table); every registered rule then gets a chance to
emit :class:`Finding` records against it.  Rules are plain classes with a
``check(ctx)`` generator — registration order is report order.

Suppressions are comments, checked against every line the enclosing
statement spans (so a multi-line call can carry its pragma on any of its
lines)::

    ret = yield from ctx.wait(q)  # ftlint: disable=FT001 -- local queue

    # ftlint: disable-file=FT006 -- generated bindings

A reason string after ``--`` is required by convention and surfaced in
the report; ``disable=all`` mutes every rule for the line/file.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

#: matches one suppression pragma; ``disable`` scopes to the statement,
#: ``disable-file`` to the whole file
_PRAGMA = re.compile(
    r"#\s*ftlint:\s*(disable|disable-file)="
    r"(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*))?$"
)

ALL_RULES = "all"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str            # posix-style path as given on the command line
    line: int            # 1-based line of the offending node
    col: int             # 0-based column
    symbol: str          # dotted in-file qualname ("<module>" at top level)
    message: str
    snippet: str         # stripped source line (baseline identity input)
    #: line span of the enclosing statement — where a suppression pragma
    #: is honoured (not part of the reported payload or the fingerprint)
    span: tuple = (0, 0)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


@dataclass
class Suppression:
    """A parsed ``# ftlint: disable[-file]=...`` pragma."""

    line: int
    rules: Set[str]
    file_wide: bool
    reason: Optional[str]
    #: set by :meth:`FileContext.is_suppressed` when the pragma actually
    #: mutes a finding — the stale-pragma pass reports the ones left False
    used: bool = False


class FileContext:
    """Everything a rule needs to inspect one source file."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.suppressions = self._parse_suppressions()

    # ------------------------------------------------------------------
    # tree navigation
    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents from the immediate one outward to the module."""
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_statement(self, node: ast.AST) -> ast.AST:
        """The nearest ancestor (or the node itself) that is a statement."""
        cur: Optional[ast.AST] = node
        while cur is not None and not isinstance(cur, ast.stmt):
            cur = self._parents.get(cur)
        return cur if cur is not None else node

    def qualname(self, node: ast.AST) -> str:
        """Dotted path of enclosing class/function defs, or ``<module>``."""
        parts: List[str] = []
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
                parts.append(anc.name)
        return ".".join(reversed(parts)) if parts else "<module>"

    # ------------------------------------------------------------------
    # suppressions
    # ------------------------------------------------------------------
    def _comment_lines(self) -> List[tuple]:
        """``(lineno, text)`` of real COMMENT tokens — a pragma quoted
        inside a docstring or string literal is documentation, not a
        suppression."""
        comments: List[tuple] = []
        reader = io.StringIO(self.source).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    comments.append((token.start[0], token.string))
        except (tokenize.TokenError, IndentationError):
            # the file parsed (FileContext exists), so this is at most a
            # truncated trailer; keep whatever was tokenized
            pass
        return comments

    def _parse_suppressions(self) -> List[Suppression]:
        found: List[Suppression] = []
        for lineno, text in self._comment_lines():
            match = _PRAGMA.search(text)
            if match is None:
                continue
            rules = {
                token.strip().upper() if token.strip() != ALL_RULES
                else ALL_RULES
                for token in match.group("rules").split(",")
                if token.strip()
            }
            reason = match.group("reason")
            found.append(Suppression(
                line=lineno,
                rules=rules,
                file_wide=match.group(1) == "disable-file",
                reason=reason.strip() if reason else None,
            ))
        return found

    def is_suppressed(self, rule: str, span: tuple) -> bool:
        """Is ``rule`` muted on any line of ``span`` (or file-wide)?

        Every pragma that matches is marked ``used`` so the stale-pragma
        pass only reports suppressions that muted nothing.
        """
        first, last = span
        hit = False
        for sup in self.suppressions:
            if ALL_RULES not in sup.rules and rule not in sup.rules:
                continue
            if sup.file_wide or first <= sup.line <= last:
                sup.used = True
                hit = True
        return hit

    def stale_pragmas(self, judged_rules: Set[str]) -> List[Suppression]:
        """Unused pragmas whose verdict this run is qualified to give.

        A pragma naming rules outside ``judged_rules`` (e.g. under
        ``--select``) is skipped — the muted rule simply did not run;
        ``disable=all`` pragmas are judged only by a full-registry run.
        """
        stale: List[Suppression] = []
        for sup in self.suppressions:
            if sup.used:
                continue
            if ALL_RULES in sup.rules:
                if {rule.id for rule in all_rules()} - judged_rules:
                    continue
            elif sup.rules - judged_rules:
                continue
            stale.append(sup)
        return stale

    # ------------------------------------------------------------------
    def snippet_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def make_finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        stmt = self.enclosing_statement(node)
        first = getattr(stmt, "lineno", lineno)
        last = getattr(stmt, "end_lineno", first) or first
        return Finding(
            rule=rule,
            path=self.display_path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            symbol=self.qualname(node),
            message=message,
            snippet=self.snippet_at(lineno),
            span=(first, last),
        )


# ----------------------------------------------------------------------
# rule registry
# ----------------------------------------------------------------------
class Rule:
    """Base class: subclass, set ``id``/``title``, implement ``check``."""

    id: str = ""
    title: str = ""
    #: one-line rationale shown by ``--list-rules``
    rationale: str = ""

    def applies_to(self, display_path: str) -> bool:
        """Path filter (posix-style, as passed on the command line)."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        if not self.applies_to(ctx.display_path):
            return
        yield from self.check(ctx)


_REGISTRY: List[Rule] = []


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding an instance to the global registry."""
    _REGISTRY.append(rule_cls())
    return rule_cls


def all_rules() -> List[Rule]:
    return list(_REGISTRY)


# ----------------------------------------------------------------------
# driving
# ----------------------------------------------------------------------
_SKIP_DIRS = {".git", "__pycache__", ".hypothesis", ".benchmarks",
              "build", "dist", ".eggs"}


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root]
        else:
            candidates = sorted(
                p for p in root.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        for path in candidates:
            if path not in seen:
                seen.add(path)
                yield path


def analyze_file(
    path: Path,
    rules: Optional[Sequence[Rule]] = None,
    display_path: Optional[str] = None,
) -> List[Finding]:
    """All un-suppressed findings for one file (report order = rule order)."""
    display = display_path if display_path is not None else path.as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        ctx = FileContext(path, display, source)
    except SyntaxError as exc:
        return [Finding(
            rule="PARSE", path=display, line=exc.lineno or 1, col=0,
            symbol="<module>", message=f"syntax error: {exc.msg}",
            snippet="",
        )]
    findings: List[Finding] = []
    active = list(rules) if rules is not None else all_rules()
    for rule in active:
        for finding in rule.run(ctx):
            span = finding.span if finding.span != (0, 0) \
                else (finding.line, finding.line)
            if not ctx.is_suppressed(finding.rule, span):
                findings.append(finding)
    for sup in ctx.stale_pragmas({rule.id for rule in active}):
        what = ", ".join(sorted(sup.rules))
        scope = "disable-file" if sup.file_wide else "disable"
        findings.append(Finding(
            rule="PRAGMA",
            path=display,
            line=sup.line,
            col=0,
            symbol="<pragma>",
            message=f"stale suppression '# ftlint: {scope}={what}' — it "
                    f"mutes nothing; remove it",
            snippet=ctx.snippet_at(sup.line),
            span=(sup.line, sup.line),
        ))
    return findings


@dataclass
class AnalysisResult:
    """Findings plus bookkeeping for the reporters."""

    findings: List[Finding] = field(default_factory=list)
    n_files: int = 0


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisResult:
    """Analyze every ``.py`` file under ``paths``."""
    result = AnalysisResult()
    for path in iter_python_files(paths):
        result.n_files += 1
        result.findings.extend(analyze_file(path, rules=rules))
    return result
