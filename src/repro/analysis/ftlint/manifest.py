"""The GASPI capability manifest (FT011).

The ROADMAP's backend-portability item needs to know, precisely, which
slice of the GASPI surface the application layers actually touch — the
~15 operations a second backend would have to provide.  Rather than
maintain that list by hand, this module machine-extracts it:

* :func:`extract_context_api` parses ``repro/gaspi/context.py`` and
  types every public :class:`GaspiContext` method (blocking generator
  vs. plain call, protocol category, parameter names);
* :func:`extract_usage` scans the four consumer packages (``ft``,
  ``spmvm``, ``checkpoint``, ``workloads``) for calls on a context
  receiver and records who uses what;
* :func:`build_manifest` joins the two into ``capability_manifest.json``
  — deterministic (sorted keys, sorted users) so regeneration is a
  no-op on an unchanged tree and any diff is real drift.

Rule **FT011** then closes the loop statically: a context call in a
consumer package that is missing from the committed manifest (a new
capability, or a package newly adopting one) fails the lint until the
manifest is regenerated — which is exactly the review moment the
multi-backend refactor wants to see.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.ftlint.core import (FileContext, Finding, Rule,
                                        iter_python_files, register)
from repro.analysis.ftlint.flowrules import _is_ctx_call
from repro.analysis.ftlint.rules import _path_in

MANIFEST_NAME = "capability_manifest.json"

#: the packages whose GASPI usage the manifest records
CONSUMER_PACKAGES = ("ft", "spmvm", "checkpoint", "workloads")

_CATEGORIES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("collective", ("barrier", "allreduce")),
    ("group", ("group_create", "group_add", "group_add_many", "group_fill",
               "group_commit", "group_delete")),
    ("posting", ("write", "read", "write_list", "read_list", "write_notify",
                 "write_list_notify", "write_round", "notify")),
    ("notification", ("notify_waitsome", "notify_reset",
                      "notify_reset_many")),
    ("queue", ("wait", "drain_event", "queue_purge", "queue_depth")),
    ("segment", ("segment_create", "segment_delete", "segment",
                 "segment_view", "atomic_fetch_add", "atomic_compare_swap")),
    ("proc", ("proc_ping", "proc_kill", "proc_rank", "proc_num")),
    ("passive", ("passive_send", "passive_receive")),
)


def _category(name: str) -> str:
    for category, members in _CATEGORIES:
        if name in members:
            return category
    prefix = name.split("_", 1)[0]
    for category, members in _CATEGORIES:
        if any(member.startswith(prefix) for member in members):
            return category
    return "local"


def _has_yield(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def extract_context_api(context_source: str) -> Dict[str, Dict[str, object]]:
    """Public ``GaspiContext`` methods, typed for the manifest."""
    tree = ast.parse(context_source)
    api: Dict[str, Dict[str, object]] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "GaspiContext"):
            continue
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("_"):
                continue
            params = [a.arg for a in item.args.args if a.arg != "self"]
            params += [a.arg for a in item.args.kwonlyargs]
            api[item.name] = {
                "kind": "generator" if _has_yield(item) else "plain",
                "category": _category(item.name),
                "params": params,
            }
    return api


def _package_of(display_path: str) -> Optional[str]:
    """``src/repro/ft/app.py`` -> ``repro.ft`` (consumers only)."""
    parts = Path(display_path).parts
    if "repro" in parts:
        idx = parts.index("repro")
        if idx + 1 < len(parts) - 1 and parts[idx + 1] in CONSUMER_PACKAGES:
            return f"repro.{parts[idx + 1]}"
    return None


def extract_usage(root: Path) -> Dict[str, List[str]]:
    """Context ops used per consumer package: ``{op: [package, ...]}``."""
    usage: Dict[str, set] = {}
    for pkg in CONSUMER_PACKAGES:
        pkg_dir = root / "src" / "repro" / pkg
        if not pkg_dir.is_dir():
            continue
        for path in iter_python_files([pkg_dir.as_posix()]):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except SyntaxError:
                continue
            for sub in ast.walk(tree):
                if isinstance(sub, ast.Call):
                    op = _is_ctx_call(sub)
                    if op is not None:
                        usage.setdefault(op, set()).add(f"repro.{pkg}")
    return {op: sorted(pkgs) for op, pkgs in sorted(usage.items())}


def build_manifest(root: Path) -> Dict[str, object]:
    """The joined, deterministic capability manifest for ``root``."""
    context_path = root / "src" / "repro" / "gaspi" / "context.py"
    api = extract_context_api(context_path.read_text(encoding="utf-8"))
    usage = extract_usage(root)
    operations: Dict[str, Dict[str, object]] = {}
    for op, packages in usage.items():
        spec = api.get(op)
        operations[op] = {
            "kind": spec["kind"] if spec else "unknown",
            "category": spec["category"] if spec else "unknown",
            "params": spec["params"] if spec else [],
            "used_by": packages,
        }
    return {
        "schema": 1,
        "context": "repro.gaspi.context.GaspiContext",
        "operations": operations,
    }


def render_manifest(manifest: Dict[str, object]) -> str:
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def write_manifest(root: Path, path: Optional[Path] = None) -> Path:
    target = path if path is not None else root / MANIFEST_NAME
    target.write_text(render_manifest(build_manifest(root)), encoding="utf-8")
    return target


def check_manifest(root: Path, path: Optional[Path] = None) -> List[str]:
    """Human-readable drift lines; empty means the manifest is current."""
    target = path if path is not None else root / MANIFEST_NAME
    if not target.exists():
        return [f"manifest {target} is missing — run ftlint --write-manifest"]
    try:
        committed = json.loads(target.read_text(encoding="utf-8"))
    except ValueError as exc:
        return [f"manifest {target} is unreadable: {exc}"]
    current = build_manifest(root)
    if committed == current:
        return []
    drift: List[str] = []
    old_ops = committed.get("operations", {})
    new_ops = current["operations"]
    assert isinstance(new_ops, dict)
    for op in sorted(set(old_ops) - set(new_ops)):
        drift.append(f"operation '{op}' is in the manifest but no longer used")
    for op in sorted(set(new_ops) - set(old_ops)):
        drift.append(f"operation '{op}' is used but missing from the manifest")
    for op in sorted(set(new_ops) & set(old_ops)):
        if old_ops[op] != new_ops[op]:
            drift.append(f"operation '{op}' drifted: committed "
                         f"{json.dumps(old_ops[op], sort_keys=True)} != "
                         f"current {json.dumps(new_ops[op], sort_keys=True)}")
    if not drift:  # pragma: no cover - top-level metadata drift only
        drift.append("manifest metadata drifted — regenerate")
    return drift


# ----------------------------------------------------------------------
# FT011 — capability-surface drift, per call site
# ----------------------------------------------------------------------
def _find_manifest_for(path: Path) -> Optional[Path]:
    try:
        resolved = path.resolve()
    except OSError:  # pragma: no cover - dangling paths
        return None
    for ancestor in resolved.parents:
        candidate = ancestor / MANIFEST_NAME
        if candidate.exists():
            return candidate
    return None


@register
class FT011CapabilityDrift(Rule):
    """Every context call in a consumer package must appear in the
    checked-in capability manifest, attributed to that package."""

    id = "FT011"
    title = "GASPI capability missing from capability_manifest.json"
    rationale = (
        "the manifest is the contract a second backend implements "
        "(ROADMAP portability item): a context call the manifest does "
        "not know about is an API expansion that must be reviewed and "
        "regenerated, not slipped in silently"
    )

    _SCOPES = tuple(f"src/repro/{pkg}/" for pkg in CONSUMER_PACKAGES)

    def __init__(self) -> None:
        self._cache: Dict[Path, Optional[Dict[str, object]]] = {}

    def applies_to(self, display_path: str) -> bool:
        return _path_in(display_path, self._SCOPES)

    def _manifest_for(self, path: Path) -> Optional[Dict[str, object]]:
        location = _find_manifest_for(path)
        if location is None:
            return None
        if location not in self._cache:
            try:
                self._cache[location] = json.loads(
                    location.read_text(encoding="utf-8"))
            except ValueError:
                self._cache[location] = None
        return self._cache[location]

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        manifest = self._manifest_for(ctx.path)
        if manifest is None:
            return
        operations = manifest.get("operations", {})
        if not isinstance(operations, dict):
            return
        package = _package_of(ctx.display_path)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            op = _is_ctx_call(node)
            if op is None:
                continue
            spec = operations.get(op)
            if spec is None:
                yield ctx.make_finding(
                    self.id, node,
                    f"context call '{op}' is not in the capability "
                    f"manifest — run ftlint --write-manifest and review "
                    f"the diff",
                )
            elif package is not None and \
                    package not in spec.get("used_by", []):
                yield ctx.make_finding(
                    self.id, node,
                    f"'{op}' is in the manifest but not attributed to "
                    f"{package} — run ftlint --write-manifest and review "
                    f"the diff",
                )
