"""``ftlint``: protocol- and determinism-aware static analysis.

The paper's fault-tolerance guarantees are *conventions* in the source —
workers read a local health flag before every blocking GASPI call, the
DES stays deterministic because nothing in a sim path consults the wall
clock or unseeded randomness, tracing stays free because every emission
is gated on ``tracer.enabled``.  ``ftlint`` turns those conventions into
machine-checked rules (see ``ANALYSIS.md`` for the rule ↔ paper map):

======  ==============================================================
FT001   blocking GASPI calls in worker/solver code need a health-flag
        check (or a finite timeout outside unbounded retry loops)
FT002   no wall-clock reads or unseeded randomness in sim paths
FT003   ``tracer.emit`` must be gated by the zero-cost ``enabled`` flag
FT004   posting calls must check ``QUEUE_FULL`` and not hold a queue
        slot's status across a yield
FT005   broad ``except`` clauses must not swallow FT control-flow
        exceptions in recovery paths
FT006   public functions in ``src/repro`` carry type annotations
======  ==============================================================

Run it as ``python tools/ftlint.py src tests`` or
``python -m repro.analysis src tests``.
"""

from repro.analysis.ftlint.core import (
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_file,
    analyze_paths,
    iter_python_files,
    register,
)
from repro.analysis.ftlint.baseline import (
    Baseline,
    fingerprint,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.ftlint.reporters import render_human, render_json
from repro.analysis.ftlint.cli import main

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "fingerprint",
    "iter_python_files",
    "load_baseline",
    "main",
    "register",
    "render_human",
    "render_json",
    "split_by_baseline",
    "write_baseline",
]
