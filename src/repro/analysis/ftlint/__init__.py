"""``ftlint``: protocol- and determinism-aware static analysis.

The paper's fault-tolerance guarantees are *conventions* in the source —
workers read a local health flag before every blocking GASPI call, the
DES stays deterministic because nothing in a sim path consults the wall
clock or unseeded randomness, tracing stays free because every emission
is gated on ``tracer.enabled``.  ``ftlint`` turns those conventions into
machine-checked rules (see ``ANALYSIS.md`` for the rule ↔ paper map):

======  ==============================================================
FT001   blocking GASPI calls in worker/solver code need a health-flag
        check (or a finite timeout outside unbounded retry loops)
FT002   no wall-clock reads or unseeded randomness in sim paths
FT003   ``tracer.emit`` must be gated by the zero-cost ``enabled`` flag
FT004   posting calls must check ``QUEUE_FULL`` and not hold a queue
        slot's status across a yield
FT005   broad ``except`` clauses must not swallow FT control-flow
        exceptions in recovery paths
FT006   public functions in ``src/repro`` carry type annotations
FT007   a posted notification must meet a wait/drain on every path to
        function exit, and a live id must not be double-posted
FT008   a deleted segment id must be re-created before any further use
        (recovery-epoch rebind discipline)
FT009   every ``group_create`` reaches ``group_commit`` (or an explicit
        delete/escape) on every path
FT010   a posting loop must keep a ``wait``/``drain`` reachable
FT011   every context call in ``ft``/``spmvm``/``checkpoint``/
        ``workloads`` appears in ``capability_manifest.json``
======  ==============================================================

FT001–FT006 are per-statement visitors; FT007–FT010 run a pure-stdlib
CFG + dataflow engine (:mod:`cfg`, :mod:`dataflow`, :mod:`flowrules`)
and FT011 diffs the machine-extracted capability manifest
(:mod:`manifest`).  The same invariants are asserted dynamically by the
runtime sanitizer (``repro.gaspi.sanitize``, enabled with
``REPRO_SANITIZE=1``).

Run it as ``python tools/ftlint.py src tests`` or
``python -m repro.analysis src tests``.
"""

from repro.analysis.ftlint.core import (
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_file,
    analyze_paths,
    iter_python_files,
    register,
)
from repro.analysis.ftlint.baseline import (
    Baseline,
    fingerprint,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.ftlint.reporters import render_human, render_json
from repro.analysis.ftlint.cli import main

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "fingerprint",
    "iter_python_files",
    "load_baseline",
    "main",
    "register",
    "render_human",
    "render_json",
    "split_by_baseline",
    "write_baseline",
]
