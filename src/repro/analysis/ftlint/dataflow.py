"""Forward may-analysis over the :mod:`~repro.analysis.ftlint.cfg` graphs.

The protocol rules are all *obligation* analyses: a call site creates a
fact ("notification posted", "group created uncommitted", "segment
deleted"), later calls discharge or transform it, and a fact still live
where it should not be — at function exit, or at a use site — is a
finding.  Because the obligations are "on some path" properties, the
join is set union and the fixpoint is a plain worklist iteration; facts
are keyed by their origin block, so the lattice is finite and the
iteration terminates.

:class:`Fact` is deliberately tiny: ``kind`` names the obligation,
``key`` is the rule's matching handle (a variable name, a segment-id
expression, ...), ``origin`` is the block index whose statement created
it (where the finding is reported), and ``data`` carries anything else
the rule wants to show in the message.
"""

from __future__ import annotations

from typing import (Callable, Dict, FrozenSet, List, NamedTuple, Tuple)

from repro.analysis.ftlint.cfg import CFG

__all__ = ["Fact", "State", "run_forward", "facts_at_exit"]


class Fact(NamedTuple):
    """One live obligation on some path."""

    kind: str
    key: str
    origin: int          # block index that created the fact
    data: Tuple = ()


State = FrozenSet[Fact]

#: a transfer function maps (block, incoming state) -> outgoing state;
#: it may also record findings through whatever closure it carries
Transfer = Callable[[int, State], State]


def run_forward(cfg: CFG, transfer: Transfer,
                max_iterations: int = 10000) -> Dict[int, State]:
    """Worklist fixpoint; returns the *incoming* state of every block.

    ``transfer(block_idx, state)`` is applied to the union of the
    predecessors' outgoing states.  The bound only guards against a
    buggy, non-monotone transfer — real rule lattices converge in a
    handful of sweeps.
    """
    empty: State = frozenset()
    in_states: Dict[int, State] = {cfg.entry.idx: empty}
    out_states: Dict[int, State] = {}
    worklist: List[int] = [cfg.entry.idx]
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety net
            break
        idx = worklist.pop()
        state = in_states.get(idx, empty)
        new_out = transfer(idx, state)
        if out_states.get(idx) == new_out:
            continue
        out_states[idx] = new_out
        for succ in cfg.blocks[idx].succs:
            merged = in_states.get(succ, empty) | new_out
            if merged != in_states.get(succ):
                in_states[succ] = merged
                worklist.append(succ)
            elif succ not in out_states:
                worklist.append(succ)
    return in_states


def facts_at_exit(cfg: CFG, in_states: Dict[int, State]) -> State:
    """The obligations live on *some* path reaching the exit block."""
    return in_states.get(cfg.exit.idx, frozenset())
