"""A pure-stdlib control-flow graph over one function's AST.

The flow-sensitive rules (FT007–FT010) reason about *paths* — "can this
``write_notify`` reach function exit with no wait on some path?" — which
the per-statement visitors of FT001–FT006 cannot see.  :func:`build_cfg`
turns a ``FunctionDef`` body into basic blocks and edges:

* every **simple statement** is its own block (one element per block
  keeps exception edges out of try bodies precise and the transfer
  functions trivial);
* **branches** (``if``/``match``), **loops** (``while``/``for``, both
  with their ``else`` clauses; a constant-true ``while`` has no exit
  edge, so code after ``while True`` without ``break`` is correctly
  unreachable), ``break``/``continue``/``return``/``raise``;
* **``try``/``except``/``finally``**: each block inside the ``try`` body
  gets an exception edge to every handler; abrupt exits (``break``,
  ``continue``, ``return``, ``raise``) route *through a fresh copy of
  every enclosing ``finally`` body* before taking effect — the classic
  duplication scheme, which keeps the dataflow engine free of special
  cases at the cost of a few extra blocks;
* **``with``**: context-manager expressions are elements; a manager
  recognisably exception-swallowing (``contextlib.suppress``) adds an
  escape edge from every block of its body to the join point;
* **generators**: ``yield``/``yield from`` positions are recorded on
  their blocks (:attr:`Block.has_yield`, :attr:`CFG.yield_blocks`).  By
  default a yield is *not* an exit — a resumed generator continues — but
  ``build_cfg(..., abandon_edges=True)`` adds yield→exit edges to model
  a caller abandoning the generator mid-protocol.

Nested function/class definitions are opaque single elements: every
``def`` gets its own CFG when the rules iterate over a module.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["Block", "CFG", "build_cfg"]


class Block:
    """One basic block: at most one AST element plus its edges."""

    __slots__ = ("idx", "stmt", "succs", "preds", "has_yield", "kind")

    def __init__(self, idx: int, stmt: Optional[ast.AST] = None,
                 kind: str = "stmt") -> None:
        self.idx = idx
        #: the single AST element of this block (``None`` for entry/exit
        #: and pure join points)
        self.stmt = stmt
        self.succs: Set[int] = set()
        self.preds: Set[int] = set()
        #: a ``yield``/``yield from`` occurs inside this element
        self.has_yield = False
        #: "entry" | "exit" | "stmt" | "join" — presentation only
        self.kind = kind


class CFG:
    """Blocks + edges of one function, entry and exit distinguished."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.blocks: List[Block] = []
        self.entry = self._new(kind="entry")
        self.exit = self._new(kind="exit")

    # ------------------------------------------------------------------
    def _new(self, stmt: Optional[ast.AST] = None, kind: str = "stmt") -> Block:
        block = Block(len(self.blocks), stmt, kind)
        self.blocks.append(block)
        return block

    def _edge(self, src: Block, dst: Block) -> None:
        src.succs.add(dst.idx)
        dst.preds.add(src.idx)

    # ------------------------------------------------------------------
    @property
    def yield_blocks(self) -> List[Block]:
        return [b for b in self.blocks if b.has_yield]

    def reachable_from(self, start: int) -> Set[int]:
        """Block indices reachable from ``start`` (excluding it unless
        it lies on a cycle through itself)."""
        seen: Set[int] = set()
        frontier = list(self.blocks[start].succs)
        while frontier:
            idx = frontier.pop()
            if idx in seen:
                continue
            seen.add(idx)
            frontier.extend(self.blocks[idx].succs)
        return seen

    def in_cycle(self, idx: int) -> bool:
        """Is the block on a cycle (reachable from itself)?"""
        return idx in self.reachable_from(idx)

    def describe(self) -> str:
        """Debug rendering: one line per block."""
        lines = []
        for block in self.blocks:
            label = block.kind
            if block.stmt is not None:
                label = ast.dump(block.stmt)[:60]
            y = " [yield]" if block.has_yield else ""
            lines.append(
                f"B{block.idx}{y} {label} -> "
                f"{sorted(block.succs) if block.succs else '-'}"
            )
        return "\n".join(lines)


def _contains_yield(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _is_suppressing_with(item: ast.withitem) -> bool:
    """``with contextlib.suppress(...)`` (or any ``*.suppress(...)``)."""
    expr = item.context_expr
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    return name == "suppress"


def _const_test(test: ast.AST) -> Optional[bool]:
    """Truthiness of a constant loop/branch test, or None if dynamic."""
    if isinstance(test, ast.Constant):
        return bool(test.value)
    return None


class _Builder:
    """Recursive-descent CFG construction with loop/finally stacks."""

    def __init__(self, cfg: CFG, abandon_edges: bool) -> None:
        self.cfg = cfg
        self.abandon_edges = abandon_edges
        #: (continue_target, break_target, n_finally_at_entry)
        self.loops: List[Tuple[Block, Block, int]] = []
        #: finalbody statement lists of enclosing try/finally constructs
        self.finallies: List[List[ast.stmt]] = []
        #: handler entry points of enclosing try bodies (innermost last);
        #: each entry is (handler_blocks, depth_of_finally_stack)
        self.handlers: List[Tuple[List[Block], int]] = []

    # ------------------------------------------------------------------
    def element(self, stmt: ast.AST, preds: List[Block]) -> Block:
        """A one-statement block wired after ``preds``."""
        block = self.cfg._new(stmt)
        if _contains_yield(stmt):
            block.has_yield = True
            if self.abandon_edges:
                self.cfg._edge(block, self.cfg.exit)
        for pred in preds:
            self.cfg._edge(pred, block)
        # a statement inside a try body may raise into every live handler
        for handler_blocks, _depth in self.handlers:
            for handler in handler_blocks:
                self.cfg._edge(block, handler)
        return block

    def join(self, preds: List[Block]) -> Block:
        if len(preds) == 1:
            return preds[0]
        block = self.cfg._new(kind="join")
        for pred in preds:
            self.cfg._edge(pred, block)
        return block

    # ------------------------------------------------------------------
    # abrupt exits: run enclosing finally bodies (innermost first), then
    # jump to the target
    # ------------------------------------------------------------------
    def _through_finallies(self, frontier: List[Block],
                           down_to: int) -> List[Block]:
        """Build copies of the finally bodies above depth ``down_to``."""
        for finalbody in reversed(self.finallies[down_to:]):
            # the copy runs outside its own try: pop the scope stacks so
            # a raise inside the finally does not loop back into the
            # handlers it is escaping
            saved_fin, saved_hnd = self.finallies, self.handlers
            self.finallies = self.finallies[:down_to]
            self.handlers = [h for h in self.handlers
                             if h[1] <= down_to]
            frontier = self.stmts(finalbody, frontier)
            self.finallies, self.handlers = saved_fin, saved_hnd
            if not frontier:
                break  # the finally itself diverges (raise/return)
        return frontier

    def abrupt(self, stmt: ast.AST, preds: List[Block], target: Block,
               finally_floor: int) -> None:
        block = self.element(stmt, preds)
        frontier = self._through_finallies([block], finally_floor)
        for blk in frontier:
            self.cfg._edge(blk, target)

    # ------------------------------------------------------------------
    def stmts(self, body: Sequence[ast.stmt],
              frontier: List[Block]) -> List[Block]:
        """Wire ``body`` after ``frontier``; returns the fall-through
        frontier (empty = control never falls off the end)."""
        for stmt in body:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier: List[Block]) -> List[Block]:
        if isinstance(stmt, ast.If):
            return self.if_(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self.while_(stmt, frontier)
        if isinstance(stmt, ast.For) or isinstance(stmt, ast.AsyncFor):
            return self.for_(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self.try_(stmt, frontier)
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            return self.with_(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self.match_(stmt, frontier)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.abrupt(stmt, frontier, self.cfg.exit, 0)
            return []
        if isinstance(stmt, ast.Break):
            cont, brk, floor = self.loops[-1]
            self.abrupt(stmt, frontier, brk, floor)
            return []
        if isinstance(stmt, ast.Continue):
            cont, brk, floor = self.loops[-1]
            self.abrupt(stmt, frontier, cont, floor)
            return []
        # simple statement (incl. nested def/class, treated opaquely)
        return [self.element(stmt, frontier)]

    # ------------------------------------------------------------------
    def if_(self, stmt: ast.If, frontier: List[Block]) -> List[Block]:
        test = self.element(stmt.test, frontier)
        const = _const_test(stmt.test)
        out: List[Block] = []
        if const is not False:
            out.extend(self.stmts(stmt.body, [test]))
        if const is not True:
            if stmt.orelse:
                out.extend(self.stmts(stmt.orelse, [test]))
            else:
                out.append(test)
        return out

    def while_(self, stmt: ast.While, frontier: List[Block]) -> List[Block]:
        head = self.element(stmt.test, frontier)
        after = self.cfg._new(kind="join")
        const = _const_test(stmt.test)
        self.loops.append((head, after, len(self.finallies)))
        body_out = self.stmts(stmt.body, [head]) if const is not False else []
        self.loops.pop()
        for blk in body_out:
            self.cfg._edge(blk, head)  # back edge
        # normal loop exit (test false) runs the else clause, then after;
        # while True never exits normally — only break reaches `after`
        if const is not True:
            else_out = self.stmts(stmt.orelse, [head])
            for blk in else_out:
                self.cfg._edge(blk, after)
        return [after] if after.preds else []

    def for_(self, stmt: ast.For, frontier: List[Block]) -> List[Block]:
        head = self.element(stmt.iter, frontier)
        after = self.cfg._new(kind="join")
        self.loops.append((head, after, len(self.finallies)))
        body_out = self.stmts(stmt.body, [head])
        self.loops.pop()
        for blk in body_out:
            self.cfg._edge(blk, head)
        else_out = self.stmts(stmt.orelse, [head])  # exhausted iterator
        for blk in else_out:
            self.cfg._edge(blk, after)
        return [after] if after.preds else []

    def with_(self, stmt: ast.With, frontier: List[Block]) -> List[Block]:
        swallows = any(_is_suppressing_with(item) for item in stmt.items)
        for item in stmt.items:
            entry = self.element(item.context_expr, frontier)
            frontier = [entry]
        first_body_block = len(self.cfg.blocks)
        out = self.stmts(stmt.body, frontier)
        if swallows:
            # an exception anywhere in the body lands at the join point —
            # always a fresh block, so the escape edge bypasses the last
            # body statement rather than landing on it
            after = self.cfg._new(kind="join")
            for blk in out:
                self.cfg._edge(blk, after)
            for idx in range(first_body_block, len(self.cfg.blocks)):
                block = self.cfg.blocks[idx]
                if block is not after and block.kind == "stmt":
                    self.cfg._edge(block, after)
            for blk in frontier:  # body may abort before its first stmt
                self.cfg._edge(blk, after)
            return [after]
        return out

    def match_(self, stmt: ast.Match, frontier: List[Block]) -> List[Block]:
        subject = self.element(stmt.subject, frontier)
        out: List[Block] = []
        exhaustive = False
        for case in stmt.cases:
            out.extend(self.stmts(case.body, [subject]))
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None and case.guard is None):
                exhaustive = True  # bare `case _:`
        if not exhaustive:
            out.append(subject)  # no case matched
        return out

    def try_(self, stmt: ast.Try, frontier: List[Block]) -> List[Block]:
        has_finally = bool(stmt.finalbody)
        if has_finally:
            self.finallies.append(stmt.finalbody)
        finally_floor = len(self.finallies) - (1 if has_finally else 0)

        # handler entry points exist before the body is built, so body
        # blocks can raise into them
        handler_entries: List[Block] = []
        for handler in stmt.handlers:
            entry = self.element(handler, [])
            handler_entries.append(entry)

        if handler_entries:
            self.handlers.append((handler_entries, len(self.finallies)))
        body_out = self.stmts(stmt.body, frontier)
        if handler_entries:
            self.handlers.pop()
        if not body_out and not stmt.handlers and not has_finally:
            return []

        # try/else runs only when the body completed without exception
        else_out = self.stmts(stmt.orelse, body_out) if stmt.orelse \
            else body_out

        handler_out: List[Block] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_out.extend(self.stmts(handler.body, [entry]))
        if not handler_entries and frontier:
            # no handlers: an exception in the body still runs the
            # finally and propagates — modelled below via the body
            # blocks' lack of handler edges (they flow to exit through
            # the normal raise routing only when explicit)
            pass

        normal = else_out + handler_out
        if has_finally:
            self.finallies.pop()
            # the on-the-normal-path copy of the finally body
            normal = self.stmts(stmt.finalbody, normal) if normal else []
        return normal


def build_cfg(func: ast.AST, abandon_edges: bool = False) -> CFG:
    """CFG of one ``FunctionDef``/``AsyncFunctionDef``.

    ``abandon_edges=True`` additionally wires every yield point to the
    exit block, modelling a generator dropped by its consumer mid-flight.
    """
    cfg = CFG(func)
    builder = _Builder(cfg, abandon_edges)
    body = getattr(func, "body", [])
    frontier = builder.stmts(body, [cfg.entry])
    for block in frontier:
        cfg._edge(block, cfg.exit)
    # implicit `return None` at the end of reachable dead ends (e.g. an
    # `if` with both arms returning leaves no frontier; nothing to do)
    return cfg
