"""Grandfathered findings: the committed ``.ftlint-baseline.json``.

A baseline entry identifies a finding by *content*, not by line number —
``sha1(rule | path | symbol | snippet)`` — so unrelated edits that shift
code downward do not invalidate it, while changing the flagged line
itself (or moving it to another function/file) retires the entry.
Duplicate identical findings in one symbol are matched as a multiset.

Workflow: ``--write-baseline`` records the current findings;
``--fail-on new`` (the default) fails only on findings absent from the
baseline.  Entries whose finding disappeared are reported as stale so
the file shrinks over time instead of fossilising.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.ftlint.core import Finding

BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Line-number-independent identity of a finding."""
    payload = "|".join((finding.rule, finding.path, finding.symbol,
                        finding.snippet))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    counts: Counter = field(default_factory=Counter)
    #: human-readable context per fingerprint (for stale reporting)
    entries: Dict[str, dict] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def load_baseline(path: Path) -> Baseline:
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} "
            f"in {path} (expected {BASELINE_VERSION})"
        )
    baseline = Baseline()
    for entry in data.get("findings", []):
        fp = entry["fingerprint"]
        baseline.counts[fp] += int(entry.get("count", 1))
        baseline.entries[fp] = entry
    return baseline


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Record ``findings`` as the new baseline; returns the entry count."""
    grouped: Dict[str, dict] = {}
    for finding in findings:
        fp = fingerprint(finding)
        entry = grouped.setdefault(fp, {
            "fingerprint": fp,
            "rule": finding.rule,
            "path": finding.path,
            "symbol": finding.symbol,
            "snippet": finding.snippet,
            "count": 0,
        })
        entry["count"] += 1
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "grandfathered ftlint findings; regenerate with "
            "python tools/ftlint.py <paths> --write-baseline"
        ),
        "findings": sorted(
            grouped.values(),
            key=lambda e: (e["path"], e["rule"], e["symbol"], e["snippet"]),
        ),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(grouped)


def split_by_baseline(
    findings: Sequence[Finding], baseline: Baseline,
) -> Tuple[List[Finding], List[Finding], List[dict]]:
    """-> (new_findings, baselined_findings, stale_entries)."""
    remaining = Counter(baseline.counts)
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        fp = fingerprint(finding)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            old.append(finding)
        else:
            new.append(finding)
    stale = [
        baseline.entries.get(fp, {"fingerprint": fp})
        for fp, count in remaining.items() if count > 0
    ]
    return new, old, stale
