"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Optional, Sequence

from repro.analysis.ftlint.baseline import fingerprint
from repro.analysis.ftlint.core import Finding, all_rules


def render_human(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[dict],
    n_files: int,
    show_baselined: bool = False,
) -> str:
    """The default terminal report."""
    lines: List[str] = []
    for finding in new:
        lines.append(
            f"{finding.location()}: {finding.rule} [{finding.symbol}] "
            f"{finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if show_baselined:
        for finding in baselined:
            lines.append(
                f"{finding.location()}: {finding.rule} [baselined] "
                f"{finding.message}"
            )
    for entry in stale:
        lines.append(
            f"stale baseline entry {entry.get('fingerprint', '?')}: "
            f"{entry.get('path', '?')} {entry.get('rule', '?')} "
            f"[{entry.get('symbol', '?')}] no longer found — "
            f"regenerate with --write-baseline"
        )
    by_rule = Counter(f.rule for f in new)
    summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(by_rule.items()))
    lines.append(
        f"ftlint: {len(new)} finding{'s' if len(new) != 1 else ''}"
        f"{' (' + summary + ')' if summary else ''}, "
        f"{len(baselined)} baselined, {len(stale)} stale baseline "
        f"entr{'ies' if len(stale) != 1 else 'y'}, "
        f"{n_files} file{'s' if n_files != 1 else ''} checked"
    )
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[dict],
    n_files: int,
) -> str:
    """Stable machine-readable report (one JSON document)."""

    def encode(finding: Finding, status: str) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col + 1,
            "symbol": finding.symbol,
            "message": finding.message,
            "snippet": finding.snippet,
            "fingerprint": fingerprint(finding),
            "status": status,
        }

    payload = {
        "tool": "ftlint",
        "files_checked": n_files,
        "findings": (
            [encode(f, "new") for f in new]
            + [encode(f, "baselined") for f in baselined]
        ),
        "stale_baseline_entries": list(stale),
        "summary": {
            "new": len(new),
            "baselined": len(baselined),
            "stale": len(stale),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_sarif(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
) -> str:
    """SARIF 2.1.0 — one run, one result per finding, so CI can upload
    the report and surface findings as code-scanning annotations.

    Baselined findings are carried with ``baselineState: unchanged`` and
    suppressed level so only *new* findings annotate a pull request;
    ``partialFingerprints`` reuses the baseline fingerprint, letting the
    scanning backend track a finding across commits exactly as the
    local baseline file does.
    """
    rule_meta = {rule.id: rule for rule in all_rules()}
    rule_ids = sorted(
        {f.rule for f in new} | {f.rule for f in baselined} | set(rule_meta)
    )

    def rule_entry(rule_id: str) -> dict:
        rule = rule_meta.get(rule_id)
        entry: dict = {"id": rule_id}
        if rule is not None:
            entry["shortDescription"] = {"text": rule.title}
            entry["fullDescription"] = {"text": rule.rationale}
        elif rule_id == "PARSE":
            entry["shortDescription"] = {"text": "file does not parse"}
        elif rule_id == "PRAGMA":
            entry["shortDescription"] = {
                "text": "stale ftlint suppression pragma"}
        return entry

    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}

    def result(finding: Finding, status: str) -> dict:
        payload: dict = {
            "ruleId": finding.rule,
            "ruleIndex": index[finding.rule],
            "level": "error" if status == "new" else "note",
            "message": {"text": f"[{finding.symbol}] {finding.message}"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                        **({"snippet": {"text": finding.snippet}}
                           if finding.snippet else {}),
                    },
                },
            }],
            "partialFingerprints": {
                "ftlintFingerprint/v1": fingerprint(finding),
            },
        }
        if status == "baselined":
            payload["baselineState"] = "unchanged"
            payload["suppressions"] = [{"kind": "external",
                                        "justification": "ftlint baseline"}]
        return payload

    document = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "ftlint",
                    "rules": [rule_entry(rule_id) for rule_id in rule_ids],
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///./"}},
            "results": (
                [result(f, "new") for f in new]
                + [result(f, "baselined") for f in baselined]
            ),
        }],
    }
    return json.dumps(document, indent=2, sort_keys=False)


def render_rule_list(selected: Optional[Sequence[str]] = None) -> str:
    """``--list-rules`` output."""
    lines = []
    for rule in all_rules():
        if selected and rule.id not in selected:
            continue
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)
