"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Optional, Sequence

from repro.analysis.ftlint.baseline import fingerprint
from repro.analysis.ftlint.core import Finding, all_rules


def render_human(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[dict],
    n_files: int,
    show_baselined: bool = False,
) -> str:
    """The default terminal report."""
    lines: List[str] = []
    for finding in new:
        lines.append(
            f"{finding.location()}: {finding.rule} [{finding.symbol}] "
            f"{finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if show_baselined:
        for finding in baselined:
            lines.append(
                f"{finding.location()}: {finding.rule} [baselined] "
                f"{finding.message}"
            )
    for entry in stale:
        lines.append(
            f"stale baseline entry {entry.get('fingerprint', '?')}: "
            f"{entry.get('path', '?')} {entry.get('rule', '?')} "
            f"[{entry.get('symbol', '?')}] no longer found — "
            f"regenerate with --write-baseline"
        )
    by_rule = Counter(f.rule for f in new)
    summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(by_rule.items()))
    lines.append(
        f"ftlint: {len(new)} finding{'s' if len(new) != 1 else ''}"
        f"{' (' + summary + ')' if summary else ''}, "
        f"{len(baselined)} baselined, {len(stale)} stale baseline "
        f"entr{'ies' if len(stale) != 1 else 'y'}, "
        f"{n_files} file{'s' if n_files != 1 else ''} checked"
    )
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[dict],
    n_files: int,
) -> str:
    """Stable machine-readable report (one JSON document)."""

    def encode(finding: Finding, status: str) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col + 1,
            "symbol": finding.symbol,
            "message": finding.message,
            "snippet": finding.snippet,
            "fingerprint": fingerprint(finding),
            "status": status,
        }

    payload = {
        "tool": "ftlint",
        "files_checked": n_files,
        "findings": (
            [encode(f, "new") for f in new]
            + [encode(f, "baselined") for f in baselined]
        ),
        "stale_baseline_entries": list(stale),
        "summary": {
            "new": len(new),
            "baselined": len(baselined),
            "stale": len(stale),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rule_list(selected: Optional[Sequence[str]] = None) -> str:
    """``--list-rules`` output."""
    lines = []
    for rule in all_rules():
        if selected and rule.id not in selected:
            continue
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)
