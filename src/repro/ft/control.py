"""The failure-acknowledgment control block.

Every rank owns segment ``FT_SEGMENT`` laid out as int64 cells:

====================  =========================================================
cell                  meaning
====================  =========================================================
``epoch``             failure sequence number (0 = no failure yet)
``ack``               1 while a failure notice is pending acknowledgment
``done``              1 once the application completed (tells idles to exit)
``n_failed``          failed ranks in this epoch's notice
``n_rescues``         rescues assigned (``< n_failed`` = unrecoverable)
``failed[]``          the failed physical ranks (this epoch)
``rescues[]``         their rescue physical ranks, pairwise
``status[]``          role/health of every physical rank (:class:`Role`)
``rank_map[]``        logical worker rank -> physical rank (FD-authoritative)
====================  =========================================================

The FD composes the block locally and one-sided-writes it into every
healthy rank ("This is done via one-sided write in the global memory of
all healthy processes").  Workers acknowledge by *reading local memory*
before each blocking call — the zero-overhead property in the failure-free
case.  The ``rank_map`` makes the FD the single authority on identity
takeover, so rescues and survivors cannot disagree about the new mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple, Union

import numpy as np

from repro.gaspi.context import GaspiContext
from repro.ft import rankstate
from repro.ft.config import FTConfig
from repro.ft.roles import Role

#: segment id reserved for the FT control block on every rank
FT_SEGMENT = 0

_I8 = 8


@dataclass(frozen=True)
class FailureNotice:
    """One epoch's failure notice, as read from the local control block."""

    epoch: int
    failed: Tuple[int, ...]
    rescues: Tuple[int, ...]
    status: Tuple[int, ...]
    rank_map: Dict[int, int]

    @property
    def recoverable(self) -> bool:
        return len(self.rescues) >= len(self.failed)


class ControlBlock:
    """Typed view over one rank's FT control segment.

    The segment is copy-on-write: every rank's block starts byte-identical
    (a pure function of the layout parameters), so all pristine blocks of
    one world read through a single shared template array —
    :meth:`init_local` costs nothing per rank — and a block only gets a
    private buffer when something actually writes it (the FD staging a
    notice, a broadcast landing, the done flag).
    """

    def __init__(self, ctx: GaspiContext, cfg: FTConfig) -> None:
        self.ctx = ctx
        self.cfg = cfg
        # capacity must allow *reporting* more failures than spares exist,
        # so workers can learn a failure batch is unrecoverable
        max_failed = cfg.n_ranks
        self._off_failed = 5
        self._off_rescues = self._off_failed + max_failed
        self._off_status = self._off_rescues + max_failed
        self._off_map = self._off_status + cfg.n_ranks
        self.n_cells = self._off_map + cfg.n_workers
        if FT_SEGMENT not in ctx.segments:
            ctx.segment_create(FT_SEGMENT, self.n_cells * _I8)
        seg = ctx.segments.get(FT_SEGMENT)
        self._seg = seg
        if seg.pristine:
            seg.adopt_template(self._shared_template())

    def _shared_template(self) -> np.ndarray:
        """The world's one read-only copy of the initial block content."""
        world = self.ctx.world
        cache = getattr(world, "_ft_control_templates", None)
        if cache is None:
            cache = {}
            world._ft_control_templates = cache  # type: ignore[attr-defined]
        cfg = self.cfg
        key = (self.n_cells, cfg.n_ranks, cfg.n_workers, cfg.fd_rank)
        template = cache.get(key)
        if template is None:
            cells = np.zeros(self.n_cells, dtype=np.int64)
            self._fill_initial(cells)
            template = cells.view(np.uint8)
            template.setflags(write=False)
            cache[key] = template
        return template

    @property
    def cells(self) -> np.ndarray:
        """Whole-block int64 view — read-only while the block is pristine."""
        return self._seg.cells64()

    def _cells_rw(self) -> np.ndarray:
        """Writable cells (materialises the private buffer on first use)."""
        seg = self._seg
        if seg.pristine:
            _ = seg.buf
        return seg.cells64()

    # ------------------------------------------------------------------
    # named accessors
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return int(self.cells[0])

    @property
    def ack(self) -> bool:
        return bool(self.cells[1])

    @property
    def done(self) -> bool:
        return bool(self.cells[2])

    def status_of(self, rank: int) -> Role:
        return Role(int(self.cells[self._off_status + rank]))

    def statuses(self) -> np.ndarray:
        """Status array view — read-only while the block is pristine."""
        return self.cells[self._off_status : self._off_status + self.cfg.n_ranks]

    def statuses_rw(self) -> np.ndarray:
        """Writable, live status array (the FD's working view)."""
        cells = self._cells_rw()
        return cells[self._off_status : self._off_status + self.cfg.n_ranks]

    def rank_map(self) -> Dict[int, int]:
        cells = self.cells[self._off_map : self._off_map + self.cfg.n_workers]
        return {logical: int(phys) for logical, phys in enumerate(cells)}

    def rank_map_array(self) -> np.ndarray:
        """Logical->physical map as a dense int64 array (SoA view copy);
        index = logical worker rank, value = physical rank."""
        return np.array(
            self.cells[self._off_map : self._off_map + self.cfg.n_workers],
            dtype=np.int64,
        )

    def failed_list(self) -> List[int]:
        n = int(self.cells[3])
        return [int(r) for r in self.cells[self._off_failed : self._off_failed + n]]

    def rescue_list(self) -> List[int]:
        n = int(self.cells[4])
        return [int(r) for r in self.cells[self._off_rescues : self._off_rescues + n]]

    # ------------------------------------------------------------------
    # initialisation (every rank, at startup)
    # ------------------------------------------------------------------
    def init_local(self) -> None:
        """Fill the block with the initial roles and identity mapping.

        A pristine block already reads the shared template (which holds
        exactly this content), so the per-rank fill is skipped entirely;
        only an already-written block is explicitly re-initialised.
        """
        if self._seg.pristine:
            return
        self._fill_initial(self._cells_rw())

    def _fill_initial(self, cells: np.ndarray) -> None:
        """Write the initial roles and identity map into ``cells``.

        Array fills rather than per-rank loops; equivalent to writing
        ``cfg.role_of(rank)`` for every rank (workers, then idles, with
        the last rank as FD) and the identity map.
        """
        cells[:] = 0
        statuses = cells[self._off_status : self._off_status + self.cfg.n_ranks]
        statuses[:] = int(Role.IDLE)
        statuses[: self.cfg.n_workers] = int(Role.WORKING)
        statuses[self.cfg.fd_rank] = int(Role.FD)
        cells[self._off_map : self._off_map + self.cfg.n_workers] = np.arange(
            self.cfg.n_workers, dtype=np.int64
        )

    # ------------------------------------------------------------------
    # worker-side acknowledgment (the zero-cost check)
    # ------------------------------------------------------------------
    def check_failure(self, seen_epoch: int) -> Optional[FailureNotice]:
        """Local-memory check: a new notice since ``seen_epoch``?"""
        cells = self._seg.cells64()
        if not cells[1] or cells[0] <= seen_epoch:
            return None
        return self.read_notice()

    def read_notice(self) -> FailureNotice:
        """Parse the local block's current notice.

        Within one world a notice's content is a pure function of its
        epoch (the FD composes it once and byte-copies it everywhere), so
        the parse — O(n_ranks) tuple and dict building — runs once per
        epoch per world instead of once per rank; every other rank gets
        the shared, never-mutated :class:`FailureNotice`.
        """
        epoch = self.epoch
        world = self.ctx.world
        cache = getattr(world, "_ft_notice_cache", None)
        if cache is None:
            cache = {}
            world._ft_notice_cache = cache  # type: ignore[attr-defined]
        notice = cache.get(epoch)
        if notice is None:
            notice = FailureNotice(
                epoch=epoch,
                failed=tuple(self.failed_list()),
                rescues=tuple(self.rescue_list()),
                status=tuple(int(s) for s in self.statuses()),
                rank_map=self.rank_map(),
            )
            cache[epoch] = notice
        return notice

    # ------------------------------------------------------------------
    # FD-side composition and broadcast
    # ------------------------------------------------------------------
    def compose_notice(self, epoch: int, failed: List[int], rescues: List[int],
                       statuses: np.ndarray,
                       rank_map: Union[Dict[int, int], np.ndarray]) -> None:
        """Write a notice into the *local* block (the FD's staging copy).

        ``rank_map`` is either the historical logical->physical dict or a
        dense array indexed by logical rank (the SoA detector state) —
        both land in the same cells.
        """
        max_failed = self.cfg.n_ranks
        if len(failed) > max_failed:
            raise ValueError(f"{len(failed)} failures exceed capacity {max_failed}")
        cells = self._cells_rw()
        cells[0] = epoch
        cells[1] = 1
        cells[3] = len(failed)
        cells[4] = len(rescues)
        cells[self._off_failed : self._off_failed + max_failed] = 0
        cells[self._off_failed : self._off_failed + len(failed)] = failed
        cells[self._off_rescues : self._off_rescues + max_failed] = 0
        cells[self._off_rescues : self._off_rescues + len(rescues)] = rescues
        cells[self._off_status : self._off_status + self.cfg.n_ranks] = statuses
        if isinstance(rank_map, np.ndarray):
            cells[self._off_map : self._off_map + len(rank_map)] = rank_map
        else:
            for logical, phys in rank_map.items():
                cells[self._off_map + logical] = phys
        # the FD re-stages epoch content here before broadcasting it: drop
        # any notice parsed from a stale read of this epoch's cells
        cache = getattr(self.ctx.world, "_ft_notice_cache", None)
        if cache is not None:
            cache.pop(epoch, None)

    def mark_done_local(self) -> None:
        self._cells_rw()[2] = 1

    def broadcast(self, targets: List[int], queue_id: int = 0,
                  timeout: float = 1.0) -> Generator[Any, Any, None]:
        """Generator: one-sided-write this block into every target rank.

        In the vectorized rank-state mode the whole fan-out is one
        round-priced ``write_round`` — a single queue slot and O(1)
        simulator events on a uniform fabric, with identical virtual
        timing (data lands per target at its own latency; a dead target
        hangs the round's completion so the final wait still times out
        and purges).  The scalar reference mode posts one write per
        target; writes to dead targets simply never complete and the
        queue is purged afterwards so they cannot wedge later broadcasts.
        """
        from repro.gaspi.constants import ReturnCode

        nbytes = self.n_cells * _I8
        dsts = [t for t in targets if t != self.ctx.rank]
        if dsts and rankstate.kernels().round_broadcast:
            ret = self.ctx.write_round(FT_SEGMENT, 0, nbytes, dsts,
                                       FT_SEGMENT, 0, queue_id)
            if ret is not ReturnCode.SUCCESS:
                # queue full (wedged by ops stuck on dead ranks): drain —
                # purge on timeout — and repost
                drained = yield from self.ctx.wait(queue_id, timeout)
                if drained is not ReturnCode.SUCCESS:
                    self.ctx.queue_purge(queue_id)
                self.ctx.write_round(FT_SEGMENT, 0, nbytes, dsts,
                                     FT_SEGMENT, 0, queue_id)
        else:
            for target in dsts:
                ret = self.ctx.write(FT_SEGMENT, 0, nbytes, target,
                                     FT_SEGMENT, 0, queue_id)
                if ret is not ReturnCode.SUCCESS:
                    # queue full (e.g. many targets, or wedged by writes to
                    # dead ranks): drain — purge on timeout — and repost, so
                    # no healthy rank silently misses the notice
                    drained = yield from self.ctx.wait(queue_id, timeout)
                    if drained is not ReturnCode.SUCCESS:
                        self.ctx.queue_purge(queue_id)
                    retry = self.ctx.write(FT_SEGMENT, 0, nbytes, target,
                                           FT_SEGMENT, 0, queue_id)
                    if retry is not ReturnCode.SUCCESS:  # pragma: no cover
                        continue  # freshly purged queue still full: give up
        ret = yield from self.ctx.wait(queue_id, timeout)
        if ret is not ReturnCode.SUCCESS:
            self.ctx.queue_purge(queue_id)
        return ret
