"""Spare-pool bookkeeping: rescue assignment on the FD side (paper §IV).

The paper's non-shrinking design pre-allocates idle spare processes at
job launch (``FTConfig.n_spares``); on failure the FD promotes the
lowest-ranked idle spares to adopt the failed workers' logical
identities.  The pool size bounds the failure budget (§IV-D restriction
1), and once it runs dry the FD itself joins as the final rescue —
ending fault tolerance (restriction 2).  The promotion itself is traced
on the rescue side as a ``spare_promote`` span (`repro.ft.recovery`);
this module is pure bookkeeping and runs in zero virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.ft import rankstate
from repro.ft.roles import Role


@dataclass(frozen=True)
class RescueAssignment:
    """Outcome of matching failed ranks with spares."""

    failed: List[int]
    rescues: List[int]
    #: True when the FD itself had to join as the final rescue (ends the
    #: program's fault-tolerance capability, paper Sect. IV-D restriction 2)
    fd_joined: bool

    @property
    def recoverable(self) -> bool:
        return len(self.rescues) == len(self.failed)

    @property
    def shortfall(self) -> int:
        return len(self.failed) - len(self.rescues)


class SparePool:
    """The FD's view of who can still be turned into a worker."""

    def __init__(self, statuses: np.ndarray, fd_rank: int) -> None:
        self.statuses = statuses  # shared view into the FD's control block
        self.fd_rank = fd_rank

    def idle_ranks(self) -> List[int]:
        return rankstate.kernels().idle_ranks(self.statuses)

    def assign(self, failed: Sequence[int]) -> RescueAssignment:
        """Pick rescues for ``failed`` (lowest idle ranks first).

        Updates the status array: failed ranks become ``FAILED``, assigned
        rescues become ``WORKING``.  If the idle pool runs dry, the FD
        itself is assigned as the last rescue (paper Fig. 3: "The FD
        process itself joins the worker group if no idle process is
        further available").
        """
        failed = sorted(int(f) for f in failed)
        for rank in failed:
            self.statuses[rank] = Role.FAILED
        pool = self.idle_ranks()
        rescues = pool[: len(failed)]
        fd_joined = False
        if len(rescues) < len(failed) and self.statuses[self.fd_rank] == Role.FD:
            rescues.append(self.fd_rank)
            fd_joined = True
        for rank in rescues:
            self.statuses[rank] = Role.WORKING
        return RescueAssignment(failed=failed, rescues=rescues, fd_joined=fd_joined)
