"""Application-driven fault tolerance for GASPI programs (the paper's core).

Components, mirroring Sect. IV of the paper:

* :mod:`repro.ft.roles` / :mod:`repro.ft.config` — worker / idle / FD role
  assignment over the physical ranks, with spares pre-allocated at job
  start (non-shrinking recovery).
* :mod:`repro.ft.control` — the per-rank failure-acknowledgment control
  block, written one-sidedly by the FD into every healthy rank's global
  memory; workers poll a *local* flag (zero cost while failure-free).
* :mod:`repro.ft.detector` — the dedicated fault-detector process
  (Listing 1): periodic one-sided ping scan, rescue assignment, notice
  broadcast; optional threaded scanning and the FD-watchdog extension.
* :mod:`repro.ft.recovery` — communication reconstruction (Listing 2):
  identity takeover, ``gaspi_proc_kill`` of suspects, group rebuild with
  blocking commit, checkpoint-version agreement.
* :mod:`repro.ft.app` — the generic application driver (Fig. 3 flowchart)
  tying roles, detection, recovery and checkpointing together around an
  :class:`FTProgram`.
* :mod:`repro.ft.strategies` — the alternative detectors the paper
  evaluates qualitatively (all-to-all ping, neighbor ring).
"""

from repro.ft.roles import Role
from repro.ft.config import FTConfig
from repro.ft.control import ControlBlock, FailureNotice, FT_SEGMENT
from repro.ft.rankmap import ActiveRankMap
from repro.ft.spares import SparePool, RescueAssignment
from repro.ft.detector import fd_process, scan_once
from repro.ft.recovery import perform_recovery, RecoveryResult
from repro.ft.app import FTContext, FTProgram, ft_main, run_ft_application

__all__ = [
    "Role",
    "FTConfig",
    "ControlBlock",
    "FailureNotice",
    "FT_SEGMENT",
    "ActiveRankMap",
    "SparePool",
    "RescueAssignment",
    "fd_process",
    "scan_once",
    "perform_recovery",
    "RecoveryResult",
    "FTContext",
    "FTProgram",
    "ft_main",
    "run_ft_application",
]
