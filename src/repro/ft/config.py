"""Configuration of the fault-tolerance layer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checkpoint.manager import CheckpointConfig
from repro.ft.roles import Role


@dataclass
class FTConfig:
    """Shape and timing of one fault-tolerant job.

    The job uses ``n_workers + n_spares`` physical ranks.  The *last* rank
    is the fault detector; the other ``n_spares - 1`` spares idle until the
    FD designates them as rescues (paper Sect. IV: "One of the
    pre-determined idle processes serves as a failure detector process.
    The rest of the idle processes stay idle...").  Paper defaults:
    scan every 3 s, communication timeout 1 s.
    """

    n_workers: int = 4
    n_spares: int = 2
    #: seconds between the FD's ping scans (paper: 3 s)
    fd_scan_period: float = 3.0
    #: timeout used by workers' blocking communication retries (paper: 1 s)
    comm_timeout: float = 1.0
    #: concurrent pings during a scan (paper's threaded FD uses 8)
    fd_threads: int = 1
    #: how often idle processes poll their control block
    idle_poll: float = 0.1
    #: fixed software cost the FD pays per scan (queue/loop setup); fitted
    #: against Table I together with the 1 ms/process ping cost
    scan_setup_overhead: float = 2.0e-3
    #: promote an idle process to FD if the FD itself dies (extension of
    #: the paper's future work: "the redundancy approach can be
    #: implemented to make the FD process fault tolerant")
    fd_redundancy: bool = False
    #: checkpoint every this many solver iterations (paper: 500)
    checkpoint_interval: int = 500
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("need at least one worker")
        if self.n_spares < 1:
            raise ValueError("need at least one spare (the FD process)")
        if self.fd_threads < 1:
            raise ValueError("fd_threads must be >= 1")

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return self.n_workers + self.n_spares

    @property
    def fd_rank(self) -> int:
        """The initially designated fault-detector process."""
        return self.n_ranks - 1

    @property
    def watchdog_rank(self) -> int:
        """The idle that takes over on FD death (``fd_redundancy``)."""
        return self.n_ranks - 2

    @property
    def idle_ranks(self) -> range:
        return range(self.n_workers, self.n_ranks - 1)

    @property
    def max_recoverable_failures(self) -> int:
        """Idle rescues plus the FD joining as the last resort."""
        return self.n_spares

    def role_of(self, rank: int) -> Role:
        """Initial role of a physical rank."""
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} outside [0, {self.n_ranks})")
        if rank < self.n_workers:
            return Role.WORKING
        if rank == self.fd_rank:
            return Role.FD
        return Role.IDLE
