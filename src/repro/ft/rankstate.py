"""Struct-of-arrays rank-state kernels (with a retained scalar reference).

The FT layer's per-rank bookkeeping — who is failed, who is idle, which
physical rank backs which logical worker — used to be dict/list scans
costing ``O(n_ranks)`` Python iterations per detector round and
``O(n_ranks^2)`` per group rebuild.  At the paper's 256-node scale (and
the 1024–4096 scans ROADMAP item 1 asks for) those loops dominate wall
time.  This module concentrates every such sweep into named kernels over
NumPy arrays: a detector scan, a rescue assignment, and a group rebuild
each cost a handful of set-difference/nonzero array ops.

Two interchangeable kernel sets are provided:

* ``vectorized`` (default) — the NumPy struct-of-arrays fast path;
* ``scalar`` — the pre-vectorization reference implementation, kept
  callable so tests can assert *result identity* across randomized
  failure patterns and the weak-scaling bench can measure the true
  seed-equivalent baseline.

Both sets produce identical values (plain Python ints/lists out, so no
``np.int64`` leaks into protocol state); they differ only in cost.  Switch
globally with :func:`set_mode` or temporarily with :func:`use`::

    with rankstate.use("scalar"):
        outcome = run_ft_scenario(...)
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.gaspi.groups import _Members
from repro.ft.roles import Role

MODES = ("vectorized", "scalar")

_mode = "vectorized"


def mode() -> str:
    """The currently active kernel-set name."""
    return _mode


def set_mode(new_mode: str) -> None:
    """Select the kernel set globally (``vectorized`` or ``scalar``)."""
    global _mode
    if new_mode not in MODES:
        raise ValueError(f"unknown rankstate mode {new_mode!r}; pick from {MODES}")
    _mode = new_mode


@contextlib.contextmanager
def use(new_mode: str) -> Iterator[None]:
    """Temporarily select a kernel set (restores the previous one)."""
    previous = _mode
    set_mode(new_mode)
    try:
        yield
    finally:
        set_mode(previous)


def kernels() -> "type[VectorizedKernels]":
    """The active kernel set."""
    return VectorizedKernels if _mode == "vectorized" else ScalarKernels


def _replica_ring_holders_scalar(ring_nodes: np.ndarray, r: int) -> np.ndarray:
    """Reference replica placement: per-position forward scans.

    For every ring position ``i`` walk forward (cyclically) and collect
    the first ``r`` positions whose nodes are all distinct from each
    other, from ``i``'s own node *and* from the node of ``i``'s mirror
    neighbor (the first foreign node after ``i`` — the rank that already
    holds the neighbor-backend copy).  Rows are padded with ``-1`` when
    fewer than ``r`` eligible holders exist (small or node-shared rings).
    """
    d = [int(x) for x in np.asarray(ring_nodes)]
    n = len(d)
    out = np.full((n, r), -1, dtype=np.int64)
    for i in range(n):
        mirror_node = -1
        for step in range(1, n):
            j = (i + step) % n
            if d[j] != d[i]:
                mirror_node = d[j]
                break
        excluded = {d[i], mirror_node}
        k = 0
        for step in range(1, n):
            if k == r:
                break
            j = (i + step) % n
            if d[j] in excluded:
                continue
            out[i, k] = j
            excluded.add(d[j])
            k += 1
    return out


class VectorizedKernels:
    """NumPy struct-of-arrays kernels (the fast path)."""

    #: whether the detector must re-derive its target list on every scan
    #: (the scalar reference rebuilt the comprehension each round; the
    #: vectorized detector derives once and reuses until a failure)
    derive_targets_each_scan = False
    #: whether ping sweeps use the transport's single-callback batched path
    batched_sweep = True
    #: whether notice broadcasts use the round-priced ``write_round`` fan
    round_broadcast = True
    #: whether checkpoint mirrors route through the world-level
    #: ``CheckpointManager`` round-batched data plane (one vectorized
    #: pricing call + shared staging arena per mirror round) instead of
    #: the per-library helper process
    round_checkpoint = True

    # ------------------------------------------------------------------
    # detector state
    # ------------------------------------------------------------------
    @staticmethod
    def avoid_mask(statuses: np.ndarray) -> np.ndarray:
        """Boolean "known dead" mask from the status array."""
        return np.asarray(statuses) == int(Role.FAILED)

    @staticmethod
    def mark_avoided(avoid: np.ndarray, ranks: Sequence[int]) -> None:
        avoid[np.asarray(list(ranks), dtype=np.int64)] = True

    @staticmethod
    def scan_targets(avoid: np.ndarray, self_rank: int) -> List[int]:
        """Ranks the FD must ping: everyone not itself and not avoided."""
        mask = ~avoid
        mask[self_rank] = False
        targets: List[int] = np.flatnonzero(mask).tolist()
        return targets

    @staticmethod
    def split_failed(
        failed_now: Sequence[int], rank_map_arr: np.ndarray
    ) -> Tuple[List[int], List[int]]:
        """Partition a failure batch into (sorted workers, other ranks)."""
        f = np.asarray(list(failed_now), dtype=np.int64)
        worker = np.isin(f, rank_map_arr)
        failed_workers: List[int] = np.sort(f[worker]).tolist()
        failed_others: List[int] = f[~worker].tolist()
        return failed_workers, failed_others

    @staticmethod
    def healthy_targets(avoid: np.ndarray, statuses: np.ndarray) -> List[int]:
        """Broadcast targets: not avoided and not status-FAILED."""
        mask = (~avoid) & (np.asarray(statuses) != int(Role.FAILED))
        healthy: List[int] = np.flatnonzero(mask).tolist()
        return healthy

    # ------------------------------------------------------------------
    # spares / roles
    # ------------------------------------------------------------------
    @staticmethod
    def idle_ranks(statuses: np.ndarray) -> List[int]:
        idles: List[int] = np.flatnonzero(
            np.asarray(statuses) == int(Role.IDLE)
        ).tolist()
        return idles

    @staticmethod
    def ranks_with_roles(statuses: np.ndarray, roles: Sequence[Role]) -> List[int]:
        s = np.asarray(statuses)
        mask = np.zeros(s.shape, dtype=bool)
        for role in roles:
            mask |= s == int(role)
        ranks: List[int] = np.flatnonzero(mask).tolist()
        return ranks

    # ------------------------------------------------------------------
    # rank map
    # ------------------------------------------------------------------
    @staticmethod
    def apply_rescues(
        rank_map_arr: np.ndarray, failed: Sequence[int], rescues: Sequence[int]
    ) -> np.ndarray:
        """New map array with ``failed[i]`` replaced by ``rescues[i]``.

        Pairing truncates to the shorter list (the unrecoverable-batch
        case), matching the historical ``dict(zip(failed, rescues))``.
        """
        n = int(np.max(rank_map_arr)) + 1 if rank_map_arr.size else 0
        k = min(len(failed), len(rescues))
        hi = max(n, (max(failed[:k]) + 1) if k else 0)
        repl = np.arange(hi, dtype=np.int64)
        if k:
            repl[np.asarray(list(failed[:k]), dtype=np.int64)] = np.asarray(
                list(rescues[:k]), dtype=np.int64
            )
        return repl[rank_map_arr]

    @staticmethod
    def map_members(rank_map: Dict[int, int]) -> List[int]:
        """Sorted physical members of a logical->physical map."""
        members: List[int] = np.sort(
            np.fromiter(rank_map.values(), dtype=np.int64, count=len(rank_map))
        ).tolist()
        return members

    @staticmethod
    def logical_in_map(rank_map: Dict[int, int], phys: int) -> Optional[int]:
        """The logical rank mapped to ``phys`` (None when absent)."""
        arr = np.fromiter(rank_map.values(), dtype=np.int64, count=len(rank_map))
        hits = np.flatnonzero(arr == phys)
        if hits.size == 0:
            return None
        keys = list(rank_map.keys())
        return keys[int(hits[0])]

    # ------------------------------------------------------------------
    # checkpoint neighbor ring
    # ------------------------------------------------------------------
    @staticmethod
    def ring_neighbors(ring_nodes: np.ndarray) -> np.ndarray:
        """Mirror-partner ring positions for a whole checkpoint ring at once.

        ``ring_nodes[i]`` is the node hosting ring position ``i`` (positions
        are the sorted participants).  Returns ``out[i]`` = the first ring
        position after ``i`` (cyclically) on a *different* node, or ``-1``
        when every participant shares one node — the per-position
        equivalent of :func:`repro.checkpoint.neighbor.neighbor_of`, built
        in O(n) instead of an O(n) rescan per rank.

        Works off the node-change points of the ring: with no change point
        in ``[i, k)``, positions ``i..k`` all share ``ring_nodes[i]``, so
        the first change point ``k`` at-or-after ``i`` puts the first
        foreign node at ``k + 1``.
        """
        d = np.asarray(ring_nodes, dtype=np.int64)
        n = int(d.shape[0])
        if n == 0:
            return np.empty(0, dtype=np.int64)
        change = np.flatnonzero(d != np.roll(d, -1))
        if change.size == 0:
            return np.full(n, -1, dtype=np.int64)
        idx = np.searchsorted(change, np.arange(n))
        first = change[np.where(idx == change.size, 0, idx)]
        out: np.ndarray = (first + 1) % n
        return out

    @staticmethod
    def replica_ring_holders(ring_nodes: np.ndarray, r: int) -> np.ndarray:
        """Replica-holder ring positions for a whole ring at once.

        ``out[i]`` lists the ``r`` ring positions (``-1``-padded) holding
        ring position ``i``'s replicated checkpoint: the first ``r``
        positions after ``i`` (cyclically) on nodes distinct from each
        other, from ``i``'s own node and from ``i``'s mirror neighbor's
        node — the ReStore-style placement rule of
        :mod:`repro.checkpoint.replicated`.

        Fast path: with every ring position on its own node (the paper's
        one-rank-per-node testbed) and ``n >= r + 2``, the eligible
        holders are simply the ``r`` positions after the mirror neighbor,
        so the whole map is one broadcast add — and each position holds
        exactly ``r`` owners (perfectly balanced load).  Any other node
        layout falls back to the shared scalar reference.
        """
        d = np.asarray(ring_nodes, dtype=np.int64)
        n = int(d.shape[0])
        if n == 0:
            return np.empty((0, r), dtype=np.int64)
        if n >= r + 2 and np.unique(d).size == n:
            out: np.ndarray = (
                np.arange(n, dtype=np.int64)[:, None] + 2
                + np.arange(r, dtype=np.int64)[None, :]
            ) % n
            return out
        return _replica_ring_holders_scalar(d, r)

    # ------------------------------------------------------------------
    # group rebuild
    # ------------------------------------------------------------------
    @staticmethod
    def group_fill(group: "object", members: Sequence[int]) -> None:
        """Populate a fresh group with sorted ``members`` (flyweight).

        Every rebuilding rank computes the same sorted member list, so
        the membership is interned once per distinct list and *adopted*
        — the group shares the tuple and its set instead of building a
        private list/set per rank (the historical ``add_many`` path).
        """
        group.adopt_members(  # type: ignore[attr-defined]
            _Members.intern(tuple(sorted(members))))


class ScalarKernels:
    """The pre-vectorization loops, retained as the reference baseline."""

    derive_targets_each_scan = True
    batched_sweep = False
    round_broadcast = False
    round_checkpoint = False

    @staticmethod
    def avoid_mask(statuses: np.ndarray) -> np.ndarray:
        n = len(statuses)
        mask = np.zeros(n, dtype=bool)
        for r in range(n):
            if statuses[r] == Role.FAILED:
                mask[r] = True
        return mask

    @staticmethod
    def mark_avoided(avoid: np.ndarray, ranks: Sequence[int]) -> None:
        for r in ranks:
            avoid[int(r)] = True

    @staticmethod
    def scan_targets(avoid: np.ndarray, self_rank: int) -> List[int]:
        return [
            r for r in range(len(avoid))
            if r != self_rank and not avoid[r]
        ]

    @staticmethod
    def split_failed(
        failed_now: Sequence[int], rank_map_arr: np.ndarray
    ) -> Tuple[List[int], List[int]]:
        values = [int(p) for p in rank_map_arr]
        failed_workers = sorted(int(r) for r in failed_now if int(r) in values)
        failed_others = [int(r) for r in failed_now if int(r) not in failed_workers]
        return failed_workers, failed_others

    @staticmethod
    def healthy_targets(avoid: np.ndarray, statuses: np.ndarray) -> List[int]:
        return [
            r for r in range(len(avoid))
            if not avoid[r] and statuses[r] != Role.FAILED
        ]

    @staticmethod
    def idle_ranks(statuses: np.ndarray) -> List[int]:
        return [
            int(r) for r in range(len(statuses))
            if statuses[r] == Role.IDLE
        ]

    @staticmethod
    def ranks_with_roles(statuses: np.ndarray, roles: Sequence[Role]) -> List[int]:
        wanted = tuple(int(role) for role in roles)
        return [
            int(r) for r in range(len(statuses))
            if int(statuses[r]) in wanted
        ]

    @staticmethod
    def apply_rescues(
        rank_map_arr: np.ndarray, failed: Sequence[int], rescues: Sequence[int]
    ) -> np.ndarray:
        replacement = dict(zip((int(f) for f in failed),
                               (int(r) for r in rescues)))
        return np.array(
            [replacement.get(int(p), int(p)) for p in rank_map_arr],
            dtype=np.int64,
        )

    @staticmethod
    def map_members(rank_map: Dict[int, int]) -> List[int]:
        return sorted(int(p) for p in rank_map.values())

    @staticmethod
    def logical_in_map(rank_map: Dict[int, int], phys: int) -> Optional[int]:
        for logical, p in rank_map.items():
            if p == phys:
                return logical
        return None

    @staticmethod
    def ring_neighbors(ring_nodes: np.ndarray) -> np.ndarray:
        # the historical shape: an independent forward scan per position
        d = [int(x) for x in np.asarray(ring_nodes)]
        n = len(d)
        out = np.full(n, -1, dtype=np.int64)
        for i in range(n):
            for step in range(1, n):
                j = (i + step) % n
                if d[j] != d[i]:
                    out[i] = j
                    break
        return out

    @staticmethod
    def replica_ring_holders(ring_nodes: np.ndarray, r: int) -> np.ndarray:
        # the reference forward scans, shared with the vectorized set's
        # general-layout fallback (identical output by construction)
        return _replica_ring_holders_scalar(
            np.asarray(ring_nodes, dtype=np.int64), r
        )

    @staticmethod
    def group_fill(group: "object", members: Sequence[int]) -> None:
        # replicate the historical per-add list-membership scan so the
        # scalar baseline prices the O(n^2) rebuild it actually had
        seen: List[int] = []
        for r in members:
            if int(r) in seen:  # pragma: no cover - callers pass unique ranks
                raise ValueError(f"rank {r} already in group")
            seen.append(int(r))
            group.add(int(r))  # type: ignore[attr-defined]
