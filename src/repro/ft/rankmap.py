"""Logical-to-physical rank mapping (the paper's ``myrank_active``)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ActiveRankMap:
    """Bidirectional view of ``logical worker rank -> physical GASPI rank``."""

    logical_to_physical: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def initial(cls, n_workers: int) -> "ActiveRankMap":
        return cls({i: i for i in range(n_workers)})

    # ------------------------------------------------------------------
    def physical(self, logical: int) -> int:
        return self.logical_to_physical[logical]

    def logical_of(self, physical: int) -> Optional[int]:
        for logical, phys in self.logical_to_physical.items():
            if phys == physical:
                return logical
        return None

    def physical_ranks(self) -> List[int]:
        return sorted(self.logical_to_physical.values())

    @property
    def n_workers(self) -> int:
        return len(self.logical_to_physical)

    # ------------------------------------------------------------------
    def apply_recovery(self, failed: Sequence[int],
                       rescues: Sequence[int]) -> "ActiveRankMap":
        """New map with each failed physical replaced by its rescue.

        ``failed[i]`` is replaced by ``rescues[i]`` — the identity-takeover
        step ("rescue processes overtake the identity of the failed
        processes").
        """
        if len(rescues) < len(failed):
            raise ValueError("not enough rescues for the failed ranks")
        replacement = dict(zip(failed, rescues))
        out = {}
        for logical, phys in self.logical_to_physical.items():
            out[logical] = replacement.get(phys, phys)
        return ActiveRankMap(out)

    def undo_recovery(self, failed: Sequence[int],
                      rescues: Sequence[int]) -> "ActiveRankMap":
        """The inverse of :meth:`apply_recovery` (pre-failure placement).

        Used by rescues to locate the failed process's checkpoints: the old
        map tells them which node held the data and who its checkpoint
        neighbor was.
        """
        back = dict(zip(rescues, failed))
        return ActiveRankMap(
            {logical: back.get(phys, phys)
             for logical, phys in self.logical_to_physical.items()}
        )
