"""Communication reconstruction after failure (paper Listing 2).

Every member of the *new* worker group — survivors and freshly designated
rescues — executes :func:`perform_recovery`:

1. adopt identity: look up one's logical rank in the FD-authoritative rank
   map (rescues "overtake the identity of the failed processes");
2. delete the broken worker group (survivors only — rescues never had it);
3. ``gaspi_proc_kill`` every reported-failed rank, so transient and
   false-positive "failures" are forced to really die before the group is
   rebuilt;
4. purge communication queues of operations stuck on dead targets;
5. create and *commit* the new group (the blocking, linear-cost step the
   paper measures as OHF2).  If yet another failure notice arrives while
   committing, the whole procedure restarts with the newer notice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.gaspi.constants import ReturnCode
from repro.gaspi.context import GaspiContext
from repro.gaspi.groups import Group
from repro.checkpoint.neighbor import neighbor_of
from repro.ft.config import FTConfig
from repro.ft.control import ControlBlock, FailureNotice
from repro.ft.rankmap import ActiveRankMap
from repro.spmvm.team import Team


@dataclass
class RecoveryResult:
    """What one rank knows after a successful reconstruction."""

    notice: FailureNotice
    team: Team
    #: nodes that may hold this rank's logical predecessor's checkpoints
    #: (the failed process's node and its former checkpoint neighbor);
    #: empty for survivors
    extra_nodes: List[int]
    #: True if this rank joined the group during this recovery
    is_rescue: bool


def restore_sources(ctx: GaspiContext, notice: FailureNotice) -> List[int]:
    """Candidate nodes holding the checkpoints this rescue must inherit."""
    if ctx.rank not in notice.rescues:
        return []
    failed_phys = notice.failed[notice.rescues.index(ctx.rank)]
    machine = ctx.world.machine
    new_map = ActiveRankMap(dict(notice.rank_map))
    old_map = new_map.undo_recovery(notice.failed, notice.rescues)
    nodes = [machine.node_of(failed_phys)]
    old_neighbor = neighbor_of(
        failed_phys, old_map.physical_ranks(), machine.node_of
    )
    if old_neighbor is not None:
        nodes.append(machine.node_of(old_neighbor))
    return nodes


def perform_recovery(ctx: GaspiContext, cfg: FTConfig, block: ControlBlock,
                     notice: FailureNotice, old_group: Optional[Group] = None):
    """Generator: Listing 2 for one rank; returns :class:`RecoveryResult`.

    Restarts automatically if a newer failure notice supersedes ``notice``
    while the group commit is pending.
    """
    was_rescue = False
    while True:
        rank_map = dict(notice.rank_map)
        my_logical = None
        for logical, phys in rank_map.items():
            if phys == ctx.rank:
                my_logical = logical
                break
        if my_logical is None:
            raise RuntimeError(
                f"rank {ctx.rank} performed recovery but is not in the new "
                f"worker map {rank_map}"
            )
        was_rescue = was_rescue or ctx.rank in notice.rescues

        if old_group is not None:
            ctx.group_delete(old_group)
            old_group = None

        # enforce the death of everything the FD reported (false positives
        # and transient failures are made permanent before we rebuild)
        for failed in notice.failed:
            yield from ctx.proc_kill(failed, cfg.comm_timeout)

        for queue_id in range(ctx.n_queues):
            ctx.queue_purge(queue_id)

        group = ctx.group_create(tag=notice.epoch)
        for phys in sorted(rank_map.values()):
            ctx.group_add(group, phys)

        superseded = False
        while True:
            newer = block.check_failure(notice.epoch)
            if newer is not None:
                notice = newer
                superseded = True
                break
            ret = yield from ctx.group_commit(group, cfg.comm_timeout)
            if ret is ReturnCode.SUCCESS:
                break
        if superseded:
            continue

        team = Team(ctx=ctx, group=group, logical_rank=my_logical,
                    rank_map=rank_map)
        return RecoveryResult(
            notice=notice,
            team=team,
            extra_nodes=restore_sources(ctx, notice),
            is_rescue=was_rescue,
        )
