"""Non-shrinking communication recovery after failure (paper §IV, Listing 2).

This module implements the paper's *non-shrinking recovery*: the job keeps
its size after a failure because pre-allocated spare processes "overtake
the identity of the failed processes" — unlike ULFM's default shrinking
``MPI_Comm_shrink`` path (the paper's comparison target, `repro.ulfm`).
Every member of the *new* worker group — survivors and freshly designated
rescues — executes :func:`perform_recovery`:

1. adopt identity: look up one's logical rank in the FD-authoritative rank
   map carried by the failure notice;
2. delete the broken worker group (survivors only — rescues never had it);
3. ``gaspi_proc_kill`` every reported-failed rank, so transient and
   false-positive "failures" are forced to really die before the group is
   rebuilt (what makes the FD's false positives safe, §IV-B);
4. purge communication queues of operations stuck on dead targets;
5. create and *commit* the new group — the blocking, linear-in-group-size
   step the paper measures as **OHF2** ("re-initialisation" in Figure 4;
   ~10 s at 256 workers).  If yet another failure notice arrives while
   committing, the whole procedure restarts with the newer notice.

Parameter ↔ paper-symbol mapping: ``cfg.comm_timeout`` is the GASPI
timeout bounding each blocking step (``gaspi_proc_kill``,
``gaspi_group_commit``); ``notice.epoch`` numbers recovery rounds and is
the new group's tag; steps 3–5 together are the paper's OHF2, while the
subsequent checkpoint restore (`repro.checkpoint`) is OHF3 and the
redone iterations are OHF4.

Tracer events (``repro.obs``): a ``proc_kill`` span per enforced kill, a
``group_rebuild`` span ending at commit success, and a ``spare_promote``
span on each rescue covering its whole identity-adoption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.gaspi.constants import ReturnCode
from repro.gaspi.context import GaspiContext
from repro.gaspi.groups import Group
from repro.checkpoint.neighbor import neighbor_of
from repro.ft import rankstate
from repro.ft.config import FTConfig
from repro.ft.control import ControlBlock, FailureNotice
from repro.ft.rankmap import ActiveRankMap
from repro.spmvm.team import Team


@dataclass
class RecoveryResult:
    """What one rank knows after a successful reconstruction."""

    notice: FailureNotice
    team: Team
    #: nodes that may hold this rank's logical predecessor's checkpoints
    #: (the failed process's node and its former checkpoint neighbor);
    #: empty for survivors
    extra_nodes: List[int]
    #: True if this rank joined the group during this recovery
    is_rescue: bool


def restore_sources(ctx: GaspiContext, notice: FailureNotice) -> List[int]:
    """Candidate nodes holding the checkpoints this rescue must inherit."""
    if ctx.rank not in notice.rescues:
        return []
    failed_phys = notice.failed[notice.rescues.index(ctx.rank)]
    machine = ctx.world.machine
    new_map = ActiveRankMap(dict(notice.rank_map))
    old_map = new_map.undo_recovery(notice.failed, notice.rescues)
    nodes = [machine.node_of(failed_phys)]
    old_neighbor = neighbor_of(
        failed_phys, old_map.physical_ranks(), machine.node_of
    )
    if old_neighbor is not None:
        nodes.append(machine.node_of(old_neighbor))
    return nodes


def perform_recovery(ctx: GaspiContext, cfg: FTConfig, block: ControlBlock,
                     notice: FailureNotice, old_group: Optional[Group] = None,
                     ) -> Generator[Any, Any, "RecoveryResult"]:
    """Generator: Listing 2 for one rank; returns :class:`RecoveryResult`.

    Restarts automatically if a newer failure notice supersedes ``notice``
    while the group commit is pending.
    """
    was_rescue = False
    tracer = ctx.tracer
    t_start = ctx.now
    while True:
        ks = rankstate.kernels()
        # the notice's map is shared (epoch-cached, never mutated) — using
        # it directly avoids one O(n_workers) dict copy per recovering rank
        rank_map = notice.rank_map
        my_logical = ks.logical_in_map(rank_map, ctx.rank)
        if my_logical is None:
            raise RuntimeError(
                f"rank {ctx.rank} performed recovery but is not in the new "
                f"worker map {rank_map}"
            )
        was_rescue = was_rescue or ctx.rank in notice.rescues

        if old_group is not None:
            ctx.group_delete(old_group)
            old_group = None

        # enforce the death of everything the FD reported (false positives
        # and transient failures are made permanent before we rebuild)
        for failed in notice.failed:
            t_kill = ctx.now
            yield from ctx.proc_kill(failed, cfg.comm_timeout)
            if tracer.enabled:
                tracer.emit(ctx.now, ctx.rank, "proc_kill",
                            dur=ctx.now - t_kill, target=failed,
                            epoch=notice.epoch)

        for queue_id in range(ctx.n_queues):
            ctx.queue_purge(queue_id)

        t_rebuild = ctx.now
        group = ctx.group_create(tag=notice.epoch)
        ks.group_fill(group, ks.map_members(rank_map))

        superseded = False
        while True:
            newer = block.check_failure(notice.epoch)
            if newer is not None:
                notice = newer
                superseded = True
                break
            ret = yield from ctx.group_commit(group, cfg.comm_timeout)
            if ret is ReturnCode.SUCCESS:
                break
        if superseded:
            # retire the half-built group before the next round rebinds
            # the handle — an uncommitted group left behind would keep
            # the runtime's group table growing across recovery storms
            ctx.group_delete(group)
            continue

        if tracer.enabled:
            tracer.emit(ctx.now, ctx.rank, "group_rebuild",
                        dur=ctx.now - t_rebuild, epoch=notice.epoch,
                        size=len(rank_map))
            if was_rescue:
                tracer.emit(ctx.now, ctx.rank, "spare_promote",
                            dur=ctx.now - t_start, epoch=notice.epoch,
                            logical=my_logical)
        team = Team(ctx=ctx, group=group, logical_rank=my_logical,
                    rank_map=rank_map)
        return RecoveryResult(
            notice=notice,
            team=team,
            extra_nodes=restore_sources(ctx, notice),
            is_rescue=was_rescue,
        )
