"""The dedicated fault-detector process (paper §III-B/§IV-A, Listing 1).

This module implements the paper's *fault detection* mechanism: a
dedicated FD process — one of the pre-allocated spares — periodically
pings every process it does not already know to be dead (the paper's
``avoid_list``).  GASPI deliberately has no built-in fault detection on
the failure-free path; instead, ``gaspi_proc_ping`` diagnoses a broken
channel only after the transport's error timeout, which is why the
healthy-case overhead is zero by construction (paper §III-A).  A ping
returning ``GASPI_ERROR`` marks a fail-stop; the FD then assigns rescues
from the spare pool, updates the authoritative logical→physical rank map
and broadcasts the failure notice into every healthy rank's control block
by one-sided writes (§IV-B) — workers never block on detection, they read
a local flag.

Parameter ↔ paper-symbol mapping:

===========================  ====================================================
parameter                    paper quantity
===========================  ====================================================
``cfg.fd_scan_period``       the FD's health-check interval (§IV-A; 3 s in
                             the paper's runs — dominates detection latency)
``cfg.comm_timeout``         the GASPI timeout passed to blocking calls
                             (§III-A, ``GASPI_TIMEOUT`` discipline; 1 s)
``cfg.scan_setup_overhead``  fixed per-scan cost before the first ping
                             (Table I's offset at small node counts)
``cfg.fd_threads``           the threaded-FD width (§V-C: *k* simultaneous
                             failures detected at roughly the cost of one)
transport error timeout      the channel-teardown delay a dead target adds
                             to its first ping (~3.5 s; `cluster.transport`)
===========================  ====================================================

Detection latency as measured in Figure 4/Table I therefore decomposes as
``fd_scan_period/2`` (expected wait for the next scan) + scan time +
error timeout — the flat-in-node-count sum the paper reports.

Every lifecycle milestone is mirrored into the structured tracer
(``repro.obs``): per-ping ``ping`` events, a ``detection`` event at scan
resolution and a ``broadcast_flags`` span covering the notice broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Tuple

from repro.sim import Sleep
from repro.gaspi.constants import GASPI_TEST, ReturnCode
from repro.gaspi.context import GaspiContext
from repro.ft import rankstate
from repro.ft.config import FTConfig
from repro.ft.control import ControlBlock
from repro.ft.roles import Role
from repro.ft.spares import SparePool

#: payload of the passive message that shuts the FD down at job end
FD_STOP = "fd-stop"


@dataclass
class DetectionEvent:
    """One detected failure batch (for the overhead benchmarks)."""

    epoch: int
    t_detected: float          # when the scan resolved the failures
    t_acknowledged: float      # when the notice broadcast completed
    failed: Tuple[int, ...]
    rescues: Tuple[int, ...]
    fd_joined: bool


@dataclass
class FDStats:
    """What the FD measured while running (Table I inputs)."""

    scan_times: List[float] = field(default_factory=list)
    detections: List[DetectionEvent] = field(default_factory=list)
    outcome: str = "running"

    @property
    def avg_scan_time(self) -> float:
        return sum(self.scan_times) / len(self.scan_times) if self.scan_times else 0.0


def scan_once(ctx: GaspiContext, targets: List[int], fd_threads: int = 1,
              batched: bool = True) -> Generator[Any, Any, List[int]]:
    """Generator: ping every target; returns the list that failed.

    The whole round runs as **one** batched probe sweep
    (:meth:`GaspiContext.proc_ping_sweep`): pings still go out in groups
    of ``fd_threads`` — concurrently within a group (the threaded-FD
    behaviour), sequentially between groups — but the FD process blocks a
    single time for the round instead of once per target.  Per-ping
    ``ping`` tracer events are emitted from the sweep's recorded per-probe
    timings, so observability output is unchanged.  ``batched=False``
    drives the round through the scalar callback-chained sweep (the
    rank-state reference mode).
    """
    failed: List[int] = []
    if not targets:
        return failed
    ret, results = yield from ctx.proc_ping_sweep(
        targets, fd_threads, batched=batched
    )
    if ret is not ReturnCode.SUCCESS:
        return failed
    tracer = ctx.tracer
    fast_failed = getattr(results, "failed", None)
    if fast_failed is not None and not tracer.enabled:
        # all-alive rounds (the overwhelmingly common case) finish here
        # without touching a single per-target Python object
        return list(fast_failed)
    for rank, alive, t0, t1 in results:
        if not alive:
            failed.append(rank)
        if tracer.enabled:
            tracer.emit(t1, ctx.rank, "ping", dur=t1 - t0,
                        target=rank, alive=bool(alive))
    return failed


def fd_process(ctx: GaspiContext, cfg: FTConfig,
               block: Optional[ControlBlock] = None,
               takeover: bool = False,
               ) -> Generator[Any, Any, Tuple[str, dict]]:
    """Generator: the fault-detector main loop.

    Returns ``(outcome, stats)`` where outcome is

    * ``"stopped"`` — the application signalled completion;
    * ``"rescue"`` — the spare pool ran dry and this FD process joined the
      worker group as the final rescue (fault tolerance ends here);
    * ``"unrecoverable"`` — more failures than rescues; the notice was
      still broadcast so workers can terminate cleanly.

    With ``takeover=True`` (FD-watchdog extension) the process continues
    from its existing control block instead of initialising a fresh one.
    """
    if block is None:
        block = ControlBlock(ctx, cfg)
        if not takeover:
            block.init_local()
    # the FD mutates its status view in place as deaths are observed, so
    # it takes the writable (materialised) array, not the shared template
    statuses = block.statuses_rw()
    if takeover:
        statuses[ctx.rank] = Role.FD
    pool = SparePool(statuses, ctx.rank)
    ks = rankstate.kernels()
    rank_map_arr = block.rank_map_array()
    avoid = ks.avoid_mask(statuses)
    # S1: the target list is derived once from the avoid mask and reused
    # across scans; it is invalidated only when the mask changes (the
    # scalar reference rebuilds it every round, as the pre-SoA code did)
    targets: Optional[List[int]] = None
    epoch = block.epoch
    stats = FDStats()

    while True:
        # non-blocking stop check (the app's completion signal)
        ret, _, payload = yield from ctx.passive_receive(GASPI_TEST)
        if (ret is ReturnCode.SUCCESS and payload == FD_STOP) or block.done:
            stats.outcome = "stopped"
            return ("stopped", stats)

        yield Sleep(cfg.fd_scan_period)

        if targets is None or ks.derive_targets_each_scan:
            targets = ks.scan_targets(avoid, ctx.rank)
        t0 = ctx.now
        yield Sleep(cfg.scan_setup_overhead)
        failed_now = yield from scan_once(ctx, targets, cfg.fd_threads,
                                          batched=ks.batched_sweep)
        stats.scan_times.append(ctx.now - t0)
        if not failed_now:
            continue

        t_detected = ctx.now
        ks.mark_avoided(avoid, failed_now)
        targets = None  # avoid mask changed: re-derive before the next scan
        failed_workers, failed_others = ks.split_failed(failed_now, rank_map_arr)
        for rank in failed_others:
            statuses[rank] = Role.FAILED  # dead idles just shrink the pool

        if not failed_workers:
            continue  # no worker died: nothing to acknowledge

        assignment = pool.assign(failed_workers)
        epoch += 1
        rank_map_arr = ks.apply_rescues(rank_map_arr, assignment.failed,
                                        assignment.rescues)
        block.compose_notice(epoch, assignment.failed, assignment.rescues,
                             statuses, rank_map_arr)
        healthy = ks.healthy_targets(avoid, statuses)
        tracer = ctx.tracer
        if tracer.enabled:
            tracer.emit(t_detected, ctx.rank, "detection", epoch=epoch,
                        failed=list(assignment.failed),
                        rescues=list(assignment.rescues),
                        fd_joined=assignment.fd_joined)
        yield from block.broadcast(healthy, timeout=cfg.comm_timeout)
        if tracer.enabled:
            tracer.emit(ctx.now, ctx.rank, "broadcast_flags",
                        dur=ctx.now - t_detected, epoch=epoch,
                        n_targets=len(healthy))
        stats.detections.append(DetectionEvent(
            epoch=epoch,
            t_detected=t_detected,
            t_acknowledged=ctx.now,
            failed=tuple(assignment.failed),
            rescues=tuple(assignment.rescues),
            fd_joined=assignment.fd_joined,
        ))

        if assignment.fd_joined:
            stats.outcome = "rescue"
            return ("rescue", stats)
        if not assignment.recoverable:
            stats.outcome = "unrecoverable"
            return ("unrecoverable", stats)
