"""Process roles and status codes shared by the FT components."""

from __future__ import annotations

import enum


class Role(enum.IntEnum):
    """Role of a physical rank at a point in time.

    The values double as the entries of the control block's status array
    (``status_processes`` in the paper's Listing 2).
    """

    WORKING = 0
    IDLE = 1
    FD = 2
    FAILED = 3
