"""The fault-tolerant application driver (paper Fig. 3).

At startup the physical ranks split into workers, idle spares and the FD.
Workers run the application's compute loop; every blocking communication
checks the local failure-ack flag (via :class:`CommGuard`), and a posted
notice unwinds the loop into the recovery stage: rebuild the worker group
(rescues adopt failed identities), agree on the newest globally consistent
checkpoint version, restore, redo the lost work and continue.  Idles poll
until designated as rescues; the FD scans until the application completes
or joins the workers as the very last rescue.

Applications implement :class:`FTProgram` (setup / restore / run);
:func:`run_ft_application` wires everything onto the simulated cluster.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.sim import Sleep
from repro.cluster import FaultPlan, MachineSpec
from repro.gaspi.config import GaspiConfig
from repro.gaspi.constants import GASPI_BLOCK, AllreduceOp, ReturnCode
from repro.gaspi.context import GaspiContext
from repro.gaspi.runtime import GaspiRun, run_gaspi
from repro.checkpoint.pfs import ParallelFileSystem
from repro.checkpoint.replicated import CheckpointBackend, make_checkpoint_lib
from repro.spmvm.ft_hooks import CommGuard, FailureAcknowledged
from repro.spmvm.team import Team
from repro.ft import rankstate
from repro.ft.config import FTConfig
from repro.ft.control import ControlBlock, FailureNotice
from repro.ft.detector import FD_STOP, fd_process
from repro.ft.rankmap import ActiveRankMap
from repro.ft.recovery import perform_recovery
from repro.ft.roles import Role

SETUP_VERSION = 0


class FTContext:
    """Per-rank services handed to the application program."""

    def __init__(self, ctx: GaspiContext, cfg: FTConfig, block: ControlBlock,
                 team: Team, epoch: int, extra_nodes: List[int],
                 state_ckpt: CheckpointBackend,
                 setup_ckpt: CheckpointBackend) -> None:
        self.ctx = ctx
        self.cfg = cfg
        self.block = block
        self.team = team
        self.epoch = epoch
        self.extra_nodes = extra_nodes
        self.state_ckpt = state_ckpt
        self.setup_ckpt = setup_ckpt
        self.guard = CommGuard(lambda: self.block.check_failure(self.epoch))
        #: bookkeeping the experiments read back
        self.timeline: List[tuple] = []
        #: free-form per-rank counters (e.g. iterations executed across
        #: recoveries); carried over rebuilds like the timeline
        self.counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, ctx: GaspiContext, cfg: FTConfig, block: ControlBlock,
              team: Team, epoch: int, extra_nodes: List[int],
              pfs: Optional[ParallelFileSystem] = None,
              old: Optional["FTContext"] = None) -> "FTContext":
        """Create (or refresh, for survivors) the per-rank FT services."""
        participants = team.rank_map.values()
        if old is not None:
            old.state_ckpt.refresh(participants)
            old.setup_ckpt.refresh(participants)
            state_ckpt, setup_ckpt = old.state_ckpt, old.setup_ckpt
        else:
            state_cfg = dataclasses.replace(cfg.checkpoint, tag="state")
            setup_cfg = dataclasses.replace(cfg.checkpoint, tag="setup",
                                            keep_versions=1, pfs_every=0)
            state_ckpt = make_checkpoint_lib(ctx, team.logical_rank,
                                             participants, config=state_cfg,
                                             pfs=pfs)
            setup_ckpt = make_checkpoint_lib(ctx, team.logical_rank,
                                             participants, config=setup_cfg,
                                             pfs=pfs)
        merged_extra = set(extra_nodes)
        if old is not None:
            merged_extra |= set(old.extra_nodes)  # keep known data sources
        built = cls(ctx, cfg, block, team, epoch, sorted(merged_extra),
                    state_ckpt, setup_ckpt)
        if old is not None:
            built.timeline = old.timeline
            built.counters = old.counters
        return built

    def count(self, key: str, amount: float = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    @property
    def now(self) -> float:
        return self.ctx.now

    def mark(self, label: str, **info: Any) -> None:
        """Record a timeline event (read back by the benchmarks)."""
        self.timeline.append((self.now, label, info))

    def shutdown(self) -> None:
        self.state_ckpt.shutdown()
        self.setup_ckpt.shutdown()

    # ------------------------------------------------------------------
    # checkpoint services
    # ------------------------------------------------------------------
    def checkpoint(self, version: int, payload: Dict[str, Any],
                   nominal_bytes: Optional[int] = None,
                   ) -> Generator[Any, Any, None]:
        """Generator: periodic state checkpoint (local + async neighbor)."""
        self.mark("checkpoint", version=version)
        yield from self.state_ckpt.write_checkpoint(version, payload, nominal_bytes)

    def write_setup_checkpoint(self, payload: Dict[str, Any],
                               nominal_bytes: Optional[int] = None,
                               ) -> Generator[Any, Any, None]:
        """Generator: the one-time post-pre-processing checkpoint."""
        self.mark("setup-checkpoint")
        yield from self.setup_ckpt.write_checkpoint(SETUP_VERSION, payload,
                                                    nominal_bytes)

    def agree_min(self, value: int) -> Any:
        """Generator: team-wide integer MIN (guarded retry loop)."""
        import numpy as np

        while True:
            self.guard.assert_healthy()
            ret, result = yield from self.ctx.allreduce(
                np.array([value], dtype=np.int64), AllreduceOp.MIN,
                self.team.group, self.cfg.comm_timeout,
            )
            if ret is ReturnCode.SUCCESS:
                return int(result[0])

    def agree_restore_version(self) -> Generator[Any, Any, int]:
        """Generator: newest checkpoint version every rank can restore."""
        mine = self.state_ckpt.restorable_latest(self.extra_nodes)
        version = yield from self.agree_min(mine)
        return version

    def read_state_checkpoint(self, version: int,
                              ) -> Generator[Any, Any, Dict[str, Any]]:
        """Generator: restore the agreed periodic checkpoint payload."""
        _, payload = yield from self.state_ckpt.read_checkpoint(
            version, self.extra_nodes
        )
        return payload

    def read_setup_checkpoint(
        self,
    ) -> Generator[Any, Any, Optional[Dict[str, Any]]]:
        """Generator: the setup checkpoint, or ``None`` if the team agreed
        at least one rank cannot restore it (then everyone redoes setup)."""
        mine = self.setup_ckpt.restorable_latest(self.extra_nodes)
        agreed = yield from self.agree_min(1 if mine >= SETUP_VERSION else 0)
        if agreed == 0:
            return None
        _, payload = yield from self.setup_ckpt.read_checkpoint(
            SETUP_VERSION, self.extra_nodes
        )
        return payload


class FTProgram(abc.ABC):
    """The application contract of the Fig. 3 flowchart."""

    @abc.abstractmethod
    def setup(self, ftx: FTContext) -> Generator[Any, Any, Any]:
        """Generator: pre-processing from scratch; returns the work state.

        Should end by writing the setup checkpoint
        (``yield from ftx.write_setup_checkpoint(...)``).
        """

    @abc.abstractmethod
    def restore(self, ftx: FTContext,
                state_payload: Optional[Dict[str, Any]],
                ) -> Generator[Any, Any, Any]:
        """Generator: rebuild the work state after recovery.

        ``state_payload`` is the agreed periodic checkpoint (``None`` if no
        consistent version existed — restart from the beginning).
        """

    @abc.abstractmethod
    def run(self, ftx: FTContext, work: Any) -> Generator[Any, Any, Any]:
        """Generator: the compute loop; returns the program result.

        Must perform periodic checkpoints via ``ftx.checkpoint`` and let
        :class:`FailureAcknowledged` propagate out of blocking calls.
        """


# ----------------------------------------------------------------------
# role loops
# ----------------------------------------------------------------------
def _announce_done(ctx: GaspiContext, cfg: FTConfig, block: ControlBlock):
    """Generator: publish completion to the idle spares and the FD.

    *Every* worker announces (writes the done flag into each non-worker
    rank's control block and sends the FD its stop message): announcement
    must not hinge on any single rank surviving the final instants of the
    run.  The writes and the stop are idempotent.
    """
    block.mark_done_local()
    statuses = block.statuses()
    ks = rankstate.kernels()
    targets = ks.ranks_with_roles(statuses, (Role.IDLE, Role.FD))
    yield from block.broadcast(targets, timeout=cfg.comm_timeout)
    for rank in ks.ranks_with_roles(statuses, (Role.FD,)):
        yield from ctx.passive_send(rank, FD_STOP, timeout=cfg.comm_timeout)


def _rebuild_context(ctx: GaspiContext, cfg: FTConfig, block: ControlBlock,
                     notice: FailureNotice, old: Optional[FTContext],
                     pfs: Optional[ParallelFileSystem]):
    """Generator: run Listing 2 and wire fresh FT services around it."""
    recovery = yield from perform_recovery(
        ctx, cfg, block, notice,
        old_group=old.team.group if old is not None else None,
    )
    ftx = FTContext.build(
        ctx, cfg, block, recovery.team, recovery.notice.epoch,
        recovery.extra_nodes, pfs=pfs, old=old,
    )
    ftx.mark("recovered", epoch=recovery.notice.epoch,
             failed=recovery.notice.failed, rescue=recovery.is_rescue)
    return ftx


def worker_loop(ctx: GaspiContext, cfg: FTConfig, block: ControlBlock,
                program: FTProgram, ftx: FTContext, mode: str,
                pfs: Optional[ParallelFileSystem] = None,
                ) -> Generator[Any, Any, Dict[str, Any]]:
    """Generator: compute / recover until completion (worker side of Fig. 3)."""
    while True:
        try:
            if mode == "fresh":
                # the initial group commit runs inside the recovery scope:
                # a rank dying during startup unwinds the survivors into a
                # regular recovery instead of spinning on commit timeouts
                yield from _commit_initial_group(ctx, cfg, ftx)
                work = yield from program.setup(ftx)
            else:
                t_restore = ctx.now
                version = yield from ftx.agree_restore_version()
                ftx.mark("restore", version=version)
                payload = None
                if version >= 0:
                    payload = yield from ftx.read_state_checkpoint(version)
                work = yield from program.restore(ftx, payload)
                tracer = ctx.tracer
                if tracer.enabled:
                    tracer.emit(ctx.now, ctx.rank, "restore",
                                dur=ctx.now - t_restore, epoch=ftx.epoch,
                                version=version)
                    tracer.emit(ctx.now, ctx.rank, "rollback",
                                epoch=ftx.epoch, version=version)
            result = yield from program.run(ftx, work)
            # completion consensus: nobody declares the job done until the
            # whole team reached this point — a member dying in its final
            # iterations unwinds everyone into a regular recovery instead
            # of silently losing its share of the result
            while True:
                ftx.guard.assert_healthy()
                ret = yield from ctx.barrier(ftx.team.group, cfg.comm_timeout)
                if ret is ReturnCode.SUCCESS:
                    break
            yield from _announce_done(ctx, cfg, block)
            ftx.shutdown()
            return {
                "status": "done",
                "logical_rank": ftx.team.logical_rank,
                "result": result,
                "timeline": ftx.timeline,
                "counters": dict(ftx.counters),
                "t_done": ctx.now,
            }
        except FailureAcknowledged as ack:
            notice: FailureNotice = ack.notice
            ftx.mark("failure-ack", epoch=notice.epoch, failed=notice.failed)
            if not notice.recoverable:
                yield from _announce_done(ctx, cfg, block)
                ftx.shutdown()
                return {
                    "status": "unrecoverable",
                    "logical_rank": ftx.team.logical_rank,
                    "timeline": ftx.timeline,
                    "counters": dict(ftx.counters),
                    "t_done": ctx.now,
                }
            ftx = yield from _rebuild_context(ctx, cfg, block, notice, ftx, pfs)
            mode = "restore"


def idle_loop(ctx: GaspiContext, cfg: FTConfig, block: ControlBlock,
              program: FTProgram, pfs: Optional[ParallelFileSystem] = None,
              ) -> Generator[Any, Any, Dict[str, Any]]:
    """Generator: wait to be needed (idle side of Fig. 3)."""
    seen_epoch = 0
    is_watchdog = cfg.fd_redundancy and ctx.rank == cfg.watchdog_rank
    next_fd_check = ctx.now + cfg.fd_scan_period
    while True:
        if block.done:
            return {"status": "idle-exit"}
        notice = block.check_failure(seen_epoch)
        if notice is not None:
            seen_epoch = notice.epoch
            if ctx.rank in notice.rescues and ctx.rank in notice.rank_map.values():
                ftx = yield from _rebuild_context(ctx, cfg, block, notice,
                                                  None, pfs)
                return (yield from worker_loop(ctx, cfg, block, program, ftx,
                                               mode="restore", pfs=pfs))
        if is_watchdog and ctx.now >= next_fd_check:
            next_fd_check = ctx.now + cfg.fd_scan_period
            ret = yield from ctx.proc_ping(cfg.fd_rank, GASPI_BLOCK)
            if ret is ReturnCode.ERROR:
                return (yield from _fd_role(ctx, cfg, block, program, pfs,
                                            takeover=True))
        yield Sleep(cfg.idle_poll)


def _fd_role(ctx: GaspiContext, cfg: FTConfig, block: ControlBlock,
             program: FTProgram, pfs: Optional[ParallelFileSystem],
             takeover: bool = False):
    """Generator: run as FD; become the last rescue if spares run out."""
    outcome, stats = yield from fd_process(ctx, cfg, block=block,
                                           takeover=takeover)
    if outcome == "rescue":
        notice = block.read_notice()
        ftx = yield from _rebuild_context(ctx, cfg, block, notice, None, pfs)
        result = yield from worker_loop(ctx, cfg, block, program, ftx,
                                        mode="restore", pfs=pfs)
        result["fd_stats"] = stats
        return result
    return {"status": f"fd-{outcome}", "fd_stats": stats}


def ft_main(cfg: FTConfig, program: FTProgram,
            pfs_factory: Optional[Callable[..., ParallelFileSystem]] = None,
            ) -> Callable[[GaspiContext], Any]:
    """Build the per-rank main function for :func:`run_gaspi`."""
    pfs_cache: Dict[int, ParallelFileSystem] = {}
    # the identity map is the same on every worker and never mutated
    # (recoveries build fresh maps), so all initial Teams share one dict
    initial_map = ActiveRankMap.initial(cfg.n_workers).logical_to_physical

    def main(ctx: GaspiContext):
        pfs = None
        if pfs_factory is not None:
            if not pfs_cache:
                pfs_cache[0] = pfs_factory(ctx.world.sim)
            pfs = pfs_cache[0]
        block = ControlBlock(ctx, cfg)
        block.init_local()
        role = cfg.role_of(ctx.rank)
        if role is Role.FD:
            return (yield from _fd_role(ctx, cfg, block, program, pfs))
        if role is Role.IDLE:
            return (yield from idle_loop(ctx, cfg, block, program, pfs))
        team = Team(
            ctx=ctx,
            group=_initial_group(ctx, cfg),
            logical_rank=ctx.rank,
            rank_map=initial_map,
        )
        ftx = FTContext.build(ctx, cfg, block, team, epoch=0, extra_nodes=[],
                              pfs=pfs)
        return (yield from worker_loop(ctx, cfg, block, program, ftx,
                                       mode="fresh", pfs=pfs))

    return main


def _initial_group(ctx: GaspiContext, cfg: FTConfig):
    group = ctx.group_create(tag=0)
    rankstate.kernels().group_fill(group, range(cfg.n_workers))
    return group


def _commit_initial_group(ctx: GaspiContext, cfg: FTConfig, ftx: FTContext):
    """Generator: guarded commit of the initial worker group.

    Honours the paper's pre-communication discipline: the local failure
    flag is read before every commit attempt, so a failure during startup
    acknowledges instead of retrying the commit forever.
    """
    while True:
        ftx.guard.assert_healthy()
        ret = yield from ctx.group_commit(ftx.team.group, cfg.comm_timeout)
        if ret is ReturnCode.SUCCESS:
            return


# ----------------------------------------------------------------------
# launcher
# ----------------------------------------------------------------------
@dataclass
class FTRunResult:
    """Aggregated outcome of one fault-tolerant job."""

    run: GaspiRun
    cfg: FTConfig

    @property
    def elapsed(self) -> float:
        return self.run.elapsed

    def rank_result(self, rank: int) -> Any:
        return self.run.result(rank)

    def worker_results(self) -> Dict[int, Dict]:
        """Results of every rank that finished as a worker, by logical rank."""
        out = {}
        for rank, proc in self.run.procs.items():
            result = proc.result
            if isinstance(result, dict) and "logical_rank" in result:
                out[result["logical_rank"]] = result
        return out

    @property
    def fd_stats(self) -> Optional[Dict[str, Any]]:
        for proc in self.run.procs.values():
            result = proc.result
            if isinstance(result, dict) and "fd_stats" in result:
                return result["fd_stats"]
        return None

    @property
    def status(self) -> str:
        workers = self.worker_results()
        if not workers:
            return "no-workers-finished"
        statuses = {r["status"] for r in workers.values()}
        return statuses.pop() if len(statuses) == 1 else "mixed"


def run_ft_application(
    cfg: FTConfig,
    program: FTProgram,
    machine_spec: Optional[MachineSpec] = None,
    gaspi_config: Optional[GaspiConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    until: Optional[float] = None,
    pfs_factory: Optional[Callable[..., ParallelFileSystem]] = None,
) -> FTRunResult:
    """Run a fault-tolerant application on a simulated cluster."""
    run = run_gaspi(
        ft_main(cfg, program, pfs_factory=pfs_factory),
        n_ranks=cfg.n_ranks,
        machine_spec=machine_spec,
        config=gaspi_config,
        fault_plan=fault_plan,
        until=until,
    )
    return FTRunResult(run=run, cfg=cfg)
