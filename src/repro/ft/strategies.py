"""Alternative failure-detection strategies (paper Sect. IV-A b).

The paper rejects two designs in favour of the dedicated FD process:

1. **all-to-all**: every process periodically pings every other — not
   scalable, adds failure-free overhead, and multiple processes may detect
   *different* failure sets (consensus problem / deadlock risk);
2. **neighbor ring**: each process pings its successor; a hit triggers an
   all-to-all to obtain the global view — cheaper, but the same consensus
   problem on the trigger.

These are implemented here as per-iteration hooks so the ablation
benchmark can measure exactly what the paper argues: their failure-free
overhead versus the dedicated FD's zero-cost local flag check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Set

from repro.gaspi.context import GaspiContext
from repro.ft.detector import scan_once


@dataclass
class StrategyStats:
    """Accounting of detection work done inside the application loop."""

    checks: int = 0
    pings_sent: int = 0
    time_spent: float = 0.0
    detected: List[tuple] = field(default_factory=list)  # (t, failed ranks)


class DetectionStrategy:
    """Base: call ``maybe_check`` once per application iteration."""

    def __init__(self, ctx: GaspiContext, peers: List[int], period: float) -> None:
        self.ctx = ctx
        self.peers = [p for p in peers if p != ctx.rank]
        self.period = period
        self.stats = StrategyStats()
        self._next_check = ctx.now + period
        self._known_failed: Set[int] = set()

    def _due(self) -> bool:
        return self.ctx.now >= self._next_check

    def _live_peers(self) -> List[int]:
        return [p for p in self.peers if p not in self._known_failed]

    def maybe_check(self) -> Generator[Any, Any, Set[int]]:
        """Generator: run the strategy's periodic work if it is due.

        Returns the (possibly empty) set of *newly* detected failures.
        """
        raise NotImplementedError

    def _record(self, t0: float, failed: List[int]) -> Set[int]:
        self.stats.checks += 1
        self.stats.time_spent += self.ctx.now - t0
        fresh = set(failed) - self._known_failed
        if fresh:
            self._known_failed |= fresh
            self.stats.detected.append((self.ctx.now, tuple(sorted(fresh))))
        self._next_check = self.ctx.now + self.period
        return fresh


class LocalFlagStrategy(DetectionStrategy):
    """The dedicated-FD worker side: a local memory read, no messages."""

    def maybe_check(self) -> Generator[Any, Any, Set[int]]:
        if False:
            yield  # pragma: no cover - keeps this a generator
        t0 = self.ctx.now
        if not self._due():
            return set()
        return self._record(t0, [])


class AllToAllStrategy(DetectionStrategy):
    """Every process pings every other process, every period."""

    def maybe_check(self) -> Generator[Any, Any, Set[int]]:
        if not self._due():
            return set()
        t0 = self.ctx.now
        targets = self._live_peers()
        failed = yield from scan_once(self.ctx, targets)
        self.stats.pings_sent += len(targets)
        return self._record(t0, failed)


class NeighborRingStrategy(DetectionStrategy):
    """Ping only the ring successor; escalate to all-to-all on a hit."""

    def _successor(self) -> Optional[int]:
        ring = sorted(set(self._live_peers()) | {self.ctx.rank})
        if len(ring) < 2:
            return None
        idx = ring.index(self.ctx.rank)
        return ring[(idx + 1) % len(ring)]

    def maybe_check(self) -> Generator[Any, Any, Set[int]]:
        if not self._due():
            return set()
        t0 = self.ctx.now
        succ = self._successor()
        failed: List[int] = []
        if succ is not None:
            failed = yield from scan_once(self.ctx, [succ])
            self.stats.pings_sent += 1
            if failed:
                # escalate: global scan to learn the full failure set
                rest = [p for p in self._live_peers() if p != succ]
                failed += yield from scan_once(self.ctx, rest)
                self.stats.pings_sent += len(rest)
        return self._record(t0, failed)
