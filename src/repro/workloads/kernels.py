"""The model kernel: paper-scale Lanczos control flow, declared sizes.

:class:`ModelLanczosProgram` drives the *identical* fault-tolerance
machinery as the numeric :class:`~repro.solvers.ft_lanczos.FTLanczos` —
setup checkpoint, guarded per-iteration global reduction (the alpha dot
product's synchronisation), periodic neighbor-level checkpoints with the
paper's byte volumes, failure acknowledgment, recovery, redo-work — but
replaces the numerical payload with its calibrated time cost, so the
3500-iteration 256-worker runs of Figure 4 simulate in seconds.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.sim import Sleep
from repro.ft.app import FTContext, FTProgram
from repro.workloads.spec import WorkloadSpec


class ModelLanczosProgram(FTProgram):
    """Timing-faithful stand-in for the paper-scale Lanczos application."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def setup(self, ftx: FTContext):
        ftx.mark("setup-start")
        yield Sleep(self.spec.setup_time)
        yield from ftx.write_setup_checkpoint(
            {"spec": np.int64(self.spec.n_rows)},
            nominal_bytes=self.spec.setup_bytes_per_worker,
        )
        ftx.mark("setup-done")
        return {"step": 0}

    def restore(self, ftx: FTContext, state_payload: Optional[Dict[str, Any]]):
        setup_payload = yield from ftx.read_setup_checkpoint()
        if setup_payload is None:
            ftx.mark("setup-redo")
            yield Sleep(self.spec.setup_time)
            yield from ftx.write_setup_checkpoint(
                {"spec": np.int64(self.spec.n_rows)},
                nominal_bytes=self.spec.setup_bytes_per_worker,
            )
        step = int(state_payload["step"]) if state_payload is not None else 0
        ftx.mark("restored", step=step)
        return {"step": step}

    def run(self, ftx: FTContext, work: Dict[str, int]):
        spec = self.spec
        step = work["step"]
        iterations_executed = 0
        tracer = ftx.ctx.tracer
        while step < spec.n_iterations:
            # the alpha reduction: the iteration's (guarded) global sync
            t0 = ftx.now
            yield from ftx.agree_min(step)
            yield Sleep(spec.iteration_time)
            step += 1
            iterations_executed += 1
            ftx.count("iterations")
            if tracer.enabled:
                tracer.emit(ftx.now, ftx.ctx.rank, "solver_iter",
                            dur=ftx.now - t0, step=step)
            if step % spec.checkpoint_interval == 0:
                yield from ftx.checkpoint(
                    step // spec.checkpoint_interval,
                    {"step": np.int64(step)},
                    nominal_bytes=spec.checkpoint_bytes_per_worker,
                )
        return {"steps": step, "iterations_executed": iterations_executed}


def numeric_lanczos_program(generator, n_steps: int, checkpoint_interval: int,
                            time_model=None, **kwargs):
    """Convenience constructor for the numeric kernel (same call shape)."""
    from repro.solvers.ft_lanczos import FTLanczos

    return FTLanczos(
        generator=generator,
        n_steps=n_steps,
        checkpoint_interval=checkpoint_interval,
        time_model=time_model,
        **kwargs,
    )
