"""Workload specifications and the two interchangeable kernels.

The *numeric* kernel is :class:`repro.solvers.ft_lanczos.FTLanczos` on a
real (small) matrix — it proves numerical correctness.  The *model* kernel
(:class:`ModelLanczosProgram`) replays a paper-scale workload through the
identical FT control flow with declared sizes and calibrated per-iteration
times, which is how the paper-scale experiments (Figure 4, Table I) run in
seconds of wall time.
"""

from repro.workloads.spec import WorkloadSpec, PAPER_GRAPHENE, scaled_spec
from repro.workloads.kernels import ModelLanczosProgram, numeric_lanczos_program

__all__ = [
    "WorkloadSpec",
    "PAPER_GRAPHENE",
    "scaled_spec",
    "ModelLanczosProgram",
    "numeric_lanczos_program",
]
