"""Workload specifications (the paper's benchmark case and scaled variants)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.perfmodel.calibration import (
    PAPER_CHECKPOINT_BYTES,
    PAPER_ITERATION_TIME,
    PAPER_ITERATIONS,
    PAPER_MATRIX_NNZ,
    PAPER_MATRIX_ROWS,
    PAPER_WORKERS,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Dimensions + timing anchors of one Lanczos benchmark workload."""

    name: str
    n_rows: int
    nnz: int
    n_workers: int
    n_iterations: int
    checkpoint_interval: int
    #: global periodic-checkpoint volume across all workers
    checkpoint_bytes_global: int
    #: anchored per-iteration wall time (one worker, whole step)
    iteration_time: float
    #: modeled pre-processing (matrix generation + comm setup) per rank
    setup_time: float = 10.0
    #: global setup-checkpoint volume (matrix chunk + halo plans)
    setup_bytes_global: int = 0

    # ------------------------------------------------------------------
    @property
    def rows_per_worker(self) -> int:
        return self.n_rows // self.n_workers

    @property
    def nnz_per_worker(self) -> int:
        return self.nnz // self.n_workers

    @property
    def checkpoint_bytes_per_worker(self) -> int:
        return self.checkpoint_bytes_global // self.n_workers

    @property
    def setup_bytes_per_worker(self) -> int:
        if self.setup_bytes_global:
            return self.setup_bytes_global // self.n_workers
        # matrix chunk: ~12 B/nnz + plan metadata
        return 12 * self.nnz_per_worker

    @property
    def baseline_runtime(self) -> float:
        """Failure-free compute time (excl. setup) the spec implies."""
        return self.n_iterations * self.iteration_time

    def iteration_of_time(self, t_after_setup: float) -> int:
        return int(t_after_setup / self.iteration_time)

    def time_of_iteration(self, iteration: int) -> float:
        """Seconds after setup at which ``iteration`` completes."""
        return iteration * self.iteration_time


#: the paper's benchmark case (Sect. V-VI): graphene transport matrix,
#: 256 worker processes, 3500 iterations, checkpoint every 500
PAPER_GRAPHENE = WorkloadSpec(
    name="paper-graphene-256",
    n_rows=PAPER_MATRIX_ROWS,
    nnz=PAPER_MATRIX_NNZ,
    n_workers=PAPER_WORKERS,
    n_iterations=PAPER_ITERATIONS,
    checkpoint_interval=500,
    checkpoint_bytes_global=PAPER_CHECKPOINT_BYTES,
    iteration_time=PAPER_ITERATION_TIME,
    setup_time=20.0,
)


def scaled_spec(base: WorkloadSpec = PAPER_GRAPHENE, workers: int = 32,
                iterations: int = 350, name: str = "") -> WorkloadSpec:
    """A smaller instance with identical per-worker shape.

    Rows/nnz/checkpoint volume scale with the worker count so that
    per-worker quantities — and hence the anchored iteration time — stay
    those of the base workload; the iteration count shrinks the runtime.
    """
    factor = workers / base.n_workers
    return dataclasses.replace(
        base,
        name=name or f"{base.name}-x{workers}w{iterations}i",
        n_rows=int(base.n_rows * factor),
        nnz=int(base.nnz * factor),
        n_workers=workers,
        n_iterations=iterations,
        checkpoint_interval=max(1, int(base.checkpoint_interval *
                                       iterations / base.n_iterations)),
        checkpoint_bytes_global=int(base.checkpoint_bytes_global * factor),
    )
