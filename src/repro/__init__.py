"""repro — fault-tolerant GASPI application stack (CLUSTER 2015 reproduction).

Reproduces Shahzad et al., *Building a fault tolerant application using
the GASPI communication layer* (IEEE CLUSTER 2015, arXiv:1505.04628):
a dedicated fault-detector process, non-shrinking recovery with
pre-allocated spares, a fault-aware neighbor node-level checkpoint/restart
library, and the fault-tolerant Lanczos eigensolver they are demonstrated
on — all built from scratch over a deterministic discrete-event simulation
of the cluster, network and GPI-2 communication layer.

Start here:

* :mod:`repro.ft` — the paper's fault-tolerance machinery,
* :mod:`repro.solvers.ft_lanczos` — the showcase application,
* :mod:`repro.experiments` — regenerate every table and figure,
* ``examples/quickstart.py`` — a survivable run in ~80 lines.
"""

__version__ = "1.0.0"
__paper__ = (
    "Shahzad et al., 'Building a fault tolerant application using the "
    "GASPI communication layer', IEEE CLUSTER 2015 (arXiv:1505.04628)"
)
